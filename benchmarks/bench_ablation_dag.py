"""Ablation: DAG sharing of subplans vs tree expansion.

The paper argues dynamic plans must be represented "as directed
acyclic graphs (DAGs) with common subexpressions, not as trees" —
otherwise both the access-module size and the start-up cost
evaluation grow with the exponential number of plan combinations.
This bench quantifies the saving on the five paper queries, and shows
start-up cost-evaluation counts stay bounded by the DAG size.
"""

from conftest import write_and_print

from repro.executor import resolve_dynamic_plan
from repro.optimizer import optimize_dynamic
from repro.workloads import paper_workload, random_bindings


def test_ablation_dag_sharing(benchmark, results_dir):
    lines = [
        "=" * 72,
        "ABLATION — DAG sharing vs tree expansion",
        "paper: sharing keeps plan size and start-up effort polynomial",
        "-" * 72,
        "%8s  %10s  %14s  %8s  %14s"
        % ("query", "DAG nodes", "tree nodes", "ratio", "cost evals"),
    ]
    assertions = []
    for query_number in (1, 2, 3, 4, 5):
        workload = paper_workload(query_number)
        dynamic = optimize_dynamic(workload.catalog, workload.query)
        bindings = random_bindings(workload, seed=1)
        _, report = resolve_dynamic_plan(
            dynamic.plan, workload.catalog,
            workload.query.parameter_space, bindings,
        )
        dag_nodes = dynamic.plan.node_count()
        tree_nodes = dynamic.plan.tree_node_count()
        lines.append(
            "%8s  %10d  %14d  %8.1f  %14d"
            % (
                workload.name,
                dag_nodes,
                tree_nodes,
                tree_nodes / dag_nodes,
                report.cost_evaluations,
            )
        )
        assertions.append((query_number, dag_nodes, tree_nodes,
                           report.cost_evaluations))
    write_and_print(results_dir, "ablation_dag", "\n".join(lines))

    workload = paper_workload(4)
    dynamic = optimize_dynamic(workload.catalog, workload.query)
    bindings = random_bindings(workload, seed=1)
    benchmark(
        lambda: resolve_dynamic_plan(
            dynamic.plan, workload.catalog,
            workload.query.parameter_space, bindings,
        )
    )

    for query_number, dag_nodes, tree_nodes, evaluations in assertions:
        # Start-up evaluations bounded by DAG size, never tree size.
        assert evaluations <= dag_nodes
        if query_number >= 3:
            # Sharing saves orders of magnitude on complex queries.
            assert tree_nodes > 10 * dag_nodes
