"""Ablation: the [MaL89] buffer-aware cost refinement.

The paper's cost model charges one random I/O per unclustered record
fetch; footnote 2 points to Mackert and Lohman's validated finite-LRU
model as the accuracy upgrade.  This bench compares both cost models
against *actual* execution through a real LRU buffer pool, across the
selectivity range — the naive model increasingly over-charges index
scans as selectivity (and hence page re-visits) grows.
"""

from conftest import write_and_print

from repro.algebra.physical import FilterBTreeScan
from repro.catalog import populate_database
from repro.common.units import IO_TIME_PER_PAGE
from repro.cost.formulas import CostModel
from repro.cost.parameters import Valuation
from repro.executor import execute_plan
from repro.storage import Database
from repro.workloads import paper_workload, random_bindings


def test_buffer_aware_cost_accuracy(benchmark, results_dir):
    workload = paper_workload(1)
    database = Database(workload.catalog)
    populate_database(database, seed=0)
    space = workload.query.parameter_space
    domain = workload.catalog.domain_size("R1", "a")
    predicate = workload.query.selection_for("R1")
    plan = FilterBTreeScan("R1", "a", predicate)

    lines = [
        "=" * 72,
        "ABLATION — buffer-aware cost model ([MaL89] refinement)",
        "index scan of R1 through a real LRU pool (64 pages); predicted "
        "vs actual fault I/O seconds",
        "-" * 72,
        "%6s  %10s  %12s  %12s  %14s"
        % ("sel", "actual", "naive model", "aware model", "better model"),
    ]
    aware_wins = 0
    cases = 0
    for selectivity in (0.05, 0.2, 0.4, 0.6, 0.8, 1.0):
        bindings = random_bindings(workload, seed=1)
        bindings.bind("sel_R1", selectivity)
        bindings.bind_variable("v_R1", selectivity * domain)
        executed = execute_plan(
            plan, database, bindings, space, use_buffer_pool=True
        )
        actual = executed.io_snapshot["pages_read"] * IO_TIME_PER_PAGE
        naive = CostModel(
            workload.catalog, Valuation.runtime(space, bindings)
        ).evaluate(plan).cost.lower
        aware = CostModel(
            workload.catalog,
            Valuation.runtime(space, bindings),
            buffer_aware=True,
        ).evaluate(plan).cost.lower
        better = "aware" if abs(aware - actual) < abs(naive - actual) else "naive"
        cases += 1
        if better == "aware":
            aware_wins += 1
        lines.append(
            "%6.2f  %10.3f  %12.3f  %12.3f  %14s"
            % (selectivity, actual, naive, aware, better)
        )
    write_and_print(results_dir, "buffer_model", "\n".join(lines))

    # The refinement must dominate across the sweep.
    assert aware_wins >= cases - 1

    bindings = random_bindings(workload, seed=1)
    bindings.bind("sel_R1", 0.5)
    bindings.bind_variable("v_R1", 0.5 * domain)
    benchmark(
        lambda: execute_plan(
            plan, database, bindings, space, use_buffer_pool=True
        )
    )
