"""Extension bench: conditional re-optimization (the [CAK81]/[CAB93]
scenario the paper criticizes in Section 2).

Shows the criticism quantitatively: to stay near-optimal under
alternating run-time situations the scheme must re-optimize on almost
every invocation, while a dynamic plan pays a single compile-time
optimization and cheap start-up decisions.
"""

from conftest import write_and_print

from repro.scenarios import ConditionalReoptimizationScenario
from repro.workloads import binding_series, paper_workload


def test_conditional_reoptimization(benchmark, context, results_dir):
    workload = paper_workload(3)
    series = binding_series(workload, count=20, seed=61)
    bundle = context.bundle(3, False)

    scenario = ConditionalReoptimizationScenario(
        workload, tolerance=0.2, cpu_scale=context.settings.cpu_scale
    )
    result = scenario.run_series(series)

    benchmark(
        lambda: ConditionalReoptimizationScenario(
            workload, tolerance=0.2, cpu_scale=context.settings.cpu_scale
        ).invoke(series[0])
    )

    lines = [
        "=" * 72,
        "EXTENSION — conditional re-optimization (query 3, tolerance 0.2)",
        "paper: such systems 'perform many more re-optimizations than "
        "truly necessary'",
        "-" * 72,
        "invocations            : %d" % result.invocation_count,
        "re-optimizations       : %d" % result.extra["reoptimizations"],
        "avg execution [s]      : %.4f" % result.average_execution_seconds,
        "avg run-time effort [s]: %.4f" % result.average_run_time_effort,
        "dynamic-plan effort [s]: %.4f"
        % bundle.dynamic.average_run_time_effort,
    ]
    write_and_print(results_dir, "reoptimization", "\n".join(lines))

    # The paper's point: under uniformly random bindings the scheme
    # re-optimizes on most invocations...
    assert result.extra["reoptimizations"] > result.invocation_count // 2
    # ...so dynamic plans beat it on total run-time effort.
    assert (
        bundle.dynamic.average_run_time_effort
        < result.average_run_time_effort
    )
