"""Figure 8: run-time optimization versus dynamic plans.

Benchmarks the per-invocation unit of the run-time-optimization
scenario (a full optimization with bound parameters) and regenerates
the per-invocation effort comparison plus the Section 6 break-even
points (paper: N between 2 and 4 against run-time optimization,
N = 1 against static plans).
"""

from conftest import write_and_print

from repro.experiments.figures import SERIES_SEL, figure8_runtime_vs_dynamic
from repro.experiments.report import render_figure
from repro.optimizer import optimize_runtime
from repro.workloads import paper_workload, random_bindings


def test_figure8_runtime_vs_dynamic(benchmark, context, results_dir):
    workload = paper_workload(3)
    bindings = random_bindings(workload, seed=17)
    result = benchmark(
        lambda: optimize_runtime(workload.catalog, workload.query, bindings)
    )
    assert result.plan.choose_plan_count() == 0

    figure = figure8_runtime_vs_dynamic(context)
    write_and_print(results_dir, "figure8", render_figure(figure))

    # Shape: dynamic plans cheaper per invocation for complex queries.
    for query in ("query3", "query4", "query5"):
        runtime_effort = figure.value_for(
            "run-time optimization, %s" % SERIES_SEL, query
        )
        dynamic_effort = figure.value_for("dynamic, %s" % SERIES_SEL, query)
        assert dynamic_effort < runtime_effort, query

    # Break-evens: small N against run-time optimization, N=1 vs static.
    for point in figure.points("dynamic, %s" % SERIES_SEL):
        if point["query"] in ("query3", "query4", "query5"):
            assert point["breakeven_vs_runtime"] is not None
            assert 1 <= point["breakeven_vs_runtime"] <= 20
            assert point["breakeven_vs_static"] == 1
