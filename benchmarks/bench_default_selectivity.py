"""Ablation: can a better default selectivity save static plans?

Traditional optimizers assume a small default selectivity for unbound
predicates (the paper uses 0.05).  A natural objection to dynamic
plans is "just pick a better default".  Measured against one known
binding distribution a tuned default can indeed come close (with
uniform [0,1] selectivities, a 0.5 default is within ~10 % here) — but
the run-time distribution is exactly what the optimizer does *not*
know.  This sweep evaluates every default under two plausible
application profiles (uniform, and mostly-selective probes with
occasional full sweeps): each default is beaten badly on at least one
profile, while the dynamic plan is near-optimal on both.
"""

from conftest import write_and_print

from repro.common.rng import make_rng
from repro.scenarios import DynamicPlanScenario, StaticPlanScenario
from repro.workloads import make_join_workload, random_bindings


def _series(workload, profile, count=15, seed=81):
    """Binding series under a named selectivity profile."""
    rng = make_rng(seed, "profile", profile)
    series = []
    for index in range(count):
        bindings = random_bindings(workload, seed=seed, run_index=index)
        for relation in workload.query.relations:
            if profile == "uniform":
                selectivity = rng.uniform(0.0, 1.0)
            else:  # "probes": mostly selective lookups, rare sweeps
                if rng.random() < 0.8:
                    selectivity = rng.uniform(0.0, 0.05)
                else:
                    selectivity = rng.uniform(0.7, 1.0)
            domain = workload.catalog.domain_size(relation, "a")
            bindings.bind("sel_%s" % relation, selectivity)
            bindings.bind_variable("v_%s" % relation, selectivity * domain)
        series.append(bindings)
    return series


def test_no_default_survives_both_profiles(benchmark, results_dir):
    baseline = make_join_workload(4, name="q3-defaults")
    profiles = {
        "uniform": _series(baseline, "uniform"),
        "probes": _series(baseline, "probes"),
    }
    dynamic = DynamicPlanScenario(baseline)
    dynamic_exec = {
        name: dynamic.run_series(series).average_execution_seconds
        for name, series in profiles.items()
    }

    lines = [
        "=" * 72,
        "ABLATION — static default selectivities vs two run-time "
        "profiles (4-way join)",
        "a tuned default fits one profile; the dynamic plan fits both",
        "-" * 72,
        "%10s  %18s  %18s  %12s"
        % ("default", "uniform (x dyn)", "probes (x dyn)", "worst (x)"),
    ]
    worst_ratios = []
    for default in (0.01, 0.05, 0.1, 0.25, 0.5, 0.75):
        workload = make_join_workload(
            4, expected_selectivity=default, name="q3-default-%s" % default
        )
        scenario = StaticPlanScenario(workload)
        ratios = {}
        for name, series in profiles.items():
            result = scenario.run_series(series)
            ratios[name] = result.average_execution_seconds / max(
                dynamic_exec[name], 1e-12
            )
        worst = max(ratios.values())
        worst_ratios.append(worst)
        lines.append(
            "%10.2f  %18.1f  %18.1f  %12.1f"
            % (default, ratios["uniform"], ratios["probes"], worst)
        )
    write_and_print(
        results_dir, "default_selectivity", "\n".join(lines)
    )

    # Every default is beaten substantially on at least one profile.
    assert min(worst_ratios) > 1.5

    benchmark(lambda: StaticPlanScenario(baseline))
