"""Break-even analysis (Section 6, experiments BE1 and BE2).

Regenerates both break-even tables: dynamic vs static (paper:
consistently N = 1) and dynamic vs run-time optimization (paper:
N between 2 and 4).
"""

from conftest import write_and_print

from repro.scenarios import (
    breakeven_runtime_vs_dynamic,
    breakeven_static_vs_dynamic,
)


def test_breakeven_points(benchmark, context, results_dir):
    bundle = context.bundle(3, False)
    benchmark(
        lambda: breakeven_static_vs_dynamic(bundle.static, bundle.dynamic)
    )

    lines = [
        "=" * 72,
        "BREAK-EVEN POINTS (Section 6)",
        "paper: N=1 vs static plans; N in [2,4] vs run-time optimization",
        "-" * 72,
        "%10s  %6s  %22s  %24s"
        % ("query", "#unc", "vs static (paper: 1)", "vs run-time opt (2-4)"),
    ]
    checks = []
    for query_number in context.settings.query_numbers:
        bundle = context.bundle(query_number, False)
        vs_static = breakeven_static_vs_dynamic(bundle.static, bundle.dynamic)
        vs_runtime = breakeven_runtime_vs_dynamic(
            bundle.runtime, bundle.dynamic
        )
        lines.append(
            "%10s  %6d  %22s  %24s"
            % (
                bundle.workload.name,
                bundle.uncertain_variables,
                vs_static,
                vs_runtime,
            )
        )
        checks.append((query_number, vs_static, vs_runtime))
    write_and_print(results_dir, "breakeven", "\n".join(lines))

    for query_number, vs_static, vs_runtime in checks:
        assert vs_static == 1, "query %d" % query_number
        if query_number >= 3:
            assert vs_runtime is not None and vs_runtime <= 20
