"""Figure 6: plan sizes for static and dynamic plans.

Regenerates the node counts of all ten plans (5 queries x 2 memory
settings) and asserts the paper's shape: dynamic plans are orders of
magnitude larger than static plans (paper: 21 vs 14,090 for query 5),
and making memory uncertain barely increases plan size.
"""

from conftest import write_and_print

from repro.executor import AccessModule
from repro.experiments.figures import (
    SERIES_SEL,
    SERIES_SEL_MEM,
    figure6_plan_sizes,
)
from repro.experiments.report import render_figure
from repro.optimizer import optimize_dynamic
from repro.workloads import paper_workload


def test_figure6_plan_sizes(benchmark, context, results_dir):
    # Benchmark plan serialization — the operation whose cost the plan
    # size drives at start-up time.
    workload = paper_workload(4)
    dynamic = optimize_dynamic(workload.catalog, workload.query)
    module = benchmark(
        lambda: AccessModule.from_plan(dynamic.plan, workload.name)
    )
    assert module.node_count == dynamic.plan.node_count()

    figure = figure6_plan_sizes(context)
    write_and_print(results_dir, "figure6", render_figure(figure))

    static_sizes = [
        p["value"] for p in figure.points("static, %s" % SERIES_SEL)
    ]
    dynamic_sizes = [
        p["value"] for p in figure.points("dynamic, %s" % SERIES_SEL)
    ]
    dynamic_mem_sizes = [
        p["value"] for p in figure.points("dynamic, %s" % SERIES_SEL_MEM)
    ]
    # Dynamic plans dwarf static plans, increasingly with complexity.
    for static_size, dynamic_size in zip(static_sizes, dynamic_sizes):
        assert dynamic_size > static_size
    assert dynamic_sizes[-1] > 50 * static_sizes[-1]
    # Memory uncertainty barely moves plan size (paper's observation
    # that the number of potentially optimal plans is limited).
    for plain, with_memory in zip(dynamic_sizes, dynamic_mem_sizes):
        assert with_memory <= plain * 1.5
