"""Extension bench: the Section 4 plan-shrinking heuristic.

Measures how the self-replacing access module trades size (and hence
activation I/O) against robustness: module size before and after
shrinking, and the regret suffered when a removed alternative would
have been optimal for a later binding.
"""

from conftest import write_and_print

from repro.executor import ShrinkingAccessModule, resolve_dynamic_plan
from repro.optimizer import optimize_dynamic
from repro.scenarios import predicted_execution_seconds
from repro.workloads import binding_series, paper_workload


def test_plan_shrinking_tradeoff(benchmark, results_dir):
    workload = paper_workload(3)
    dynamic = optimize_dynamic(workload.catalog, workload.query)
    training = binding_series(workload, count=10, seed=51)
    evaluation = binding_series(workload, count=15, seed=52)

    module = ShrinkingAccessModule(
        dynamic.plan, workload.catalog,
        workload.query.parameter_space, shrink_after=10,
    )
    nodes_before = module.node_count
    for bindings in training:
        module.activate(bindings)
    nodes_after = module.node_count

    regret_total = 0.0
    optimal_total = 0.0
    for bindings in evaluation:
        chosen, _ = module.activate(bindings)
        shrunk_cost = predicted_execution_seconds(
            chosen, workload.catalog,
            workload.query.parameter_space, bindings,
        )
        optimal_chosen, _ = resolve_dynamic_plan(
            dynamic.plan, workload.catalog,
            workload.query.parameter_space, bindings,
        )
        optimal_cost = predicted_execution_seconds(
            optimal_chosen, workload.catalog,
            workload.query.parameter_space, bindings,
        )
        regret_total += shrunk_cost - optimal_cost
        optimal_total += optimal_cost

    lines = [
        "=" * 72,
        "EXTENSION — plan shrinking (Section 4 heuristic, query 3)",
        "paper: shrinking trades module size against future robustness",
        "-" * 72,
        "nodes before shrinking : %d" % nodes_before,
        "nodes after shrinking  : %d" % nodes_after,
        "size reduction         : %.0f%%"
        % (100.0 * (1 - nodes_after / nodes_before)),
        "avg optimal exec [s]   : %.4f" % (optimal_total / len(evaluation)),
        "avg regret [s]         : %.4f" % (regret_total / len(evaluation)),
    ]
    write_and_print(results_dir, "shrinking", "\n".join(lines))

    assert nodes_after < nodes_before
    assert regret_total >= 0.0

    fresh = ShrinkingAccessModule(
        dynamic.plan, workload.catalog,
        workload.query.parameter_space, shrink_after=1_000_000,
    )
    benchmark(lambda: fresh.activate(training[0]))
