"""Plan-cache amortization: cached start-up vs optimize-per-query.

The service's reason to exist is the paper's embedded-SQL argument:
optimization cost is paid once per query shape, and every further
invocation pays only the choose-plan start-up decision.  This bench
replays a >=100-invocation mixed workload through the query service
and asserts the acceptance bar: a cache-hit invocation is at least 5x
cheaper in wall-clock time than optimizing the query from scratch.

It also gates the observability layer's hot-path cost: with tracing
disabled, a metrics-instrumented service must stay within 5% of the
uninstrumented service on the cached-invocation path (min-of-repeats
wall-clock, so scheduler noise does not decide the verdict).

``REPRO_BENCH_N`` scales the invocation count (floor 100 here — below
that the hit-rate and percentile numbers are too noisy to gate on).
"""

import time

from conftest import (
    bench_invocations,
    latency_summary,
    write_and_print,
    write_json_results,
)

from repro.service import render_report, replay_spec
from repro.workloads.service import ServiceQuerySpec, ServiceWorkloadSpec

#: Minimum invocations for a meaningful hit-rate measurement.
FLOOR_INVOCATIONS = 100

#: The acceptance bar: cached invocations this many times cheaper.
MIN_SPEEDUP = 5.0


def service_spec():
    """The benchmark mix: three shapes, skewed toward the cheap one."""
    return ServiceWorkloadSpec(
        [
            ServiceQuerySpec(1, weight=3),
            ServiceQuerySpec(2, weight=2),
            ServiceQuerySpec(4, topology="chain", weight=1),
        ],
        invocations=max(FLOOR_INVOCATIONS, bench_invocations()),
        threads=8,
        capacity=64,
        seed=0,
        execute=False,
    )


def test_service_cache_amortization(benchmark, results_dir):
    spec = service_spec()
    report = replay_spec(spec, baseline_samples=3)

    # Benchmark the unit the service amortizes down to: one complete
    # cached invocation (lookup + start-up decision), measured through
    # the public entry point against a warm cache.
    from repro.service import QueryService, ServiceRequest
    from repro.storage import Database
    from repro.workloads.service import (
        generate_service_requests,
    )

    workloads, requests = generate_service_requests(spec)
    service = QueryService(
        Database(workloads[0].catalog),
        capacity=spec.capacity,
        max_workers=1,
        execute=False,
    )
    with service:
        warm = [
            ServiceRequest(workload.query, bindings)
            for workload, bindings in requests[:16]
        ]
        service.run_batch(warm)  # every shape compiled and cached
        workload, bindings = requests[0]
        benchmark(lambda: service.run(workload.query, bindings))

    write_and_print(results_dir, "service_cache", render_report(report))

    assert len(report.results) >= FLOOR_INVOCATIONS
    assert report.hit_rate > 0.9

    # The acceptance bar, measured two independent ways.
    #
    # Per-invocation: mean cache-hit cost (optimize + start-up of hits
    # only) vs the measured mean cost of one from-scratch optimization
    # of the same mix.
    hits = [result for result in report.results if result.cache_hit]
    assert hits, "no cache hits in a %d-invocation replay" % len(report.results)
    hit_mean = sum(
        result.optimize_seconds + result.startup_seconds for result in hits
    ) / len(hits)
    baseline_mean = sum(
        report.baseline_means[result.tag] for result in hits
    ) / len(hits)
    write_json_results(
        results_dir,
        "service_cache",
        [
            {
                "name": "service_cache",
                "metric": "hit_rate",
                "value": report.hit_rate,
                "unit": "fraction",
            },
            {
                "name": "service_cache",
                "metric": "cache_hit_invocation_mean",
                "value": hit_mean,
                "unit": "s",
            },
            {
                "name": "service_cache",
                "metric": "optimize_baseline_mean",
                "value": baseline_mean,
                "unit": "s",
            },
            {
                "name": "service_cache",
                "metric": "replay_speedup",
                "value": report.speedup,
                "unit": "x",
            },
        ]
        + latency_summary(
            "service_cache_hit_latency",
            [
                result.optimize_seconds + result.startup_seconds
                for result in hits
            ],
        ),
    )
    assert baseline_mean > MIN_SPEEDUP * hit_mean, (
        "cache-hit invocations only %.1fx cheaper than optimize-per-query"
        % (baseline_mean / hit_mean)
    )

    # Whole-workload: total service cost (including the compile misses)
    # vs optimizing every single invocation.
    assert report.speedup > MIN_SPEEDUP, (
        "end-to-end replay speedup %.1fx below the %.0fx bar"
        % (report.speedup, MIN_SPEEDUP)
    )


#: Observability must cost at most this fraction when tracing is off.
MAX_DISABLED_OVERHEAD = 0.05


def test_tracing_disabled_overhead(results_dir):
    """Metrics wired, tracer off: cached path within 5% of baseline.

    The two services are timed in strictly alternating batches and
    compared min-to-min, so slow drift (CPU frequency, background
    load) hits both sides equally instead of deciding the verdict.
    """
    from repro.observability import MetricsRegistry
    from repro.service import QueryService
    from repro.storage import Database
    from repro.workloads import paper_workload
    from repro.workloads.service import service_request_bindings

    workload = paper_workload(2, seed=0)
    all_bindings = [
        service_request_bindings(workload, seed=0, run_index=index)
        for index in range(200)
    ]

    def make_service(metrics):
        service = QueryService(
            Database(workload.catalog),
            execute=False,
            max_workers=1,
            metrics=metrics,
        )
        service.run(workload.query, all_bindings[0])  # compile once
        return service

    def batch_seconds(service):
        started = time.perf_counter()
        for bindings in all_bindings:
            service.run(workload.query, bindings)
        return time.perf_counter() - started

    plain = make_service(None)
    instrumented_service = make_service(MetricsRegistry())
    with plain, instrumented_service:
        # Warm both sides, then alternate measured batches.
        batch_seconds(plain)
        batch_seconds(instrumented_service)
        baseline = float("inf")
        instrumented = float("inf")
        for _ in range(15):
            baseline = min(baseline, batch_seconds(plain))
            instrumented = min(
                instrumented, batch_seconds(instrumented_service)
            )

    overhead = instrumented / baseline - 1.0
    write_and_print(
        results_dir,
        "observability_overhead",
        "tracing-disabled overhead: baseline %.6fs, instrumented %.6fs "
        "(%+.2f%%)" % (baseline, instrumented, overhead * 100.0),
    )
    write_json_results(
        results_dir,
        "observability_overhead",
        [
            {
                "name": "observability_overhead",
                "metric": "tracing_disabled_overhead",
                "value": overhead,
                "unit": "fraction",
            },
        ],
    )
    assert overhead < MAX_DISABLED_OVERHEAD, (
        "tracing-disabled observability adds %.1f%% to the cached "
        "invocation path (bar: %.0f%%)"
        % (overhead * 100.0, MAX_DISABLED_OVERHEAD * 100.0)
    )
