"""Crash-recovery amortization: cold start vs snapshot-restored start.

A process restart without durable plan-cache state pays one full
optimization per hot query shape before the tier is back to amortized
latency.  With a snapshot restore, the same first-touch requests are
cache hits that skip the optimizer entirely.  This bench measures the
per-request first-touch latency of both starts over the same hot set
and gates the acceptance bar: the snapshot-restored p50 must be at
least 3x faster than the cold p50.

Latencies are collected across several fresh gateways per variant
(each cold sample really is a first touch), and the verdict compares
p50s so scheduler noise in one serve does not decide it.
"""

import time

from conftest import write_and_print, write_json_results

from repro.common import percentile
from repro.service import DurabilityConfig, ShardedQueryService
from repro.storage import Database
from repro.workloads.traffic import HeavyTrafficSpec, to_service_requests

SHAPES = 8
SHARDS = 3
REPEATS = 5

#: The acceptance bar: restored first-touch p50 this many times faster.
MIN_RESTORE_SPEEDUP = 3.0


def make_gateway(catalog, durability=None):
    return ShardedQueryService(
        Database(catalog),
        shards=SHARDS,
        capacity=32,
        execute=False,
        durability=durability,
    )


def first_touch_requests(requests):
    """The first request of each shape: the cold-start working set."""
    picks = []
    seen = set()
    for request in requests:
        shape = request.tag.split("#")[0]
        if shape not in seen:
            seen.add(shape)
            picks.append(request)
    return picks


def serve_hot_set(gateway, hot, samples):
    results = []
    for request in hot:
        started = time.perf_counter()
        results.append(
            gateway.run(request.query, request.bindings, tag=request.tag)
        )
        samples.append(time.perf_counter() - started)
    return results


def test_recovery_restore_speedup(results_dir, tmp_path):
    spec = HeavyTrafficSpec(
        requests=64, query_shapes=SHAPES, tenants=2, seed=0
    )
    catalog, _queries, requests = to_service_requests(spec)
    hot = first_touch_requests(requests)
    assert len(hot) == SHAPES

    # Seed the snapshot: one full traffic pass, snapshot on shutdown.
    snapshot_path = tmp_path / "recovery-snapshot.json"
    seeder = make_gateway(
        catalog, durability=DurabilityConfig(snapshot_path)
    )
    try:
        seeder.run_batch(requests)
    finally:
        seeder.shutdown()

    cold_samples = []
    restored_samples = []
    for _ in range(REPEATS):
        cold = make_gateway(catalog)
        try:
            cold_results = serve_hot_set(cold, hot, cold_samples)
        finally:
            cold.shutdown()
        assert not any(result.cache_hit for result in cold_results)

        restored = make_gateway(
            catalog,
            durability=DurabilityConfig(
                snapshot_path, snapshot_on_shutdown=False
            ),
        )
        try:
            stats = restored.restore_stats
            assert stats is not None and stats.restored == SHAPES
            assert stats.errors == []
            restored_results = serve_hot_set(restored, hot, restored_samples)
        finally:
            restored.shutdown()
        # The counter-level proof of warm restore: every first touch
        # after a restore is a cache hit — the optimizer never runs.
        assert all(result.cache_hit for result in restored_results)

    cold_p50 = percentile(cold_samples, 0.50)
    restored_p50 = percentile(restored_samples, 0.50)
    speedup = cold_p50 / restored_p50

    lines = [
        "crash recovery: cold start vs snapshot-restored start",
        "  hot set: %d shapes across %d shards, %d repeats"
        % (SHAPES, SHARDS, REPEATS),
        "  cold first-touch p50:     %.3fms" % (cold_p50 * 1e3),
        "  restored first-touch p50: %.3fms" % (restored_p50 * 1e3),
        "  restore speedup: %.1fx (bar: >=%.0fx)"
        % (speedup, MIN_RESTORE_SPEEDUP),
    ]
    write_and_print(results_dir, "recovery", "\n".join(lines))
    write_json_results(
        results_dir,
        "recovery",
        [
            {
                "name": "recovery",
                "metric": "cold_first_touch_p50",
                "value": cold_p50,
                "unit": "s",
            },
            {
                "name": "recovery",
                "metric": "restored_first_touch_p50",
                "value": restored_p50,
                "unit": "s",
            },
            {
                "name": "recovery",
                "metric": "restore_speedup",
                "value": speedup,
                "unit": "x",
            },
        ],
    )
    assert speedup >= MIN_RESTORE_SPEEDUP, (
        "snapshot restore must beat cold start by %.0fx (got %.1fx)"
        % (MIN_RESTORE_SPEEDUP, speedup)
    )
