"""Figure 7: start-up times for dynamic plans (CPU only).

Benchmarks the choose-plan decision pass — re-evaluating the cost
functions of query 5's dynamic plan under instantiated bindings, with
DAG-shared subplans costed once — and regenerates the start-up-time
curves, asserting they parallel plan size.
"""

from conftest import write_and_print

from repro.executor import resolve_dynamic_plan
from repro.experiments.figures import SERIES_SEL, figure7_startup_times
from repro.experiments.report import render_figure
from repro.optimizer import optimize_dynamic
from repro.workloads import paper_workload, random_bindings


def test_figure7_startup_times(benchmark, context, results_dir):
    workload = paper_workload(5)
    dynamic = optimize_dynamic(workload.catalog, workload.query)
    bindings = random_bindings(workload, seed=123)

    chosen, report = benchmark(
        lambda: resolve_dynamic_plan(
            dynamic.plan,
            workload.catalog,
            workload.query.parameter_space,
            bindings,
        )
    )
    assert chosen.choose_plan_count() == 0
    # Sharing: cost evaluations bounded by the DAG's node count even
    # though the number of plan combinations is exponential.
    assert report.cost_evaluations <= dynamic.plan.node_count()

    figure = figure7_startup_times(context)
    write_and_print(results_dir, "figure7", render_figure(figure))

    startups = [p["value"] for p in figure.points("dynamic, %s" % SERIES_SEL)]
    assert startups[-1] > startups[0]
    for point in figure.points("dynamic, %s" % SERIES_SEL):
        assert point["decisions"] >= 1
