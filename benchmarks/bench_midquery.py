"""Mid-query re-optimization: splice over checkpoints vs restart.

The scenario is the one the mechanism exists for: *skewed* bindings
declare one selectivity while the data behaves like another, so the
start-up decision commits to a plan that is wrong at run time, and the
divergence only becomes visible when a pipeline breaker materializes
its true cardinality.  Three arms execute each query over identical
data:

* ``no_reopt`` — plain execution of the start-up plan (what the
  library did before this module existed);
* ``restart``  — re-decide at every breaker, but on a switch throw the
  checkpoints away and re-execute the new plan from scratch (the
  classic re-optimization strategy, and the baseline to beat);
* ``splice``   — re-decide at every breaker and continue over the
  materialized checkpoints, paying only the undrained remainder.

The gated quantity is deterministic simulated time (pages and records
folded with the library's machine constants), so the committed
baseline is exact and drift-free.  Acceptance bars: every scenario
must actually switch plans, splice must beat restart on every
scenario, and on at least one scenario splice must beat even the
never-reoptimizing arm — adapting mid-flight recovers more than the
checkpoint drains cost.
"""

from conftest import write_and_print, write_json_results

from repro import (
    Database,
    execute_plan,
    optimize_dynamic,
    paper_workload,
    populate_database,
)
from repro.executor.midquery import ReoptPolicy, execute_midquery
from repro.resilience.chaos import rows_digest
from repro.workloads import skewed_bindings

#: Data-population seed (shared with the chaos harness).
DATA_SEED = 11

#: (query number, declared selectivity, actual selectivity).
SCENARIOS = ((3, 0.02, 0.6), (4, 0.02, 0.6), (5, 0.02, 0.6))

#: Splice must beat restart by at least this factor on every scenario.
MIN_SWITCH_SPEEDUP = 1.1


def _measure_scenario(number, declared, actual):
    """Simulated seconds of the three arms on one skewed query."""
    workload = paper_workload(number, memory_uncertain=True)
    plan = optimize_dynamic(workload.catalog, workload.query).plan
    bindings = skewed_bindings(workload, declared=declared, actual=actual)
    space = workload.query.parameter_space

    def fresh_database():
        database = Database(workload.catalog)
        populate_database(database, seed=DATA_SEED)
        return database

    plain = execute_plan(plan, fresh_database(), bindings.copy(), space)
    restarted, restart_report = execute_midquery(
        plan,
        fresh_database(),
        bindings.copy(),
        space,
        policy=ReoptPolicy("always", on_switch="restart"),
    )
    spliced, splice_report = execute_midquery(
        plan,
        fresh_database(),
        bindings.copy(),
        space,
        policy=ReoptPolicy("always"),
    )

    digest = rows_digest(plain.records)
    assert rows_digest(restarted.records) == digest
    assert rows_digest(spliced.records) == digest

    return {
        "query": workload.name,
        "rows": plain.row_count,
        "switches": splice_report.switches,
        "restart_switches": restart_report.switches,
        "no_reopt_seconds": plain.simulated_seconds(),
        "restart_seconds": restarted.simulated_seconds(),
        "splice_seconds": spliced.simulated_seconds(),
    }


def render_table(measurements):
    """The three-arm comparison table as printable text."""
    lines = [
        "mid-query re-optimization under skewed cardinalities "
        "(simulated seconds, declared=%.2f actual=%.2f)"
        % (SCENARIOS[0][1], SCENARIOS[0][2]),
        "",
        "  %-8s %6s %9s %12s %12s %12s %9s %9s"
        % (
            "query",
            "rows",
            "switches",
            "no-reopt",
            "restart",
            "splice",
            "vs-rst",
            "vs-none",
        ),
    ]
    for m in measurements:
        lines.append(
            "  %-8s %6d %9d %12.4f %12.4f %12.4f %8.2fx %8.2fx"
            % (
                m["query"],
                m["rows"],
                m["switches"],
                m["no_reopt_seconds"],
                m["restart_seconds"],
                m["splice_seconds"],
                m["restart_seconds"] / m["splice_seconds"],
                m["no_reopt_seconds"] / m["splice_seconds"],
            )
        )
    return "\n".join(lines)


def test_midquery_switch_beats_restart(results_dir):
    measurements = [
        _measure_scenario(number, declared, actual)
        for number, declared, actual in SCENARIOS
    ]

    write_and_print(results_dir, "midquery", render_table(measurements))
    records = []
    for m in measurements:
        for metric, value, unit in (
            ("no_reopt_simulated", m["no_reopt_seconds"], "s"),
            ("restart_simulated", m["restart_seconds"], "s"),
            ("splice_simulated", m["splice_seconds"], "s"),
            (
                "switch_speedup",
                m["restart_seconds"] / m["splice_seconds"],
                "x",
            ),
            (
                "adaptivity_speedup",
                m["no_reopt_seconds"] / m["splice_seconds"],
                "x",
            ),
        ):
            records.append(
                {
                    "name": "midquery_%s" % m["query"],
                    "metric": metric,
                    "value": value,
                    "unit": unit,
                }
            )
    write_json_results(results_dir, "midquery", records)

    for m in measurements:
        assert m["switches"] >= 1, (
            "%s: the skewed bindings forced no plan switch" % m["query"]
        )
        speedup = m["restart_seconds"] / m["splice_seconds"]
        assert speedup >= MIN_SWITCH_SPEEDUP, (
            "%s: splicing over checkpoints is only %.2fx the restart "
            "strategy (bar: %.1fx)" % (m["query"], speedup, MIN_SWITCH_SPEEDUP)
        )
    assert any(
        m["splice_seconds"] < m["no_reopt_seconds"] for m in measurements
    ), (
        "no scenario where mid-query switching beats the start-up plan "
        "outright: %r" % measurements
    )
