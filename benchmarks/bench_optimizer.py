"""Table 1 and core optimizer micro-benchmarks.

Times one static and one dynamic optimization of paper query 3 (the
four-way join) and prints the Table 1 algebra inventory that every
other bench exercises.
"""

from conftest import write_and_print

from repro.experiments.figures import table1_algebra
from repro.experiments.report import render_table1
from repro.optimizer import optimize_dynamic, optimize_static
from repro.workloads import paper_workload


def test_table1_algebra_inventory(benchmark, results_dir):
    table = benchmark(table1_algebra)
    write_and_print(results_dir, "table1", render_table1(table))


def test_bench_static_optimization(benchmark):
    workload = paper_workload(3)
    result = benchmark(
        lambda: optimize_static(workload.catalog, workload.query)
    )
    assert result.plan.choose_plan_count() == 0


def test_bench_dynamic_optimization(benchmark):
    workload = paper_workload(3)
    result = benchmark(
        lambda: optimize_dynamic(workload.catalog, workload.query)
    )
    assert result.plan.choose_plan_count() >= 1
