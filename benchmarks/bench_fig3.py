"""Figure 3: the three optimization scenarios.

Regenerates the total-effort comparison (static, run-time
optimization, dynamic plans) and benchmarks one full dynamic-plan
invocation (activate + choose) — the per-invocation unit of the
dynamic timeline.
"""

from conftest import write_and_print

from repro.executor import resolve_dynamic_plan
from repro.experiments.figures import figure3_scenarios
from repro.experiments.report import render_figure
from repro.workloads import random_bindings


def test_figure3_scenarios(benchmark, context, results_dir):
    bundle = context.bundle(3, False)
    bindings = random_bindings(bundle.workload, seed=99)

    def one_dynamic_invocation():
        return resolve_dynamic_plan(
            bundle.dynamic_scenario.plan,
            bundle.workload.catalog,
            bundle.workload.query.parameter_space,
            bindings,
        )

    chosen, report = benchmark(one_dynamic_invocation)
    assert chosen.choose_plan_count() == 0

    figure = figure3_scenarios(context, query_number=3)
    write_and_print(results_dir, "figure3", render_figure(figure))

    static_total = figure.value_for("static", "query3")
    runtime_total = figure.value_for("run-time optimization", "query3")
    dynamic_total = figure.value_for("dynamic plans", "query3")
    # The paper's inequalities over the invocation series:
    assert dynamic_total < static_total
    assert dynamic_total < runtime_total
