"""Ablation: interval branch-and-bound pruning on vs off.

The paper stresses that (a) branch-and-bound is *not* a heuristic —
disabling it must not change the produced plan — and (b) interval
costs weaken it, since only lower bounds may be subtracted.  This
bench quantifies both: identical plans, differing candidate counts
and optimization times, and the static-vs-dynamic pruning gap.
"""

from conftest import write_and_print

from repro.optimizer import OptimizerConfig, optimize_dynamic, optimize_static
from repro.workloads import paper_workload


def test_ablation_branch_and_bound(benchmark, results_dir):
    workload = paper_workload(4)

    with_bnb = optimize_dynamic(
        workload.catalog, workload.query,
        OptimizerConfig.dynamic(branch_and_bound=True),
    )
    without_bnb = optimize_dynamic(
        workload.catalog, workload.query,
        OptimizerConfig.dynamic(branch_and_bound=False),
    )
    static_with = optimize_static(
        workload.catalog, workload.query,
        OptimizerConfig.static(branch_and_bound=True),
    )
    static_without = optimize_static(
        workload.catalog, workload.query,
        OptimizerConfig.static(branch_and_bound=False),
    )

    benchmark(
        lambda: optimize_dynamic(
            workload.catalog, workload.query,
            OptimizerConfig.dynamic(branch_and_bound=True),
        )
    )

    # Not a heuristic: identical plans either way.
    assert with_bnb.plan.signature() == without_bnb.plan.signature()
    assert static_with.plan.signature() == static_without.plan.signature()

    rows = [
        ("dynamic + b&b", with_bnb),
        ("dynamic, no b&b", without_bnb),
        ("static + b&b", static_with),
        ("static, no b&b", static_without),
    ]
    lines = [
        "=" * 72,
        "ABLATION — branch-and-bound pruning (query 4)",
        "paper: interval pruning may subtract only lower bounds, so it "
        "is much weaker than traditional point pruning",
        "-" * 72,
        "%18s  %10s  %12s  %12s  %10s"
        % ("configuration", "candidates", "bound-pruned", "dom-pruned",
           "time [s]"),
    ]
    for name, result in rows:
        stats = result.statistics
        lines.append(
            "%18s  %10d  %12d  %12d  %10.4f"
            % (
                name,
                stats.candidates_considered,
                stats.pruned_by_bound,
                stats.pruned_by_dominance,
                stats.optimization_seconds,
            )
        )
    write_and_print(results_dir, "ablation_pruning", "\n".join(lines))

    # Weakened pruning: the static optimizer prunes a larger fraction.
    static_fraction = static_with.statistics.pruned_by_bound / max(
        static_with.statistics.candidates_considered, 1
    )
    dynamic_fraction = with_bnb.statistics.pruned_by_bound / max(
        with_bnb.statistics.candidates_considered, 1
    )
    assert static_fraction >= dynamic_fraction
