"""Ablation: tie handling and the multipoint comparison heuristic.

Section 3 discusses two situations where seemingly incomparable plans
need not both be kept: exactly-equal costs (e.g. the two merge-join
orders) and consistently-dominated plans.  The paper's prototype keeps
everything ("the most naive manner"); our optimizer additionally
implements the proposed multipoint-sampling heuristic.  This bench
quantifies what each choice costs in plan size, and verifies the
heuristic does not hurt plan quality on sampled bindings.
"""

from conftest import write_and_print

from repro.executor import resolve_dynamic_plan
from repro.optimizer import OptimizerConfig, optimize_dynamic
from repro.scenarios import predicted_execution_seconds
from repro.workloads import binding_series, paper_workload


def _average_cost(result, workload, series):
    total = 0.0
    for bindings in series:
        chosen, _ = resolve_dynamic_plan(
            result.plan, workload.catalog,
            workload.query.parameter_space, bindings,
        )
        total += predicted_execution_seconds(
            chosen, workload.catalog,
            workload.query.parameter_space, bindings,
        )
    return total / len(series)


def test_ablation_tie_handling(benchmark, results_dir):
    workload = paper_workload(3)
    series = binding_series(workload, count=15, seed=31)

    configurations = [
        ("paper (keep everything)", OptimizerConfig.dynamic()),
        (
            "drop equal-cost ties",
            OptimizerConfig.dynamic(keep_equal_cost_plans=False),
        ),
        (
            "multipoint heuristic",
            OptimizerConfig.dynamic(
                multipoint_heuristic=True, multipoint_samples=7
            ),
        ),
    ]

    lines = [
        "=" * 72,
        "ABLATION — tie handling and multipoint heuristic (query 3)",
        "paper: both kept naively to present the technique conservatively",
        "-" * 72,
        "%26s  %8s  %14s  %14s"
        % ("configuration", "nodes", "mp-pruned", "avg exec [s]"),
    ]
    costs = {}
    for name, config in configurations:
        result = optimize_dynamic(workload.catalog, workload.query, config)
        average = _average_cost(result, workload, series)
        costs[name] = (result, average)
        lines.append(
            "%26s  %8d  %14d  %14.4f"
            % (
                name,
                result.node_count(),
                result.statistics.pruned_by_multipoint,
                average,
            )
        )
    write_and_print(results_dir, "ablation_ties", "\n".join(lines))

    baseline_result, baseline_cost = costs["paper (keep everything)"]
    heuristic_result, heuristic_cost = costs["multipoint heuristic"]
    # The heuristic shrinks the plan without degrading sampled quality
    # by more than a whisker (it is a heuristic; exact loss is 0 here).
    assert heuristic_result.node_count() <= baseline_result.node_count()
    assert heuristic_cost <= baseline_cost * 1.10

    benchmark(
        lambda: optimize_dynamic(
            workload.catalog, workload.query,
            OptimizerConfig.dynamic(
                multipoint_heuristic=True, multipoint_samples=7
            ),
        )
    )
