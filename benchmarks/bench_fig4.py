"""Figure 4: execution times of static and dynamic plans.

Regenerates the four curves (static/dynamic x selectivities/memory)
over the five paper queries and asserts the paper's shape: dynamic
wins everywhere, and the gap grows with the number of uncertain
variables (paper: factor ~5 at query 1 up to ~24 at query 5).
"""

from conftest import write_and_print

from repro.experiments.figures import (
    SERIES_SEL,
    SERIES_SEL_MEM,
    figure4_execution_times,
)
from repro.experiments.report import render_figure
from repro.scenarios import predicted_execution_seconds
from repro.workloads import random_bindings


def test_figure4_execution_times(benchmark, context, results_dir):
    # Benchmark the unit the figure averages: one predicted execution
    # of a resolved plan under fresh bindings.
    bundle = context.bundle(3, False)
    bindings = random_bindings(bundle.workload, seed=42)
    static_plan = bundle.static_scenario.plan

    benchmark(
        lambda: predicted_execution_seconds(
            static_plan,
            bundle.workload.catalog,
            bundle.workload.query.parameter_space,
            bindings,
        )
    )

    figure = figure4_execution_times(context)
    write_and_print(results_dir, "figure4", render_figure(figure))

    for series in (SERIES_SEL, SERIES_SEL_MEM):
        dynamic_points = figure.points("dynamic, %s" % series)
        for point in dynamic_points:
            static_value = figure.value_for(
                "static, %s" % series, point["query"]
            )
            assert point["value"] < static_value, point
        ratios = [point["ratio"] for point in dynamic_points]
        # Gap grows: the most complex query's advantage dwarfs the
        # simplest query's (paper: 5x -> 24x).
        assert ratios[-1] > ratios[0]
        assert ratios[-1] > 10.0
