"""Sharded serving-tier scale: sustained QPS and tail latency.

The sharded gateway (:mod:`repro.service.sharding`) exists to serve
plan-cache traffic at rates the single-lock service cannot sustain:
every request through one ``QueryService`` pays a per-request pool
future, a fresh canonical-signature computation, and a fresh
chosen-plan rebuild, all through one cache lock.  The gateway routes
by precomputed signature, batches each shard's traffic through one
worker loop, and memoizes chosen-plan rebuilds per decision outcome —
identical decisions (the differential suite asserts it), a fraction of
the per-request cost, and shard-parallel when cores allow.

This bench replays the same Zipf(1.1)-skewed heavy-traffic stream
(:mod:`repro.workloads.traffic`) through both tiers — start-up
decisions only, the quantity the serving layer owns — and gates:

* sustained throughput at 8 shards >= ``MIN_SPEEDUP`` x the
  single-lock service (the ISSUE acceptance bar: 2x), and
* p50/p99 per-request latency, recorded in the JSON artifact and held
  against the committed baseline by ``check_regression.py``.

Measurement protocol: both services are fully warmed (every shape
compiled), then timed over ``PASSES`` strictly alternating passes;
throughput is the best pass and latency the best-pass percentiles, so
slow drift (CPU frequency, background load) hits both tiers equally
instead of deciding the verdict.  The plan-cache capacity exceeds the
shape count, so the bench measures steady-state serving, not eviction
churn.

``REPRO_BENCH_N`` scales the stream length (floor 3000 requests —
shorter streams make the percentile tail too noisy to gate on).
"""

import time

from conftest import bench_invocations, write_and_print, write_json_results

from repro.common.stats import percentile
from repro.service import QueryService, ShardedQueryService
from repro.storage import Database
from repro.workloads.traffic import HeavyTrafficSpec, to_service_requests

#: Minimum stream length for a stable p99.
FLOOR_REQUESTS = 3000

#: The acceptance bar: sharded sustained throughput at 8 shards.
MIN_SPEEDUP = 2.0

SHARDS = 8

#: Strictly alternating measured passes per tier.
PASSES = 3


def traffic_spec():
    """The gating mix: Zipf(1.1) popularity over 40 shapes, 4 tenants."""
    return HeavyTrafficSpec(
        requests=max(FLOOR_REQUESTS, bench_invocations() * 100),
        query_shapes=40,
        zipf_s=1.1,
        tenants=4,
        seed=0,
    )


def _measure(service, requests):
    """``(qps, p50_us, p99_us)`` of one full replay pass."""
    started = time.perf_counter()
    results = service.run_batch(requests)
    wall = time.perf_counter() - started
    latencies = sorted(result.total_seconds for result in results)
    return (
        len(results) / wall,
        1e6 * percentile(latencies, 0.50),
        1e6 * percentile(latencies, 0.99),
    )


def test_sharded_serving_scale(results_dir):
    spec = traffic_spec()
    catalog, queries, requests = to_service_requests(spec)

    single = QueryService(
        Database(catalog), capacity=64, max_workers=8, execute=False
    )
    sharded = ShardedQueryService(
        Database(catalog), shards=SHARDS, capacity=64, execute=False
    )
    with single, sharded:
        # Warm both tiers: every shape compiled and cached before any
        # measured pass (the head of a Zipf stream covers the tail too
        # slowly, so warm with one request per shape explicitly).
        one_per_shape = {request.query.name: request for request in requests}
        single.run_batch(one_per_shape.values())
        sharded.run_batch(one_per_shape.values())

        best = {"single": None, "sharded": None}
        for _ in range(PASSES):
            for label, service in (("single", single), ("sharded", sharded)):
                qps, p50, p99 = _measure(service, requests)
                if best[label] is None or qps > best[label][0]:
                    best[label] = (qps, p50, p99)

        sharded_stats = sharded.stats()
        single_stats = single.stats()

    qps_single, p50_single, p99_single = best["single"]
    qps_sharded, p50_sharded, p99_sharded = best["sharded"]
    speedup = qps_sharded / qps_single

    # Exact aggregation: no request lost between gateway and shards.
    assert sharded_stats.total.requests == len(one_per_shape) + PASSES * len(
        requests
    )
    assert sharded_stats.total.requests == sum(
        part.requests for part in sharded_stats.per_shard
    )
    assert sharded_stats.rejections == 0  # closed-loop replay, no shedding
    assert single_stats.hit_rate > 0.9
    assert sharded_stats.hit_rate > 0.9

    lines = [
        "service scale: %d-request Zipf(%.1f) stream over %d shapes"
        % (spec.requests, spec.zipf_s, spec.query_shapes),
        "  single-lock : %8.0f req/s   p50 %7.1fus   p99 %7.1fus"
        % (qps_single, p50_single, p99_single),
        "  %d shards    : %8.0f req/s   p50 %7.1fus   p99 %7.1fus"
        % (SHARDS, qps_sharded, p50_sharded, p99_sharded),
        "  sustained-throughput speedup: %.2fx (bar: %.1fx)"
        % (speedup, MIN_SPEEDUP),
        "  per-shard requests: %s"
        % [part.requests for part in sharded_stats.per_shard],
    ]
    write_and_print(results_dir, "service_scale", "\n".join(lines))
    write_json_results(
        results_dir,
        "service_scale",
        [
            {
                "name": "service_scale",
                "metric": "qps_single_lock",
                "value": qps_single,
                "unit": "requests/s",
            },
            {
                "name": "service_scale",
                "metric": "qps_sharded_%d" % SHARDS,
                "value": qps_sharded,
                "unit": "requests/s",
            },
            {
                "name": "service_scale",
                "metric": "sharded_speedup",
                "value": speedup,
                "unit": "x",
            },
            {
                "name": "service_scale",
                "metric": "p50_sharded",
                "value": p50_sharded / 1e6,
                "unit": "s",
            },
            {
                "name": "service_scale",
                "metric": "p99_sharded",
                "value": p99_sharded / 1e6,
                "unit": "s",
            },
        ],
    )

    assert speedup >= MIN_SPEEDUP, (
        "sharded serving only %.2fx the single-lock service "
        "(bar: %.1fx at %d shards)" % (speedup, MIN_SPEEDUP, SHARDS)
    )
