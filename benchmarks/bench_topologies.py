"""Extension experiment: join-graph topology and the dynamic plan space.

The paper's queries are chains; their join-graph shape drives how many
bushy trees exist and hence how large dynamic plans grow.  This bench
sweeps chain, star, and cycle graphs of five relations and reports
logical alternatives, plan sizes, and optimization statistics — the
rule closure's completeness on all three shapes is separately verified
in ``tests/test_memo_rules.py``.
"""

from conftest import write_and_print

from repro.optimizer import optimize_dynamic, optimize_static
from repro.workloads import make_join_workload


def test_topology_sweep(benchmark, results_dir):
    lines = [
        "=" * 72,
        "EXTENSION — join-graph topology (5 relations)",
        "denser graphs mean more bushy trees and larger dynamic plans",
        "-" * 72,
        "%8s  %14s  %13s  %13s  %9s"
        % ("graph", "logical alts", "static nodes", "dynamic nodes",
           "chooses"),
    ]
    measured = {}
    for topology in ("chain", "star", "cycle"):
        workload = make_join_workload(5, topology=topology)
        dynamic = optimize_dynamic(workload.catalog, workload.query)
        static = optimize_static(workload.catalog, workload.query)
        measured[topology] = dynamic
        lines.append(
            "%8s  %14d  %13d  %13d  %9d"
            % (
                topology,
                dynamic.logical_alternatives(),
                static.node_count(),
                dynamic.node_count(),
                dynamic.choose_plan_count(),
            )
        )
    write_and_print(results_dir, "topologies", "\n".join(lines))

    # A 5-cycle's plan space strictly contains the 5-chain's (one more
    # edge, strictly more connected splits).
    assert (
        measured["cycle"].logical_alternatives()
        > measured["chain"].logical_alternatives()
    )
    for result in measured.values():
        assert result.choose_plan_count() >= 1

    workload = make_join_workload(5, topology="star")
    benchmark(lambda: optimize_dynamic(workload.catalog, workload.query))
