"""Figure 5: optimization time for static and dynamic plans.

Benchmarks the optimizer itself (static and dynamic on query 4) and
regenerates the measured-time curves, asserting the paper's shape:
dynamic-plan optimization is slower — branch-and-bound is weakened by
interval costs — but within a small factor (paper: < 3x).
"""

from conftest import write_and_print

from repro.experiments.figures import SERIES_SEL, figure5_optimization_times
from repro.experiments.report import render_figure
from repro.optimizer import optimize_dynamic, optimize_static
from repro.workloads import paper_workload


def test_bench_static_optimization_q4(benchmark):
    workload = paper_workload(4)
    benchmark(lambda: optimize_static(workload.catalog, workload.query))


def test_bench_dynamic_optimization_q4(benchmark):
    workload = paper_workload(4)
    benchmark(lambda: optimize_dynamic(workload.catalog, workload.query))


def test_figure5_optimization_times(benchmark, context, results_dir):
    workload = paper_workload(5)
    result = benchmark.pedantic(
        lambda: optimize_dynamic(workload.catalog, workload.query),
        rounds=3,
        iterations=1,
    )
    assert result.choose_plan_count() > 0

    figure = figure5_optimization_times(context)
    write_and_print(results_dir, "figure5", render_figure(figure))

    # Shape on the largest query (small queries are noise-dominated):
    largest = figure.points("dynamic, %s" % SERIES_SEL)[-1]
    static_value = figure.value_for("static, %s" % SERIES_SEL, largest["query"])
    assert largest["value"] > static_value * 0.5
    assert largest["ratio"] < 10.0
