"""Gate benchmark results against committed baselines.

``python benchmarks/check_regression.py`` compares every metric in
``benchmarks/results/*.json`` (fresh numbers from a bench run) against
the committed snapshots in ``benchmarks/baselines/*.json`` and fails —
exit status 1 — when any metric is *worse* than its baseline by more
than the tolerance (default ±25%).

Direction is inferred from the record's unit:

* ``s`` — latency: lower is better, a regression is an increase;
* ``records/s``, ``requests/s``, ``x``, ``fraction`` — throughput,
  speedup, hit rate: higher is better, a regression is a decrease.

Only regressions fail the gate.  Improvements beyond tolerance are
reported (they mean the committed baseline is stale and should be
refreshed, so future regressions are caught from the new level) but do
not fail.  Metrics present in results but absent from the baseline are
reported as new and pass — adding a benchmark must not require
hand-editing baselines in the same change that introduces it.  A
baseline *file* with no matching results file fails: that means CI
stopped running a bench whose floor we committed.

The before/after table is printed as GitHub-flavoured markdown and,
when ``GITHUB_STEP_SUMMARY`` is set, appended to the job summary.

Options::

    --tolerance FRACTION   allowed relative change (default 0.25, or
                           the REPRO_BENCH_TOLERANCE environment
                           variable when set)
    --results DIR          results directory (default benchmarks/results)
    --baselines DIR        baselines directory (default
                           benchmarks/baselines)

To refresh baselines after an intentional perf change::

    cp benchmarks/results/*.json benchmarks/baselines/
"""

import argparse
import json
import os
import pathlib
import sys

HERE = pathlib.Path(__file__).parent

#: Units where a smaller value is an improvement.
LOWER_IS_BETTER = frozenset(("s",))

#: Units where a larger value is an improvement.
HIGHER_IS_BETTER = frozenset(("records/s", "requests/s", "x", "fraction"))

DEFAULT_TOLERANCE = 0.25

#: Keys every record must carry for the comparison to be meaningful.
REQUIRED_RECORD_KEYS = ("name", "metric", "value", "unit")


class MalformedRecordError(ValueError):
    """A results/baseline file the gate cannot compare.

    Raised with a message naming the file, the record, and the missing
    or mistyped key — a hand-edited baseline must fail the gate with a
    diagnosis, never with a bare ``KeyError`` traceback.
    """


def load_records(path):
    """``{(name, metric): record}`` from one results/baseline file."""
    try:
        records = json.loads(path.read_text(encoding="utf-8"))
    except ValueError as error:
        raise MalformedRecordError(
            "%s is not valid JSON: %s" % (path.name, error)
        ) from error
    if not isinstance(records, list):
        raise MalformedRecordError(
            "%s: expected a JSON list of benchmark records, got %s"
            % (path.name, type(records).__name__)
        )
    loaded = {}
    for index, record in enumerate(records):
        if not isinstance(record, dict):
            raise MalformedRecordError(
                "%s: record %d is %s, not an object"
                % (path.name, index, type(record).__name__)
            )
        missing = [key for key in REQUIRED_RECORD_KEYS if key not in record]
        if missing:
            raise MalformedRecordError(
                "%s: record %d (%r) is missing key(s) %s — every "
                "benchmark record needs name, metric, value, and unit"
                % (path.name, index, record.get("name", record),
                   ", ".join(missing))
            )
        value = record["value"]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise MalformedRecordError(
                "%s: record %d (%s/%s) has non-numeric value %r"
                % (path.name, index, record["name"], record["metric"], value)
            )
        loaded[(record["name"], record["metric"])] = record
    return loaded


def relative_change(current, baseline):
    """Signed relative change, positive meaning the value went up."""
    if baseline == 0:
        return 0.0 if current == 0 else float("inf")
    return (current - baseline) / abs(baseline)


def classify(record, baseline_value, tolerance):
    """``(status, change)`` for one metric vs its baseline value.

    Status is ``ok``, ``regression``, or ``improvement``; ``change`` is
    the signed relative change.  Units outside the two known direction
    sets are compared symmetrically: any drift beyond tolerance is a
    regression, because we cannot tell which direction is good.
    """
    change = relative_change(record["value"], baseline_value)
    unit = record["unit"]
    if unit in LOWER_IS_BETTER:
        worse, better = change > tolerance, change < -tolerance
    elif unit in HIGHER_IS_BETTER:
        worse, better = change < -tolerance, change > tolerance
    else:
        worse, better = abs(change) > tolerance, False
    if worse:
        return "regression", change
    if better:
        return "improvement", change
    return "ok", change


def compare(results_dir, baselines_dir, tolerance):
    """``(rows, failures)``: table rows and hard-failure messages."""
    rows = []
    failures = []
    baseline_files = sorted(baselines_dir.glob("*.json"))
    if not baseline_files:
        failures.append("no baseline files in %s" % baselines_dir)
    for baseline_path in baseline_files:
        results_path = results_dir / baseline_path.name
        if not results_path.exists():
            failures.append(
                "baseline %s has no matching results file — did the "
                "bench stop running?" % baseline_path.name
            )
            continue
        try:
            baseline = load_records(baseline_path)
            results = load_records(results_path)
        except MalformedRecordError as error:
            failures.append(str(error))
            continue
        for key in sorted(set(baseline) | set(results)):
            name, metric = key
            if key not in results:
                failures.append(
                    "%s: metric %s/%s present in baseline but missing "
                    "from results" % (baseline_path.name, name, metric)
                )
                continue
            record = results[key]
            if key not in baseline:
                rows.append(
                    (name, metric, record["unit"], None,
                     record["value"], None, "new")
                )
                continue
            base_value = baseline[key]["value"]
            status, change = classify(record, base_value, tolerance)
            rows.append(
                (name, metric, record["unit"], base_value,
                 record["value"], change, status)
            )
            if status == "regression":
                failures.append(
                    "%s/%s regressed: %.6g -> %.6g (%+.1f%%, unit %s, "
                    "tolerance ±%.0f%%)"
                    % (name, metric, base_value, record["value"],
                       change * 100.0, record["unit"], tolerance * 100.0)
                )
    return rows, failures


def render_markdown(rows, tolerance):
    """The before/after comparison as a GitHub-flavoured markdown table."""
    status_marks = {
        "ok": "✅ ok",
        "improvement": "🚀 improved",
        "regression": "❌ regression",
        "new": "🆕 new",
    }
    lines = [
        "### Benchmark regression check (tolerance ±%.0f%%)"
        % (tolerance * 100.0),
        "",
        "| benchmark | metric | unit | baseline | current | change | "
        "status |",
        "| --- | --- | --- | ---: | ---: | ---: | --- |",
    ]
    for name, metric, unit, base, current, change, status in rows:
        lines.append(
            "| %s | %s | %s | %s | %.6g | %s | %s |"
            % (
                name,
                metric,
                unit,
                "—" if base is None else "%.6g" % base,
                current,
                "—" if change is None else "%+.1f%%" % (change * 100.0),
                status_marks[status],
            )
        )
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Compare benchmark results against committed "
        "baselines and fail on regression."
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(
            os.environ.get("REPRO_BENCH_TOLERANCE", DEFAULT_TOLERANCE)
        ),
        help="allowed relative change before a metric counts as a "
        "regression (default %(default)s)",
    )
    parser.add_argument(
        "--results", type=pathlib.Path, default=HERE / "results",
        help="directory holding fresh bench results "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--baselines", type=pathlib.Path, default=HERE / "baselines",
        help="directory holding committed baselines "
        "(default %(default)s)",
    )
    args = parser.parse_args(argv)
    if not 0 <= args.tolerance < 1:
        parser.error("--tolerance must be in [0, 1)")

    rows, failures = compare(args.results, args.baselines, args.tolerance)
    table = render_markdown(rows, args.tolerance)
    print(table)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a", encoding="utf-8") as handle:
            handle.write(table + "\n")

    if failures:
        print()
        for failure in failures:
            print("FAIL: %s" % failure, file=sys.stderr)
        return 1
    print()
    print(
        "all %d metrics within ±%.0f%% of baseline"
        % (len(rows), args.tolerance * 100.0)
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
