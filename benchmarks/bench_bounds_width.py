"""Extension experiment: exploiting partial knowledge of selectivities.

The paper's experiments use maximally uncertain selectivity bounds
[0, 1].  Applications often know more — a host variable drawn from a
logged range, say — and the interval framework exploits that for free:
narrower compile-time bounds mean fewer overlapping cost intervals,
fewer retained alternatives, and smaller dynamic plans, while the
optimality guarantee still holds *within the bounds*.  This sweep
shrinks the bounds around the paper's expected value and measures plan
size and optimization effort.
"""

from conftest import write_and_print

from repro.optimizer import optimize_dynamic
from repro.scenarios import DynamicPlanScenario, StaticPlanScenario
from repro.workloads import binding_series, make_join_workload


def test_bounds_width_sweep(benchmark, results_dir):
    lines = [
        "=" * 72,
        "EXTENSION — compile-time selectivity bounds width (4-way join)",
        "narrower bounds -> fewer incomparable plans -> smaller dynamic "
        "plans",
        "-" * 72,
        "%16s  %13s  %9s  %12s"
        % ("bounds", "dynamic nodes", "chooses", "candidates"),
    ]
    node_counts = []
    for low, high in ((0.0, 1.0), (0.0, 0.5), (0.0, 0.25), (0.02, 0.1),
                      (0.05, 0.05)):
        workload = make_join_workload(
            4,
            selectivity_bounds=(low, high),
            name="q3-bounds-%s-%s" % (low, high),
        )
        dynamic = optimize_dynamic(workload.catalog, workload.query)
        node_counts.append(dynamic.node_count())
        lines.append(
            "%16s  %13d  %9d  %12d"
            % (
                "[%.2f, %.2f]" % (low, high),
                dynamic.node_count(),
                dynamic.choose_plan_count(),
                dynamic.statistics.candidates_considered,
            )
        )
    write_and_print(results_dir, "bounds_width", "\n".join(lines))

    # Monotone shrinkage, collapsing to a static plan at zero width.
    assert node_counts == sorted(node_counts, reverse=True)
    assert node_counts[-1] < node_counts[0] / 3

    # The guarantee still holds within narrowed bounds.
    workload = make_join_workload(
        4, selectivity_bounds=(0.0, 0.25), name="q3-narrow"
    )
    series = binding_series(workload, count=10, seed=91)
    static = StaticPlanScenario(workload).run_series(series)
    dynamic = DynamicPlanScenario(workload).run_series(series)
    from repro.scenarios import RunTimeOptimizationScenario

    runtime = RunTimeOptimizationScenario(workload).run_series(series)
    assert abs(
        dynamic.average_execution_seconds - runtime.average_execution_seconds
    ) < 1e-9
    assert dynamic.average_execution_seconds <= static.average_execution_seconds

    benchmark(
        lambda: optimize_dynamic(workload.catalog, workload.query)
    )
