"""Vectorized executor throughput: batch mode vs record-at-a-time.

The batch engine exists to cut interpreter dispatch, not simulated
I/O — both executors charge identical page/record totals (held by the
differential suite in ``tests/test_vectorized.py``), so the quantity
to gate on is record throughput: records processed per wall-clock
second on the same plan over the same data.

This bench runs the static plans of all five paper queries through
both engines and asserts the acceptance bar on the largest one (query
5, the 10-way chain): batch mode must process records at >=2x the row
engine's rate.  Both sides execute the same binding sweep and are
timed in strictly alternating repetitions, compared min-to-min, so
machine drift hits both engines equally instead of deciding the
verdict.

``REPRO_BENCH_N`` scales the repetition count (floor 5).
"""

from time import perf_counter

from conftest import bench_invocations, write_and_print, write_json_results

from repro import (
    Database,
    execute_plan,
    optimize_static,
    paper_workload,
    populate_database,
)
from repro.workloads import binding_series

#: The acceptance bar on the largest paper query.
MIN_SPEEDUP = 2.0

#: The paper query the bar is gated on (10-way chain join).
GATED_QUERY = 5

#: Binding sets swept per timed repetition.
BINDING_SETS = 5


def _sweep_seconds(plan, database, bindings_list, parameter_space, mode):
    """Wall seconds to execute ``plan`` once per binding set."""
    started = perf_counter()
    for bindings in bindings_list:
        execute_plan(
            plan, database, bindings, parameter_space, execution_mode=mode
        )
    return perf_counter() - started


def _measure_query(number, repetitions):
    """Min-of-reps row/batch timings for one paper query's static plan."""
    workload = paper_workload(number)
    plan = optimize_static(workload.catalog, workload.query).plan
    database = Database(workload.catalog)
    populate_database(database, seed=11)
    bindings_list = binding_series(workload, count=BINDING_SETS, seed=5)
    space = workload.query.parameter_space

    # Records processed and rows returned are mode-independent; take
    # them from one untimed run (which also warms both code paths).
    row_result = execute_plan(
        plan, database, bindings_list[0], space, execution_mode="row"
    )
    batch_result = execute_plan(
        plan, database, bindings_list[0], space, execution_mode="batch"
    )
    assert row_result.io_snapshot == batch_result.io_snapshot
    records_per_sweep = 0
    for bindings in bindings_list:
        before = database.io_stats.snapshot()["records_processed"]
        execute_plan(plan, database, bindings, space, execution_mode="row")
        records_per_sweep += (
            database.io_stats.snapshot()["records_processed"] - before
        )

    row_seconds = float("inf")
    batch_seconds = float("inf")
    for _ in range(repetitions):
        row_seconds = min(
            row_seconds,
            _sweep_seconds(plan, database, bindings_list, space, "row"),
        )
        batch_seconds = min(
            batch_seconds,
            _sweep_seconds(plan, database, bindings_list, space, "batch"),
        )
    return {
        "query": workload.name,
        "rows": row_result.row_count,
        "records": records_per_sweep,
        "row_seconds": row_seconds,
        "batch_seconds": batch_seconds,
        "row_throughput": records_per_sweep / row_seconds,
        "batch_throughput": records_per_sweep / batch_seconds,
        "speedup": row_seconds / batch_seconds,
    }


def render_table(measurements):
    """The row/batch comparison table as printable text."""
    lines = [
        "vectorized executor: record throughput, batch vs row "
        "(static plans, %d binding sets, min-of-reps)" % BINDING_SETS,
        "",
        "  %-8s %8s %10s %12s %12s %14s %14s %8s"
        % (
            "query",
            "rows",
            "records",
            "row-sec",
            "batch-sec",
            "row-rec/s",
            "batch-rec/s",
            "speedup",
        ),
    ]
    for m in measurements:
        lines.append(
            "  %-8s %8d %10d %12.6f %12.6f %14.0f %14.0f %7.2fx"
            % (
                m["query"],
                m["rows"],
                m["records"],
                m["row_seconds"],
                m["batch_seconds"],
                m["row_throughput"],
                m["batch_throughput"],
                m["speedup"],
            )
        )
    return "\n".join(lines)


def test_batch_throughput(results_dir):
    repetitions = max(5, bench_invocations() // 2)
    measurements = [
        _measure_query(number, repetitions) for number in (1, 2, 3, 4, 5)
    ]

    write_and_print(results_dir, "vectorized", render_table(measurements))
    records = []
    for m in measurements:
        records.append(
            {
                "name": "vectorized_%s" % m["query"],
                "metric": "batch_record_throughput",
                "value": m["batch_throughput"],
                "unit": "records/s",
            }
        )
        records.append(
            {
                "name": "vectorized_%s" % m["query"],
                "metric": "row_record_throughput",
                "value": m["row_throughput"],
                "unit": "records/s",
            }
        )
        records.append(
            {
                "name": "vectorized_%s" % m["query"],
                "metric": "batch_over_row_speedup",
                "value": m["speedup"],
                "unit": "x",
            }
        )
    write_json_results(results_dir, "vectorized", records)

    gated = next(
        m for m in measurements if m["query"] == "query%d" % GATED_QUERY
    )
    assert gated["speedup"] >= MIN_SPEEDUP, (
        "batch mode only %.2fx the row engine's record throughput on "
        "%s (bar: %.1fx)" % (gated["speedup"], gated["query"], MIN_SPEEDUP)
    )
