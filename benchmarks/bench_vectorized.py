"""Executor throughput: batch and compiled modes vs record-at-a-time.

The batch engine exists to cut interpreter dispatch, not simulated
I/O, and the pipeline compiler exists to cut what dispatch batching
leaves behind — all three executors charge identical page/record
totals (held by the differential suites in ``tests/test_vectorized.py``
and ``tests/test_compiled.py``), so the quantity to gate on is record
throughput: records processed per wall-clock second on the same plan
over the same data.

This bench runs the static plans of all five paper queries through
the row, batch, and compiled engines and asserts the acceptance bars:

* query 5 (the 10-way chain): batch >= 2x row, compiled >= 1.5x row;
* query 1 (single-relation index scan, where per-batch overhead once
  made batching a *pessimization*): batch >= 1x row, compiled >= 1x
  row — no query may regress by switching modes.

All sides execute the same binding sweep and are timed in strictly
alternating repetitions, compared min-to-min, so machine drift hits
every engine equally instead of deciding the verdict.

``REPRO_BENCH_N`` scales the repetition count (floor 5).
"""

from time import perf_counter

from conftest import bench_invocations, write_and_print, write_json_results

from repro import (
    Database,
    execute_plan,
    optimize_static,
    paper_workload,
    populate_database,
)
from repro.executor.compiled import compile_plan
from repro.workloads import binding_series

#: Batch-over-row acceptance bar on the largest paper query.
MIN_SPEEDUP = 2.0

#: Compiled-over-row acceptance bar on the largest paper query.
MIN_COMPILED_SPEEDUP = 1.5

#: No mode may fall below row-mode throughput on the smallest query.
MIN_SMALL_QUERY_SPEEDUP = 1.0

#: The paper query the large bars are gated on (10-way chain join).
GATED_QUERY = 5

#: The paper query the no-regression bar is gated on (1-way scan).
SMALL_QUERY = 1

#: Binding sets swept per timed repetition.
BINDING_SETS = 5

#: Execution modes measured, in sweep order.
MODES = ("row", "batch", "compiled")


def _sweep_seconds(plan, database, bindings_list, parameter_space, mode,
                   program=None):
    """Wall seconds to execute ``plan`` once per binding set."""
    started = perf_counter()
    for bindings in bindings_list:
        execute_plan(
            plan, database, bindings, parameter_space, execution_mode=mode,
            compiled_program=program,
        )
    return perf_counter() - started


def _measure_query(number, repetitions):
    """Min-of-reps per-mode timings for one paper query's static plan."""
    workload = paper_workload(number)
    plan = optimize_static(workload.catalog, workload.query).plan
    database = Database(workload.catalog)
    populate_database(database, seed=11)
    bindings_list = binding_series(workload, count=BINDING_SETS, seed=5)
    space = workload.query.parameter_space
    # One shared program, as the service holds per cached plan: codegen
    # is paid once, the timed sweeps measure steady-state execution.
    program = compile_plan(plan)

    # Records processed and rows returned are mode-independent; take
    # them from untimed runs (which also warm every code path).
    results = {
        mode: execute_plan(
            plan, database, bindings_list[0], space, execution_mode=mode,
            compiled_program=program if mode == "compiled" else None,
        )
        for mode in MODES
    }
    for mode in MODES[1:]:
        assert results[mode].io_snapshot == results["row"].io_snapshot
    records_per_sweep = 0
    for bindings in bindings_list:
        before = database.io_stats.snapshot()["records_processed"]
        execute_plan(plan, database, bindings, space, execution_mode="row")
        records_per_sweep += (
            database.io_stats.snapshot()["records_processed"] - before
        )

    seconds = {mode: float("inf") for mode in MODES}
    for _ in range(repetitions):
        for mode in MODES:
            seconds[mode] = min(
                seconds[mode],
                _sweep_seconds(
                    plan, database, bindings_list, space, mode,
                    program=program if mode == "compiled" else None,
                ),
            )
    measurement = {
        "query": workload.name,
        "rows": results["row"].row_count,
        "records": records_per_sweep,
    }
    for mode in MODES:
        measurement["%s_seconds" % mode] = seconds[mode]
        measurement["%s_throughput" % mode] = records_per_sweep / seconds[mode]
    measurement["speedup"] = seconds["row"] / seconds["batch"]
    measurement["compiled_speedup"] = seconds["row"] / seconds["compiled"]
    return measurement


def render_table(measurements):
    """The row/batch/compiled comparison table as printable text."""
    lines = [
        "executor record throughput: batch and compiled vs row "
        "(static plans, %d binding sets, min-of-reps)" % BINDING_SETS,
        "",
        "  %-8s %8s %10s %12s %12s %12s %8s %9s"
        % (
            "query",
            "rows",
            "records",
            "row-sec",
            "batch-sec",
            "comp-sec",
            "batch-x",
            "comp-x",
        ),
    ]
    for m in measurements:
        lines.append(
            "  %-8s %8d %10d %12.6f %12.6f %12.6f %7.2fx %8.2fx"
            % (
                m["query"],
                m["rows"],
                m["records"],
                m["row_seconds"],
                m["batch_seconds"],
                m["compiled_seconds"],
                m["speedup"],
                m["compiled_speedup"],
            )
        )
    return "\n".join(lines)


def test_batch_throughput(results_dir):
    repetitions = max(5, bench_invocations() // 2)
    measurements = [
        _measure_query(number, repetitions) for number in (1, 2, 3, 4, 5)
    ]

    write_and_print(results_dir, "vectorized", render_table(measurements))
    records = []
    for m in measurements:
        for metric, value in (
            ("batch_record_throughput", m["batch_throughput"]),
            ("row_record_throughput", m["row_throughput"]),
            ("compiled_record_throughput", m["compiled_throughput"]),
            ("batch_over_row_speedup", m["speedup"]),
            ("compiled_over_row_speedup", m["compiled_speedup"]),
        ):
            records.append(
                {
                    "name": "vectorized_%s" % m["query"],
                    "metric": metric,
                    "value": value,
                    "unit": "records/s" if "throughput" in metric else "x",
                }
            )
    write_json_results(results_dir, "vectorized", records)

    by_query = {m["query"]: m for m in measurements}
    gated = by_query["query%d" % GATED_QUERY]
    small = by_query["query%d" % SMALL_QUERY]
    assert gated["speedup"] >= MIN_SPEEDUP, (
        "batch mode only %.2fx the row engine's record throughput on "
        "%s (bar: %.1fx)" % (gated["speedup"], gated["query"], MIN_SPEEDUP)
    )
    assert gated["compiled_speedup"] >= MIN_COMPILED_SPEEDUP, (
        "compiled mode only %.2fx the row engine's record throughput on "
        "%s (bar: %.1fx)"
        % (gated["compiled_speedup"], gated["query"], MIN_COMPILED_SPEEDUP)
    )
    assert small["speedup"] >= MIN_SMALL_QUERY_SPEEDUP, (
        "batch mode regressed to %.2fx of the row engine on %s "
        "(bar: %.1fx)"
        % (small["speedup"], small["query"], MIN_SMALL_QUERY_SPEEDUP)
    )
    assert small["compiled_speedup"] >= MIN_SMALL_QUERY_SPEEDUP, (
        "compiled mode regressed to %.2fx of the row engine on %s "
        "(bar: %.1fx)"
        % (small["compiled_speedup"], small["query"], MIN_SMALL_QUERY_SPEEDUP)
    )
