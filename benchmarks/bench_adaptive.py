"""Extension bench: run-time decisions with observed cardinalities
(the Section 7 future-work direction).

Scenario: the selectivity *estimates* handed to start-up time are
wrong (they claim 0.05, the data delivers 0.9).  Plain start-up
resolution trusts them and picks a plan that is catastrophic under the
true parameters; the adaptive executor materializes the selections,
observes their actual cardinalities, and re-decides the joins.
"""

from conftest import write_and_print

from repro.algebra.physical import Materialized
from repro.catalog import populate_database
from repro.executor import execute_adaptively, resolve_dynamic_plan
from repro.executor.startup import _rebuild
from repro.optimizer import optimize_dynamic
from repro.scenarios import predicted_execution_seconds
from repro.storage import Database
from repro.workloads import paper_workload, random_bindings


def _strip_materialized(plan):
    if isinstance(plan, Materialized):
        return _strip_materialized(plan.original)
    return _rebuild(plan, [_strip_materialized(c) for c in plan.inputs()])


def _bindings(workload, claimed, actual):
    bindings = random_bindings(workload, seed=0)
    for relation in workload.query.relations:
        domain = workload.catalog.domain_size(relation, "a")
        bindings.bind("sel_%s" % relation, claimed)
        bindings.bind_variable("v_%s" % relation, actual * domain)
    return bindings


def test_adaptive_execution_recovery(benchmark, results_dir):
    workload = paper_workload(3)
    database = Database(workload.catalog)
    populate_database(database, seed=0)
    space = workload.query.parameter_space
    dynamic = optimize_dynamic(workload.catalog, workload.query)

    claimed, actual = 0.05, 0.9
    lied = _bindings(workload, claimed, actual)
    truth = _bindings(workload, actual, actual)

    fooled_plan, _ = resolve_dynamic_plan(
        dynamic.plan, workload.catalog, space, lied
    )
    fooled_cost = predicted_execution_seconds(
        fooled_plan, workload.catalog, space, truth
    )
    optimal_plan, _ = resolve_dynamic_plan(
        dynamic.plan, workload.catalog, space, truth
    )
    optimal_cost = predicted_execution_seconds(
        optimal_plan, workload.catalog, space, truth
    )
    _, report = execute_adaptively(dynamic.plan, database, lied, space)
    adaptive_cost = predicted_execution_seconds(
        _strip_materialized(report.final_plan), workload.catalog, space, truth
    )

    lines = [
        "=" * 72,
        "EXTENSION — run-time decisions with observed cardinalities "
        "(Section 7)",
        "scenario: estimates claim selectivity %.2f, data delivers %.2f"
        % (claimed, actual),
        "-" * 72,
        "fooled start-up plan, true cost  : %8.2f s" % fooled_cost,
        "adaptive executor's plan         : %8.2f s" % adaptive_cost,
        "true optimum                     : %8.2f s" % optimal_cost,
        "materialized temporaries         : %d subplans, %d records "
        "(%d wasted)"
        % (
            report.materialized_subplans,
            report.materialized_records,
            report.wasted_records,
        ),
        "note: the residual gap to the optimum is the scan decisions, "
        "which must be made before anything can be observed.",
    ]
    write_and_print(results_dir, "adaptive", "\n".join(lines))

    assert adaptive_cost < fooled_cost * 0.8
    assert optimal_cost <= adaptive_cost + 1e-9

    benchmark(
        lambda: execute_adaptively(dynamic.plan, database, lied, space)
    )
