"""Extension experiment: isolating the number of uncertain variables.

Figures 4-8 vary query size and uncertainty together (bigger queries
have more unbound predicates).  This sweep holds the query fixed — the
six-way join of query 4 — and varies how many of its six selection
predicates are unbound (0..6), isolating the effect the paper's x-axis
conflates: how plan size, optimization time, and the static-plan
penalty scale with uncertainty *alone*.
"""

from conftest import write_and_print

from repro.optimizer import optimize_dynamic, optimize_static
from repro.scenarios import DynamicPlanScenario, StaticPlanScenario
from repro.workloads import binding_series, make_join_workload


def test_uncertainty_sweep(benchmark, results_dir):
    relation_count = 6
    rows = []
    for uncertain in range(relation_count + 1):
        workload = make_join_workload(
            relation_count,
            uncertain_selections=uncertain,
            name="6-way-u%d" % uncertain,
        )
        dynamic = optimize_dynamic(workload.catalog, workload.query)
        static = optimize_static(workload.catalog, workload.query)
        series = binding_series(workload, count=12, seed=71)
        static_result = StaticPlanScenario(workload).run_series(series)
        dynamic_result = DynamicPlanScenario(workload).run_series(series)
        ratio = static_result.average_execution_seconds / max(
            dynamic_result.average_execution_seconds, 1e-12
        )
        rows.append(
            (
                uncertain,
                static.node_count(),
                dynamic.node_count(),
                dynamic.choose_plan_count(),
                dynamic.statistics.optimization_seconds,
                ratio,
            )
        )

    lines = [
        "=" * 72,
        "EXTENSION — uncertainty sweep (6-way join, 0..6 unbound "
        "predicates)",
        "isolates the paper's x-axis: uncertainty alone, query shape "
        "fixed",
        "-" * 72,
        "%6s  %12s  %13s  %8s  %12s  %12s"
        % ("#unc", "static nodes", "dynamic nodes", "chooses",
           "opt time [s]", "exec ratio"),
    ]
    for uncertain, s_nodes, d_nodes, chooses, seconds, ratio in rows:
        lines.append(
            "%6d  %12d  %13d  %8d  %12.4f  %12.1f"
            % (uncertain, s_nodes, d_nodes, chooses, seconds, ratio)
        )
    write_and_print(results_dir, "uncertainty_sweep", "\n".join(lines))

    node_counts = [row[2] for row in rows]
    ratios = [row[5] for row in rows]
    # With no uncertainty the dynamic plan degenerates to (nearly) the
    # static plan and the ratio is 1; both grow with uncertainty.
    assert node_counts[0] <= node_counts[-1]
    assert node_counts == sorted(node_counts)
    assert abs(ratios[0] - 1.0) < 0.05
    assert ratios[-1] > 2.0

    workload = make_join_workload(relation_count, uncertain_selections=3)
    benchmark(lambda: optimize_dynamic(workload.catalog, workload.query))
