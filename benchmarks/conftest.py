"""Shared benchmark fixtures.

Each bench module regenerates one of the paper's tables or figures and
writes the rendered rows to ``benchmarks/results/``.  The shared
experiment context (all scenarios for all five paper queries, with and
without memory uncertainty) is computed once per session.

Set ``REPRO_BENCH_N`` to change the invocation count (default 30; the
paper uses 100 — see EXPERIMENTS.md for a full-N run's numbers).
"""

import json
import os
import pathlib

import pytest

from repro.common import percentile
from repro.experiments.figures import ExperimentContext
from repro.experiments.results import ExperimentSettings

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_invocations():
    """Invocation count used by the benchmark harness."""
    return int(os.environ.get("REPRO_BENCH_N", "30"))


@pytest.fixture(scope="session")
def settings():
    """Experiment settings shared by all figure benches."""
    return ExperimentSettings(invocations=bench_invocations())


@pytest.fixture(scope="session")
def context(settings):
    """Shared scenario results for all five paper queries."""
    return ExperimentContext(settings)


@pytest.fixture(scope="session")
def results_dir():
    """Directory collecting the rendered figure outputs."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_and_print(results_dir, name, text):
    """Persist a rendered figure and echo it to stdout."""
    path = results_dir / ("%s.txt" % name)
    path.write_text(text + "\n", encoding="utf-8")
    print()
    print(text)


def latency_summary(name, values, unit="s"):
    """Benchmark records summarizing a latency sample: p50/p95/mean.

    Uses the library's own :func:`repro.common.percentile` (the one
    the service statistics report with), so benchmark artifacts and
    service-side numbers are computed identically.
    """
    return [
        {
            "name": name,
            "metric": "p50",
            "value": percentile(values, 0.50),
            "unit": unit,
        },
        {
            "name": name,
            "metric": "p95",
            "value": percentile(values, 0.95),
            "unit": unit,
        },
        {
            "name": name,
            "metric": "mean",
            "value": sum(values) / len(values),
            "unit": unit,
        },
    ]


#: Keys every machine-readable benchmark record must carry.
RESULT_RECORD_KEYS = frozenset(("name", "metric", "value", "unit"))


def write_json_results(results_dir, name, records):
    """Persist machine-readable benchmark results; returns the path.

    ``records`` is a list of ``{name, metric, value, unit}`` dicts —
    one measurement each — written to ``benchmarks/results/<name>.json``
    so CI can collect the perf trajectory as an artifact.  Records are
    validated here so a malformed bench fails its own run, not the
    downstream consumer.
    """
    records = list(records)
    for record in records:
        missing = RESULT_RECORD_KEYS - set(record)
        if missing:
            raise ValueError(
                "benchmark record %r missing keys: %s"
                % (record, ", ".join(sorted(missing)))
            )
        if not isinstance(record["value"], (int, float)):
            raise ValueError(
                "benchmark record %r value must be numeric" % (record,)
            )
    path = results_dir / ("%s.json" % name)
    path.write_text(json.dumps(records, indent=2) + "\n", encoding="utf-8")
    return path
