"""Optimizer configuration and CPU-time calibration."""

import pytest

from repro.cost.calibration import (
    DEFAULT_CPU_SCALE,
    PAPER_EVALUATION_RATE,
    derive_cpu_scale,
    measure_evaluation_rate,
)
from repro.optimizer import OptimizerConfig, OptimizerMode, optimize_dynamic


class TestOptimizerConfig:
    def test_factory_modes(self):
        assert OptimizerConfig.static().mode is OptimizerMode.STATIC
        assert OptimizerConfig.dynamic().mode is OptimizerMode.DYNAMIC
        assert OptimizerConfig.exhaustive().mode is OptimizerMode.EXHAUSTIVE

    def test_is_static_flags(self):
        assert OptimizerConfig.static().is_static
        assert not OptimizerConfig.dynamic().is_static
        assert OptimizerConfig.exhaustive().is_exhaustive

    def test_defaults_match_paper_prototype(self):
        config = OptimizerConfig.dynamic()
        assert config.branch_and_bound
        assert config.keep_equal_cost_plans  # "the most naive manner"
        assert not config.multipoint_heuristic  # paper leaves it off
        assert config.max_alternatives is None

    def test_overrides_via_factories(self):
        config = OptimizerConfig.dynamic(branch_and_bound=False, seed=7)
        assert not config.branch_and_bound
        assert config.seed == 7

    def test_choose_plan_overhead_flows_into_costs(self, workload1):
        cheap = optimize_dynamic(
            workload1.catalog, workload1.query,
            OptimizerConfig.dynamic(choose_plan_overhead=0.0),
        )
        pricey = optimize_dynamic(
            workload1.catalog, workload1.query,
            OptimizerConfig.dynamic(choose_plan_overhead=1.0),
        )
        assert pricey.cost.lower > cheap.cost.lower


class TestCalibration:
    def test_paper_rate_constant(self):
        # 14,090 cost evaluations in 5.8 seconds (Section 6).
        assert PAPER_EVALUATION_RATE == pytest.approx(14090 / 5.8)

    def test_measured_rate_positive(self, workload2):
        dynamic = optimize_dynamic(workload2.catalog, workload2.query)
        rate = measure_evaluation_rate(
            workload2.catalog, dynamic.plan,
            workload2.query.parameter_space, repetitions=5,
        )
        assert rate > 0

    def test_derived_scale_at_least_one(self, workload2):
        dynamic = optimize_dynamic(workload2.catalog, workload2.query)
        scale = derive_cpu_scale(
            workload2.catalog, dynamic.plan,
            workload2.query.parameter_space, repetitions=5,
        )
        assert scale >= 1.0

    def test_default_scale_order_of_magnitude(self):
        # A constant, documented calibration: hundreds, not millions.
        assert 10 <= DEFAULT_CPU_SCALE <= 10_000
