"""Hash-join and sort spill accounting: executor vs cost model.

Both the simulator and the cost model must agree on *when* memory
pressure causes spills, and both must charge more as memory shrinks —
the agreement that makes memory a meaningful run-time parameter.
"""

import pytest

from repro.algebra.physical import FileScan, HashJoin, Sort
from repro.cost.formulas import CostModel
from repro.cost.parameters import Bindings, Valuation
from repro.executor import execute_plan


@pytest.fixture(scope="module")
def join_plan(workload2):
    return HashJoin(
        FileScan("R2"), FileScan("R1"), workload2.query.join_predicates[0]
    )


def run_with_memory(plan, database, space, memory_pages):
    bindings = Bindings().bind("memory_pages", memory_pages)
    return execute_plan(plan, database, bindings, space)


class TestHashJoinSpills:
    def test_no_spill_with_ample_memory(self, workload2, database2,
                                        join_plan):
        result = run_with_memory(
            join_plan, database2, workload2.query.parameter_space, 1000
        )
        assert result.io_snapshot["pages_written"] == 0

    def test_spill_with_tight_memory(self, workload2, database2, join_plan):
        result = run_with_memory(
            join_plan, database2, workload2.query.parameter_space, 4
        )
        assert result.io_snapshot["pages_written"] > 0
        assert result.io_snapshot["pages_read"] > 0

    def test_model_agrees_on_spill_threshold(self, workload2, join_plan):
        space = workload2.query.parameter_space
        build_pages = workload2.catalog.statistics("R2").pages

        def model_cost(memory_pages):
            bindings = Bindings().bind("memory_pages", memory_pages)
            return CostModel(
                workload2.catalog, Valuation.runtime(space, bindings)
            ).evaluate(join_plan).cost.lower

        fits = model_cost(build_pages + 10)
        spills = model_cost(max(build_pages // 4, 2))
        assert spills > fits

    def test_model_cost_decreases_with_memory(self, workload2, join_plan):
        space = workload2.query.parameter_space
        costs = []
        for memory_pages in (4, 16, 64, 256, 1024):
            bindings = Bindings().bind("memory_pages", memory_pages)
            costs.append(
                CostModel(
                    workload2.catalog, Valuation.runtime(space, bindings)
                ).evaluate(join_plan).cost.lower
            )
        assert costs == sorted(costs, reverse=True)


class TestSortSpills:
    def test_sort_spill_threshold(self, workload2, database2):
        plan = Sort(FileScan("R2"), "R2.b")
        space = workload2.query.parameter_space
        roomy = run_with_memory(plan, database2, space, 1000)
        tight = run_with_memory(plan, database2, space, 4)
        assert roomy.io_snapshot["pages_written"] == 0
        assert tight.io_snapshot["pages_written"] > 0
        # Same rows either way.
        assert roomy.row_count == tight.row_count

    def test_sort_model_memory_monotone(self, workload2):
        plan = Sort(FileScan("R2"), "R2.b")
        space = workload2.query.parameter_space
        costs = []
        for memory_pages in (4, 32, 300):
            bindings = Bindings().bind("memory_pages", memory_pages)
            costs.append(
                CostModel(
                    workload2.catalog, Valuation.runtime(space, bindings)
                ).evaluate(plan).cost.lower
            )
        assert costs[0] > costs[-1]
