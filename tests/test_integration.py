"""End-to-end integration: compile -> serialize -> activate -> execute.

The full production lifecycle of a dynamic plan, exercised on real
stored data, with results checked against an independent reference
evaluation and costs checked against the optimality guarantee.
"""

import pytest

from repro import (
    AccessModule,
    Database,
    execute_plan,
    optimize_dynamic,
    optimize_runtime,
    optimize_static,
    populate_database,
)
from repro.executor import activate_plan
from repro.scenarios import predicted_execution_seconds
from repro.workloads import binding_series, make_join_workload

from tests._reference import reference_rows, row_multiset


@pytest.fixture(scope="module")
def star3():
    workload = make_join_workload(3, topology="star", seed=5)
    database = Database(workload.catalog)
    populate_database(database, seed=5)
    return workload, database


class TestFullLifecycle:
    def test_compile_store_activate_execute(self, workload2, database2):
        query = workload2.query
        # 1. Compile once.
        dynamic = optimize_dynamic(workload2.catalog, query)
        # 2. Store the access module (this is what survives restarts).
        payload = AccessModule.from_plan(dynamic.plan, query.name).to_bytes()

        keys = ["R1.a", "R2.a"]
        for bindings in binding_series(workload2, count=5, seed=21):
            # 3. Activate: read module, run decision procedures.
            module = AccessModule.from_bytes(payload)
            plan = module.materialize()
            chosen, report = activate_plan(
                plan, workload2.catalog, query.parameter_space, bindings
            )
            assert chosen.choose_plan_count() == 0
            assert report.total_seconds > 0
            # 4. Execute and compare against the reference evaluation.
            executed = execute_plan(
                chosen, database2, bindings, query.parameter_space
            )
            expected = reference_rows(workload2, database2, bindings)
            assert row_multiset(executed.records, keys) == row_multiset(
                expected, keys
            )
            # 5. The guarantee: chosen cost equals run-time optimum.
            optimum = optimize_runtime(workload2.catalog, query, bindings)
            assert predicted_execution_seconds(
                chosen, workload2.catalog, query.parameter_space, bindings
            ) == pytest.approx(
                predicted_execution_seconds(
                    optimum.plan, workload2.catalog,
                    query.parameter_space, bindings,
                ),
                rel=1e-9,
            )

    def test_star_topology_end_to_end(self, star3):
        workload, database = star3
        query = workload.query
        dynamic = optimize_dynamic(workload.catalog, query)
        static = optimize_static(workload.catalog, query)
        keys = ["%s.a" % relation for relation in query.relations]
        for bindings in binding_series(workload, count=4, seed=9):
            expected = row_multiset(
                reference_rows(workload, database, bindings), keys
            )
            for plan in (dynamic.plan, static.plan):
                executed = execute_plan(
                    plan, database, bindings, query.parameter_space
                )
                assert row_multiset(executed.records, keys) == expected

    def test_executed_io_tracks_cost_model_ranking(self, workload1,
                                                   database1):
        """The cost model must rank plans like the real substrate does:
        whichever scan the decision procedure picks must also read
        fewer simulated pages when actually executed."""
        from repro.algebra.physical import FileScan, Filter, FilterBTreeScan
        from repro.workloads import random_bindings

        predicate = workload1.query.selection_for("R1")
        domain = workload1.catalog.domain_size("R1", "a")
        space = workload1.query.parameter_space
        for selectivity in (0.02, 0.25, 0.6, 0.95):
            bindings = random_bindings(workload1, seed=1)
            bindings.bind("sel_R1", selectivity)
            bindings.bind_variable("v_R1", selectivity * domain)
            file_plan = Filter(FileScan("R1"), predicate)
            index_plan = FilterBTreeScan("R1", "a", predicate)
            predicted_file = predicted_execution_seconds(
                file_plan, workload1.catalog, space, bindings
            )
            predicted_index = predicted_execution_seconds(
                index_plan, workload1.catalog, space, bindings
            )
            executed_file = execute_plan(
                file_plan, database1, bindings, space
            ).io_snapshot["pages_read"]
            executed_index = execute_plan(
                index_plan, database1, bindings, space
            ).io_snapshot["pages_read"]
            if predicted_index < predicted_file * 0.7:
                assert executed_index < executed_file
            elif predicted_file < predicted_index * 0.7:
                assert executed_file < executed_index

    def test_dynamic_plan_executes_directly_with_choose_iterators(
        self, workload2, database2
    ):
        """Executing the *unresolved* dynamic plan must behave exactly
        like resolving first: the choose-plan iterator decides at
        open."""
        from repro.executor import resolve_dynamic_plan
        from repro.workloads import random_bindings

        dynamic = optimize_dynamic(workload2.catalog, workload2.query)
        bindings = random_bindings(workload2, seed=33)
        direct = execute_plan(
            dynamic.plan, database2, bindings, workload2.query.parameter_space
        )
        chosen, _ = resolve_dynamic_plan(
            dynamic.plan, workload2.catalog,
            workload2.query.parameter_space, bindings,
        )
        resolved = execute_plan(
            chosen, database2, bindings, workload2.query.parameter_space
        )
        keys = ["R1.a", "R2.a"]
        assert row_multiset(direct.records, keys) == row_multiset(
            resolved.records, keys
        )
        assert len(direct.decisions) >= 1
