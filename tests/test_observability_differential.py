"""Differential tests: tracing must never change what a query does.

The tracer wraps every iterator and snapshots the shared I/O counters
around each record, so the highest-risk bug in the observability layer
is an *observer effect* — tracing perturbing results, decision
outcomes, or the simulated I/O accounting.  These tests execute every
paper query twice, traced and untraced, from identically populated
databases, and require byte-identical result rows and identical
``IOStatistics`` totals, for both static and dynamic plans.

They double as accounting tests for the trace itself: per-operator
page counts must sum to the run's totals, and the root span's row
count must equal the result's row count.
"""

import pytest

from repro.catalog import populate_database
from repro.executor.engine import execute_plan
from repro.observability import Tracer
from repro.optimizer.optimizer import optimize_dynamic, optimize_static
from repro.storage.database import Database
from repro.workloads import binding_series, paper_workload

PAPER_QUERIES = (1, 2, 3, 4, 5)
PLAN_KINDS = ("static", "dynamic")


def _optimize(workload, kind):
    if kind == "static":
        return optimize_static(workload.catalog, workload.query).plan
    return optimize_dynamic(workload.catalog, workload.query).plan


def _run(workload, plan, bindings, tracer):
    database = Database(workload.catalog)
    populate_database(database, seed=11)
    return execute_plan(
        plan,
        database,
        bindings,
        workload.query.parameter_space,
        tracer=tracer,
    )


@pytest.mark.parametrize("kind", PLAN_KINDS)
@pytest.mark.parametrize("number", PAPER_QUERIES)
def test_tracing_preserves_results_and_io(number, kind):
    workload = paper_workload(number)
    plan = _optimize(workload, kind)
    for bindings in binding_series(workload, count=2, seed=5):
        untraced = _run(workload, plan, bindings, tracer=None)
        traced = _run(workload, plan, bindings, tracer=Tracer())

        assert traced.records == untraced.records
        assert traced.io_snapshot == untraced.io_snapshot
        assert traced.decisions == untraced.decisions

        assert untraced.trace is None and untraced.profile is None
        assert traced.trace is not None and traced.profile is not None


@pytest.mark.parametrize("kind", PLAN_KINDS)
@pytest.mark.parametrize("number", PAPER_QUERIES)
def test_trace_accounting_matches_run(number, kind):
    workload = paper_workload(number)
    plan = _optimize(workload, kind)
    bindings = binding_series(workload, count=1, seed=5)[0]
    result = _run(workload, plan, bindings, tracer=Tracer())

    trace = result.trace
    assert len(trace.roots) == 1
    root = trace.roots[0]

    # The root operator's rows are the query's result rows.
    assert root.rows == result.row_count

    # Inclusive root accounting covers the whole run's simulated I/O.
    assert root.pages_read == result.io_snapshot["pages_read"]
    assert root.pages_written == result.io_snapshot["pages_written"]
    assert (
        root.records_processed == result.io_snapshot["records_processed"]
    )

    # Exclusive spans partition the inclusive root totals.
    spans = [span for span, _ in trace.walk()]
    exclusive_pages = sum(
        trace.exclusive(span)["pages_read"]
        + trace.exclusive(span)["pages_written"]
        for span in spans
    )
    assert exclusive_pages == root.pages_read + root.pages_written

    # Every span belongs to the tree rooted at the result plan.
    for span in spans:
        assert span.rows >= 0
        assert span.wall_seconds >= 0.0


@pytest.mark.parametrize("number", PAPER_QUERIES)
def test_traced_dynamic_profile_has_estimates(number):
    """The EXPLAIN ANALYZE profile annotates operators with q-errors."""
    workload = paper_workload(number)
    plan = _optimize(workload, "dynamic")
    bindings = binding_series(workload, count=1, seed=5)[0]
    result = _run(workload, plan, bindings, tracer=Tracer())

    profile = result.profile
    assert profile.operators
    q_errors = profile.cardinality_q_errors()
    assert q_errors
    assert all(q >= 1.0 for q in q_errors)
