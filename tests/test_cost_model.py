"""The cost ADT: comparisons, choose-plan cost, and per-operator
formulas, including the central interval-containment property."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra.expressions import (
    Comparison,
    ComparisonOp,
    JoinPredicate,
    SelectionPredicate,
    UserVariable,
)
from repro.algebra.physical import (
    BTreeScan,
    ChoosePlan,
    FileScan,
    Filter,
    FilterBTreeScan,
    HashJoin,
    IndexJoin,
    MergeJoin,
    Sort,
)
from repro.catalog import build_synthetic_catalog, default_relation_specs
from repro.common.intervals import Interval
from repro.common.ordering import PartialOrder
from repro.cost.formulas import CostModel, btree_height, btree_leaf_pages
from repro.cost.model import (
    CHOOSE_PLAN_OVERHEAD_SECONDS,
    add_costs,
    choose_plan_cost,
    compare_costs,
)
from repro.cost.parameters import Bindings, Parameter, ParameterSpace, Valuation


@pytest.fixture(scope="module")
def catalog():
    return build_synthetic_catalog(default_relation_specs(2, seed=0), seed=0)


def selection(rel="R1"):
    return SelectionPredicate(
        Comparison("%s.a" % rel, ComparisonOp.LT, UserVariable("v_%s" % rel)),
        selectivity_parameter="sel_%s" % rel,
    )


def space(memory_uncertain=False):
    result = ParameterSpace(
        [Parameter.selectivity("sel_R1"), Parameter.selectivity("sel_R2")]
    )
    result.add(Parameter.memory(uncertain=memory_uncertain))
    return result


class TestCostAdt:
    def test_choose_plan_cost_paper_example(self):
        # Paper Section 5: alternatives [0,10] and [1,1] with overhead
        # [0.01, 0.01] combine to [0.01, 1.01].
        cost = choose_plan_cost([Interval(0, 10), Interval(1, 1)], overhead=0.01)
        assert cost == Interval(0.01, 1.01)

    def test_default_overhead_applied(self):
        cost = choose_plan_cost([Interval(1, 2), Interval(3, 4)])
        assert cost == Interval(1, 2) + Interval.point(
            CHOOSE_PLAN_OVERHEAD_SECONDS
        )

    def test_add_costs(self):
        assert add_costs([Interval(1, 2), Interval(3, 4)]) == Interval(4, 6)
        assert add_costs([]) == Interval.zero()

    def test_compare_costs_normal(self):
        assert compare_costs(Interval(1, 2), Interval(3, 4)) is PartialOrder.LESS

    def test_compare_costs_exhaustive_mode(self):
        # Exhaustive mode declares everything incomparable except
        # identical points.
        assert (
            compare_costs(Interval(1, 2), Interval(30, 40), exhaustive=True)
            is PartialOrder.INCOMPARABLE
        )
        assert (
            compare_costs(Interval(2), Interval(2), exhaustive=True)
            is PartialOrder.EQUAL
        )


class TestBTreeEstimates:
    def test_height_grows_logarithmically(self):
        assert btree_height(1) == 1
        assert btree_height(32) <= btree_height(1024)
        assert btree_height(1000) <= 4

    def test_leaf_pages(self):
        assert btree_leaf_pages(1) == 1
        assert btree_leaf_pages(64) == 2
        assert btree_leaf_pages(1000) == 32


class TestScanFormulas:
    def test_file_scan_cost_is_point(self, catalog):
        model = CostModel(catalog, Valuation.bounds(space()))
        result = model.evaluate(FileScan("R1"))
        assert result.cost.is_point
        assert result.cardinality == Interval.point(catalog.cardinality("R1"))
        assert result.sort_orders == frozenset()

    def test_btree_scan_delivers_order_and_costs_more(self, catalog):
        model = CostModel(catalog, Valuation.bounds(space()))
        file_scan = model.evaluate(FileScan("R1"))
        btree_scan = model.evaluate(BTreeScan("R1", "a"))
        assert btree_scan.sort_orders == frozenset({"R1.a"})
        # Unclustered full index scan is strictly worse than a file scan.
        assert btree_scan.cost.lower > file_scan.cost.upper

    def test_filter_btree_scan_interval_spans_selectivities(self, catalog):
        model = CostModel(catalog, Valuation.bounds(space()))
        result = model.evaluate(FilterBTreeScan("R1", "a", selection("R1")))
        assert not result.cost.is_point
        assert result.cardinality.lower == 0.0
        assert result.cardinality.upper == catalog.cardinality("R1")

    def test_filter_btree_scan_cheap_at_low_selectivity(self, catalog):
        bindings = Bindings().bind("sel_R1", 0.01)
        runtime = CostModel(catalog, Valuation.runtime(space(), bindings))
        fbs = runtime.evaluate(FilterBTreeScan("R1", "a", selection("R1")))
        scan = runtime.evaluate(Filter(FileScan("R1"), selection("R1")))
        assert fbs.cost.lower < scan.cost.lower

    def test_filter_btree_scan_expensive_at_high_selectivity(self, catalog):
        bindings = Bindings().bind("sel_R1", 0.9)
        runtime = CostModel(catalog, Valuation.runtime(space(), bindings))
        fbs = runtime.evaluate(FilterBTreeScan("R1", "a", selection("R1")))
        scan = runtime.evaluate(Filter(FileScan("R1"), selection("R1")))
        assert fbs.cost.lower > scan.cost.lower

    def test_filter_preserves_input_order(self, catalog):
        model = CostModel(catalog, Valuation.bounds(space()))
        result = model.evaluate(Filter(BTreeScan("R1", "a"), selection("R1")))
        assert result.sort_orders == frozenset({"R1.a"})


class TestJoinFormulas:
    def _scans(self):
        left = Filter(FileScan("R1"), selection("R1"))
        right = Filter(FileScan("R2"), selection("R2"))
        return left, right

    def test_join_selectivity_uses_larger_domain(self, catalog):
        model = CostModel(catalog, Valuation.bounds(space()))
        predicate = JoinPredicate("R1.b", "R2.c")
        expected = 1.0 / max(
            catalog.domain_size("R1", "b"), catalog.domain_size("R2", "c")
        )
        assert model.join_selectivity([predicate]) == pytest.approx(expected)

    def test_hash_join_output_cardinality(self, catalog):
        model = CostModel(catalog, Valuation.bounds(space()))
        left, right = self._scans()
        join = HashJoin(left, right, JoinPredicate("R1.b", "R2.c"))
        result = model.evaluate(join)
        jsel = model.join_selectivity(join.predicates)
        expected_upper = (
            catalog.cardinality("R1") * catalog.cardinality("R2") * jsel
        )
        assert result.cardinality.upper == pytest.approx(expected_upper)
        assert result.cardinality.lower == pytest.approx(0.0)

    def test_hash_join_scrambles_order(self, catalog):
        model = CostModel(catalog, Valuation.bounds(space()))
        join = HashJoin(
            BTreeScan("R1", "b"), FileScan("R2"), JoinPredicate("R1.b", "R2.c")
        )
        assert model.evaluate(join).sort_orders == frozenset()

    def test_hash_join_memory_sensitivity(self, catalog):
        # Less memory -> spill -> more cost; with interval memory the
        # cost interval must widen.
        s = space(memory_uncertain=True)
        uncertain = CostModel(catalog, Valuation.bounds(s)).evaluate(
            HashJoin(
                FileScan("R2"), FileScan("R1"), JoinPredicate("R1.b", "R2.c")
            )
        )
        fixed = CostModel(catalog, Valuation.expected(s)).evaluate(
            HashJoin(
                FileScan("R2"), FileScan("R1"), JoinPredicate("R1.b", "R2.c")
            )
        )
        assert uncertain.cost.lower <= fixed.cost.lower
        assert uncertain.cost.upper >= fixed.cost.upper

    def test_merge_join_delivers_both_join_attributes(self, catalog):
        model = CostModel(catalog, Valuation.bounds(space()))
        join = MergeJoin(
            BTreeScan("R1", "b"),
            BTreeScan("R2", "c"),
            JoinPredicate("R1.b", "R2.c"),
        )
        assert model.evaluate(join).sort_orders == frozenset({"R1.b", "R2.c"})

    def test_index_join_cost_grows_with_outer(self, catalog):
        bindings_small = Bindings().bind("sel_R1", 0.05)
        bindings_large = Bindings().bind("sel_R1", 0.95)
        join = IndexJoin(
            Filter(FileScan("R1"), selection("R1")),
            "R2",
            "c",
            JoinPredicate("R1.b", "R2.c"),
            residual_predicate=selection("R2"),
        )
        small = CostModel(
            catalog, Valuation.runtime(space(), bindings_small)
        ).evaluate(join)
        large = CostModel(
            catalog, Valuation.runtime(space(), bindings_large)
        ).evaluate(join)
        assert large.cost.lower > small.cost.lower

    def test_index_join_preserves_outer_order(self, catalog):
        model = CostModel(catalog, Valuation.bounds(space()))
        join = IndexJoin(
            BTreeScan("R1", "b"), "R2", "c", JoinPredicate("R1.b", "R2.c")
        )
        assert model.evaluate(join).sort_orders == frozenset({"R1.b"})


class TestEnforcerFormulas:
    def test_sort_delivers_requested_order(self, catalog):
        model = CostModel(catalog, Valuation.bounds(space()))
        result = model.evaluate(Sort(FileScan("R1"), "R1.b"))
        assert result.sort_orders == frozenset({"R1.b"})
        assert result.cost.lower > model.evaluate(FileScan("R1")).cost.lower

    def test_sort_memory_sensitivity(self, catalog):
        tight = Bindings().bind("memory_pages", 2)
        roomy = Bindings().bind("memory_pages", 500)
        s = space(memory_uncertain=True)
        plan = Sort(FileScan("R2"), "R2.b")
        cost_tight = CostModel(
            catalog, Valuation.runtime(s, tight)
        ).evaluate(plan).cost
        cost_roomy = CostModel(
            catalog, Valuation.runtime(s, roomy)
        ).evaluate(plan).cost
        assert cost_tight.lower > cost_roomy.lower

    def test_choose_plan_cost_is_min_envelope_plus_overhead(self, catalog):
        model = CostModel(catalog, Valuation.bounds(space()))
        a = Filter(FileScan("R1"), selection("R1"))
        b = FilterBTreeScan("R1", "a", selection("R1"))
        choose = ChoosePlan([a, b])
        result = model.evaluate(choose)
        expected = Interval.envelope_min(
            [model.evaluate(a).cost, model.evaluate(b).cost]
        ) + Interval.point(CHOOSE_PLAN_OVERHEAD_SECONDS)
        assert result.cost == expected

    def test_choose_plan_sort_orders_intersect(self, catalog):
        model = CostModel(catalog, Valuation.bounds(space()))
        choose = ChoosePlan([BTreeScan("R1", "a"), FileScan("R1")])
        assert model.evaluate(choose).sort_orders == frozenset()


class TestMemoization:
    def test_shared_subplans_evaluated_once(self, catalog):
        model = CostModel(catalog, Valuation.bounds(space()))
        scan = FileScan("R1")
        plan = ChoosePlan([Sort(scan, "R1.a"), Sort(scan, "R1.b")])
        model.evaluate(plan)
        # choose + 2 sorts + 1 scan = 4 evaluations, not 5.
        assert model.evaluations == 4

    def test_invalidate_clears_cache(self, catalog):
        model = CostModel(catalog, Valuation.bounds(space()))
        scan = FileScan("R1")
        model.evaluate(scan)
        model.invalidate()
        model.evaluate(scan)
        assert model.evaluations == 2


class TestIntervalContainment:
    """For any binding within bounds, the runtime (point) cost must lie
    within the compile-time cost interval — the property that makes the
    optimality guarantee of Section 3 sound."""

    def _plans(self):
        sel1, sel2 = selection("R1"), selection("R2")
        predicate = JoinPredicate("R1.b", "R2.c")
        left = Filter(FileScan("R1"), sel1)
        right = FilterBTreeScan("R2", "a", sel2)
        return [
            left,
            right,
            HashJoin(left, right, predicate),
            MergeJoin(
                Sort(left, "R1.b"), Sort(right, "R2.c"), predicate
            ),
            IndexJoin(left, "R2", "c", predicate, residual_predicate=sel2),
            ChoosePlan([HashJoin(left, right, predicate),
                        HashJoin(right, left, predicate.flipped())]),
        ]

    @settings(max_examples=40, deadline=None)
    @given(
        sel1=st.floats(0, 1), sel2=st.floats(0, 1),
        memory=st.integers(16, 112),
    )
    def test_runtime_cost_within_compile_interval(self, catalog, sel1, sel2,
                                                  memory):
        s = space(memory_uncertain=True)
        compile_model = CostModel(catalog, Valuation.bounds(s))
        bindings = (
            Bindings()
            .bind("sel_R1", sel1)
            .bind("sel_R2", sel2)
            .bind("memory_pages", memory)
        )
        runtime_model = CostModel(catalog, Valuation.runtime(s, bindings))
        for plan in self._plans():
            compile_cost = compile_model.evaluate(plan).cost
            runtime_cost = runtime_model.evaluate(plan).cost
            assert runtime_cost.is_point
            tolerance = 1e-9 + abs(compile_cost.upper) * 1e-9
            assert compile_cost.lower - tolerance <= runtime_cost.lower
            assert runtime_cost.lower <= compile_cost.upper + tolerance

    @settings(max_examples=40, deadline=None)
    @given(sel1=st.floats(0, 1), sel2=st.floats(0, 1))
    def test_runtime_cardinality_within_compile_interval(self, catalog, sel1,
                                                         sel2):
        s = space()
        compile_model = CostModel(catalog, Valuation.bounds(s))
        bindings = Bindings().bind("sel_R1", sel1).bind("sel_R2", sel2)
        runtime_model = CostModel(catalog, Valuation.runtime(s, bindings))
        for plan in self._plans():
            compile_card = compile_model.evaluate(plan).cardinality
            runtime_card = runtime_model.evaluate(plan).cardinality
            tolerance = 1e-9 + abs(compile_card.upper) * 1e-9
            assert compile_card.lower - tolerance <= runtime_card.lower
            assert runtime_card.upper <= compile_card.upper + tolerance
