"""Mid-query re-optimization: the differential and property harness.

The backbone is the differential suite: for every paper query, in all
three execution modes, a run that re-decides at *every* pipeline
breaker (``ReoptPolicy("always")``) must return the same row multiset
— and, at the pinned seed, byte-identical I/O-charge totals — as a
run that never re-decides.  Checkpoints replay for free and operators
charge per record drained, so visiting breakers is invisible to the
accounting unless a re-decision actually changes the remainder plan.

The property layer (Hypothesis, reusing the random-workload strategy
from ``test_property_random_queries``) pins the decision invariants:
in ``auto`` mode an observation inside its compile-time interval never
triggers a re-decision, and any re-decision picks an alternative whose
re-costed value is no worse than the incumbent's.
"""

import pytest
from hypothesis import given, settings, strategies as st
from tests.test_property_random_queries import workloads

from repro.algebra.physical import HashJoin, Materialized
from repro.common.errors import ExecutionError
from repro.cost.parameters import MEMORY_PARAMETER
from repro.executor import execute_plan, validate_plan
from repro.executor.compiled import CompiledPlanProgram
from repro.executor.midquery import (
    BREAKER_KINDS,
    IncrementalDecider,
    ReoptPolicy,
    execute_midquery,
    startup_report_from_outcome,
)
from repro.optimizer import optimize_dynamic
from repro.catalog import populate_database
from repro.resilience.chaos import rows_digest
from repro.storage.database import Database
from repro.workloads import paper_workload, random_bindings, skewed_bindings

#: Data-population seed shared with the chaos harness.
DATA_SEED = 11
#: Binding seed of the full rows-plus-I/O identity fixture: at this
#: seed every paper query is identical across forced and suppressed
#: runs in all three modes, *including* queries where forcing makes
#: genuine switches (the remainder plans re-decide to the incumbent
#: shape, so the accounting cannot diverge).
IDENTITY_SEED = 3

PAPER_QUERIES = (1, 2, 3, 4, 5)
MODES = ("row", "batch", "compiled")


def _setup(number, seed=IDENTITY_SEED, skew=None):
    workload = paper_workload(number, memory_uncertain=True)
    plan = optimize_dynamic(workload.catalog, workload.query).plan
    if skew is not None:
        bindings = skewed_bindings(
            workload, declared=skew[0], actual=skew[1], seed=seed
        )
    else:
        bindings = random_bindings(workload, seed=seed)
    return workload, plan, bindings


def _fresh_database(workload, seed=DATA_SEED):
    database = Database(workload.catalog)
    populate_database(database, seed=seed)
    return database


def _run_plain(workload, plan, bindings, mode):
    database = _fresh_database(workload)
    return execute_plan(
        plan,
        database,
        bindings.copy(),
        workload.query.parameter_space,
        execution_mode=mode,
    )


def _run_midquery(workload, plan, bindings, mode, policy, **kwargs):
    database = _fresh_database(workload)
    return execute_midquery(
        plan,
        database,
        bindings.copy(),
        workload.query.parameter_space,
        policy=policy,
        execution_mode=mode,
        **kwargs,
    )


class TestReoptPolicy:
    def test_defaults(self):
        policy = ReoptPolicy()
        assert policy.mode == "auto"
        assert policy.breakers == BREAKER_KINDS
        assert policy.on_switch == "splice"
        assert policy.active

    @pytest.mark.parametrize("text", ("", "off", None))
    def test_parse_off(self, text):
        assert not ReoptPolicy.parse(text).active

    def test_parse_modes_and_strategies(self):
        assert ReoptPolicy.parse("auto").mode == "auto"
        assert ReoptPolicy.parse("always").mode == "always"
        restart = ReoptPolicy.parse("always+restart")
        assert restart.mode == "always"
        assert restart.on_switch == "restart"

    def test_parse_breaker_subset(self):
        policy = ReoptPolicy.parse("auto:sort,hash_build")
        assert policy.breakers == ("sort", "hash_build")

    @pytest.mark.parametrize(
        "text", ("sometimes", "auto:everywhere", "always+undo")
    )
    def test_parse_rejects_bad_specs(self, text):
        with pytest.raises(ExecutionError):
            ReoptPolicy.parse(text)

    def test_to_dict_round_trips_the_spec(self):
        policy = ReoptPolicy.parse("always+restart:sort")
        assert policy.to_dict() == {
            "mode": "always",
            "breakers": ["sort"],
            "on_switch": "restart",
        }


class TestDifferentialIdentity:
    """Forced re-decisions == suppressed re-decisions, per query × mode."""

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("number", PAPER_QUERIES)
    def test_rows_and_io_identical(self, number, mode):
        workload, plan, bindings = _setup(number)
        plain = _run_plain(workload, plan, bindings, mode)
        forced, report = _run_midquery(
            workload, plan, bindings, mode, ReoptPolicy("always")
        )
        assert rows_digest(forced.records) == rows_digest(plain.records)
        assert forced.io_snapshot == plain.io_snapshot

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("number", PAPER_QUERIES)
    def test_final_plan_is_valid_and_fully_decided(self, number, mode):
        workload, plan, bindings = _setup(number)
        _, report = _run_midquery(
            workload, plan, bindings, mode, ReoptPolicy("always")
        )
        final = report.final_plan
        assert final.choose_plan_count() == 0
        validate_plan(final, workload.catalog)

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("number", (2, 3, 5))
    def test_rows_identical_across_seed_sweep(self, number, seed):
        """Row multisets agree even when forcing makes genuine switches.

        Across this sweep some seeds re-decide onto *different*
        remainder plans (so I/O legitimately differs — usually
        improving); the result multiset never may.
        """
        workload, plan, bindings = _setup(number, seed=seed)
        plain = _run_plain(workload, plan, bindings, "row")
        forced, report = _run_midquery(
            workload, plan, bindings, "row", ReoptPolicy("always")
        )
        assert rows_digest(forced.records) == rows_digest(plain.records)
        if report.switches == 0:
            assert forced.io_snapshot == plain.io_snapshot

    def test_off_policy_is_plain_execution(self):
        workload, plan, bindings = _setup(3)
        plain = _run_plain(workload, plan, bindings, "row")
        off, report = _run_midquery(
            workload, plan, bindings, "row", ReoptPolicy("off")
        )
        assert report.checkpoints == 0
        assert report.final_plan is plan
        assert off.io_snapshot == plain.io_snapshot
        assert rows_digest(off.records) == rows_digest(plain.records)


class TestCheckpointReuse:
    """A switch continues over the checkpoints; only restart re-reads."""

    def test_skew_forces_switches_with_identical_rows(self):
        workload, plan, bindings = _setup(3, seed=0, skew=(0.02, 0.6))
        plain = _run_plain(workload, plan, bindings, "row")
        forced, report = _run_midquery(
            workload, plan, bindings, "row", ReoptPolicy("always")
        )
        assert report.switches >= 1
        assert rows_digest(forced.records) == rows_digest(plain.records)

    def test_splice_keeps_checkpoints_in_final_plan(self):
        workload, plan, bindings = _setup(3, seed=0, skew=(0.02, 0.6))
        _, report = _run_midquery(
            workload, plan, bindings, "row", ReoptPolicy("always")
        )
        assert any(
            isinstance(node, Materialized)
            for node in report.final_plan.walk_unique()
        )

    def test_splice_never_rereads_drained_work(self):
        workload, plan, bindings = _setup(3, seed=0, skew=(0.02, 0.6))
        spliced, splice_report = _run_midquery(
            workload, plan, bindings, "row", ReoptPolicy("always")
        )
        restarted, restart_report = _run_midquery(
            workload,
            plan,
            bindings,
            "row",
            ReoptPolicy("always", on_switch="restart"),
        )
        assert splice_report.switches >= 1
        assert restart_report.restarted
        assert not any(
            isinstance(node, Materialized)
            for node in restart_report.final_plan.walk_unique()
        )
        assert rows_digest(spliced.records) == rows_digest(restarted.records)
        assert (
            spliced.io_snapshot["pages_read"]
            < restarted.io_snapshot["pages_read"]
        )

    def test_breaker_events_record_observations(self):
        workload, plan, bindings = _setup(3, seed=0, skew=(0.02, 0.6))
        _, report = _run_midquery(
            workload, plan, bindings, "row", ReoptPolicy("always")
        )
        assert report.checkpoints == len(report.breakers)
        assert report.violations >= 1
        for event in report.breakers:
            assert event.kind in BREAKER_KINDS
            assert event.observed >= 0
            assert event.violated == (
                not event.estimate.contains(event.observed)
            )
        data = report.to_dict()
        assert data["switches"] == report.switches
        assert len(data["breakers"]) == report.checkpoints


class TestCompiledInvalidation:
    """A switch drops fused pipelines downstream of the breaker."""

    def test_switch_invalidates_downstream_pipelines(self):
        workload, plan, bindings = _setup(3, seed=0, skew=(0.02, 0.6))
        database = _fresh_database(workload)
        program = CompiledPlanProgram().precompile(plan)
        _, report = execute_midquery(
            plan,
            database,
            bindings.copy(),
            workload.query.parameter_space,
            policy=ReoptPolicy("always"),
            execution_mode="compiled",
            compile_pipelines=True,
            compiled_program=program,
        )
        assert report.switches >= 1
        assert report.pipelines_invalidated >= 1
        assert program.invalidations == report.pipelines_invalidated

    def test_invalidate_downstream_drops_only_ancestors(self):
        workload, plan, bindings = _setup(3)
        # Resolve statically to get a concrete joined plan.
        from repro.executor.startup import resolve_dynamic_plan

        static, _ = resolve_dynamic_plan(
            plan, workload.catalog, workload.query.parameter_space, bindings
        )
        joins = [
            node
            for node in static.walk_unique()
            if isinstance(node, HashJoin)
        ]
        if not joins:
            pytest.skip("resolved plan has no hash join")
        program = CompiledPlanProgram().precompile(static)
        before = dict(program._factories)
        dropped = program.invalidate_downstream(static, joins[0].build)
        assert dropped >= 1
        assert program.invalidations == dropped
        assert len(program._factories) == len(before) - dropped

    def test_invalidated_pipelines_recompile_on_demand(self):
        workload, plan, bindings = _setup(3, seed=0, skew=(0.02, 0.6))
        program = CompiledPlanProgram()
        forced, report = _run_midquery(
            workload,
            plan,
            bindings,
            "compiled",
            ReoptPolicy("always"),
            compile_pipelines=True,
            compiled_program=program,
        )
        plain = _run_plain(workload, plan, bindings, "compiled")
        assert rows_digest(forced.records) == rows_digest(plain.records)


class TestIncrementalDecider:
    def test_first_decide_matches_startup_resolution(self):
        from repro.executor.startup import resolve_dynamic_plan

        workload, plan, bindings = _setup(3)
        decider = IncrementalDecider(
            plan, workload.catalog, workload.query.parameter_space, bindings
        )
        outcome = decider.decide()
        chosen, _ = resolve_dynamic_plan(
            plan, workload.catalog, workload.query.parameter_space, bindings
        )
        assert outcome.plan.signature() == chosen.signature()
        assert len(outcome.decided) == plan.choose_plan_count()
        assert outcome.cost_evaluations > 0

    def test_second_decide_is_fully_cached(self):
        workload, plan, bindings = _setup(3)
        decider = IncrementalDecider(
            plan, workload.catalog, workload.query.parameter_space, bindings
        )
        first = decider.decide()
        second = decider.decide()
        assert second.plan is first.plan
        assert second.cost_evaluations == 0
        assert not second.decided

    def test_memory_rebind_recosts_fewer_groups_than_fresh(self):
        workload, plan, bindings = _setup(3)
        space = workload.query.parameter_space
        memory = space.get(MEMORY_PARAMETER)
        dropped = bindings.copy().bind(
            MEMORY_PARAMETER, max(int(memory.bounds.lower), 1)
        )

        incremental = IncrementalDecider(
            plan, workload.catalog, space, bindings
        )
        incremental.decide()
        incremental.rebind(dropped, (MEMORY_PARAMETER,))
        warm = incremental.decide()

        fresh = IncrementalDecider(
            plan, workload.catalog, space, dropped
        ).decide()
        assert warm.plan.signature() == fresh.plan.signature()
        assert warm.cost_evaluations < fresh.cost_evaluations

    def test_startup_report_adapter_carries_reuse(self):
        workload, plan, bindings = _setup(2)
        decider = IncrementalDecider(
            plan, workload.catalog, workload.query.parameter_space, bindings
        )
        outcome = decider.decide()
        report = startup_report_from_outcome(outcome, plan.node_count())
        assert report.decisions == len(outcome.decided)
        assert report.cost_evaluations == outcome.cost_evaluations
        assert report.node_count == plan.node_count()
        assert report.reused_decisions == outcome.reused


class TestMidQueryProperties:
    """Hypothesis invariants over random workloads."""

    @settings(max_examples=10, deadline=None)
    @given(workload=workloads(), binding_seed=st.integers(0, 1000))
    def test_in_interval_observations_never_redecide(
        self, workload, binding_seed
    ):
        plan = optimize_dynamic(workload.catalog, workload.query).plan
        bindings = random_bindings(workload, seed=binding_seed)
        plain = _run_plain(workload, plan, bindings, "row")
        result, report = _run_midquery(
            workload, plan, bindings, "row", ReoptPolicy("auto")
        )
        # Auto mode re-decides exactly when an observation violates.
        assert report.redecisions == report.violations
        for event in report.breakers:
            if not event.violated:
                assert event.estimate.contains(event.observed)
        assert rows_digest(result.records) == rows_digest(plain.records)
        if report.switches == 0:
            assert result.io_snapshot == plain.io_snapshot

    @settings(max_examples=8, deadline=None)
    @given(workload=workloads(), binding_seed=st.integers(0, 1000))
    def test_redecisions_never_pick_costlier_alternatives(
        self, workload, binding_seed
    ):
        plan = optimize_dynamic(workload.catalog, workload.query).plan
        bindings = random_bindings(workload, seed=binding_seed)
        plain = _run_plain(workload, plan, bindings, "row")
        result, report = _run_midquery(
            workload, plan, bindings, "row", ReoptPolicy("always")
        )
        for redecision in report.redecision_events:
            if redecision.incumbent_cost is None:
                continue
            assert (
                redecision.candidate_cost
                <= redecision.incumbent_cost + 1e-9
            )
        assert rows_digest(result.records) == rows_digest(plain.records)

    @settings(max_examples=6, deadline=None)
    @given(workload=workloads())
    def test_skewed_runs_still_return_true_rows(self, workload):
        plan = optimize_dynamic(workload.catalog, workload.query).plan
        bindings = skewed_bindings(workload, declared=0.02, actual=0.6)
        plain = _run_plain(workload, plan, bindings, "row")
        result, report = _run_midquery(
            workload, plan, bindings, "row", ReoptPolicy("always")
        )
        assert rows_digest(result.records) == rows_digest(plain.records)
        final = report.final_plan
        assert final.choose_plan_count() == 0
