"""Access modules: serialization round-trips, sizes, and read times."""

import pytest

from repro.common.units import PLAN_NODE_BYTES, DISK_BANDWIDTH_BYTES_PER_SEC
from repro.executor import AccessModule, execute_plan, resolve_dynamic_plan
from repro.optimizer import optimize_dynamic, optimize_static
from repro.workloads import make_join_workload, random_bindings


class TestRoundTrip:
    def test_static_plan_round_trip(self, workload2):
        static = optimize_static(workload2.catalog, workload2.query)
        module = AccessModule.from_plan(static.plan, "q2")
        rebuilt = module.materialize()
        assert rebuilt.signature() == static.plan.signature()

    def test_dynamic_plan_round_trip(self, workload2):
        dynamic = optimize_dynamic(workload2.catalog, workload2.query)
        module = AccessModule.from_plan(dynamic.plan, "q2")
        rebuilt = module.materialize()
        assert rebuilt.signature() == dynamic.plan.signature()

    def test_round_trip_preserves_dag_sharing(self, workload3):
        dynamic = optimize_dynamic(workload3.catalog, workload3.query)
        module = AccessModule.from_plan(dynamic.plan, "q3")
        rebuilt = module.materialize()
        assert rebuilt.node_count() == dynamic.plan.node_count()
        assert rebuilt.tree_node_count() == dynamic.plan.tree_node_count()

    def test_bytes_round_trip(self, workload2):
        dynamic = optimize_dynamic(workload2.catalog, workload2.query)
        module = AccessModule.from_plan(dynamic.plan, "q2")
        reloaded = AccessModule.from_bytes(module.to_bytes())
        assert reloaded.node_count == module.node_count
        assert (
            reloaded.materialize().signature() == dynamic.plan.signature()
        )

    def test_round_trip_through_topologies(self):
        for topology in ("chain", "star", "cycle"):
            workload = make_join_workload(4, topology=topology, seed=1)
            dynamic = optimize_dynamic(workload.catalog, workload.query)
            module = AccessModule.from_plan(dynamic.plan, topology)
            assert (
                module.materialize().signature() == dynamic.plan.signature()
            )

    def test_materialized_plan_still_executes(self, workload2, database2):
        dynamic = optimize_dynamic(workload2.catalog, workload2.query)
        bindings = random_bindings(workload2, seed=4)
        module = AccessModule.from_plan(dynamic.plan, "q2")
        rebuilt = module.materialize()
        original = execute_plan(
            dynamic.plan, database2, bindings, workload2.query.parameter_space
        )
        reloaded = execute_plan(
            rebuilt, database2, bindings, workload2.query.parameter_space
        )
        assert original.row_count == reloaded.row_count

    def test_materialized_plan_resolves_identically(self, workload2):
        dynamic = optimize_dynamic(workload2.catalog, workload2.query)
        bindings = random_bindings(workload2, seed=4)
        rebuilt = AccessModule.from_plan(dynamic.plan, "q2").materialize()
        chosen_a, _ = resolve_dynamic_plan(
            dynamic.plan, workload2.catalog,
            workload2.query.parameter_space, bindings,
        )
        chosen_b, _ = resolve_dynamic_plan(
            rebuilt, workload2.catalog,
            workload2.query.parameter_space, bindings,
        )
        assert chosen_a.signature() == chosen_b.signature()


class TestMetadata:
    def test_node_count_matches_plan(self, workload2):
        dynamic = optimize_dynamic(workload2.catalog, workload2.query)
        module = AccessModule.from_plan(dynamic.plan, "q2")
        assert module.node_count == dynamic.plan.node_count()

    def test_read_seconds_uses_paper_formula(self, workload2):
        dynamic = optimize_dynamic(workload2.catalog, workload2.query)
        module = AccessModule.from_plan(dynamic.plan, "q2")
        expected = (
            module.node_count * PLAN_NODE_BYTES / DISK_BANDWIDTH_BYTES_PER_SEC
        )
        assert module.read_seconds() == pytest.approx(expected)

    def test_query_name_preserved(self, workload2):
        dynamic = optimize_dynamic(workload2.catalog, workload2.query)
        module = AccessModule.from_plan(dynamic.plan, "my-query")
        assert module.query_name == "my-query"
        assert AccessModule.from_bytes(module.to_bytes()).query_name == "my-query"

    def test_byte_size_positive_and_proportional(self, workload1, workload3):
        small = AccessModule.from_plan(
            optimize_dynamic(workload1.catalog, workload1.query).plan, "q1"
        )
        large = AccessModule.from_plan(
            optimize_dynamic(workload3.catalog, workload3.query).plan, "q3"
        )
        assert 0 < small.byte_size < large.byte_size
