"""Execution engine: every operator verified against an
engine-independent reference evaluation of the query on stored data."""

import pytest

from repro.workloads import random_bindings
from tests._reference import reference_rows, row_multiset

from repro.algebra.physical import (
    BTreeScan,
    ChoosePlan,
    FileScan,
    Filter,
    FilterBTreeScan,
    HashJoin,
    IndexJoin,
    MergeJoin,
    Sort,
)
from repro.common.errors import ExecutionError
from repro.executor import execute_plan
from repro.optimizer import optimize_dynamic, optimize_runtime, optimize_static
from repro.workloads.queries import SELECTION_ATTRIBUTE


class TestScanOperators:
    def test_file_scan_returns_all_records(self, workload1, database1):
        result = execute_plan(FileScan("R1"), database1)
        assert result.row_count == workload1.catalog.cardinality("R1")

    def test_btree_scan_sorted_and_complete(self, workload1, database1):
        result = execute_plan(BTreeScan("R1", "a"), database1)
        values = [record["R1.a"] for record in result.records]
        assert values == sorted(values)
        assert result.row_count == workload1.catalog.cardinality("R1")

    def test_btree_scan_charges_random_fetches(self, workload1, database1):
        result = execute_plan(BTreeScan("R1", "a"), database1)
        assert (
            result.io_snapshot["pages_read"]
            >= workload1.catalog.cardinality("R1")
        )

    def test_filter_btree_scan_matches_filter_file_scan(
        self, workload1, database1
    ):
        predicate = workload1.query.selection_for("R1")
        bindings = random_bindings(workload1, seed=1)
        fbs = execute_plan(
            FilterBTreeScan("R1", SELECTION_ATTRIBUTE, predicate),
            database1,
            bindings,
            workload1.query.parameter_space,
        )
        filtered = execute_plan(
            Filter(FileScan("R1"), predicate),
            database1,
            bindings,
            workload1.query.parameter_space,
        )
        assert row_multiset(fbs.records, ["R1.a"]) == row_multiset(
            filtered.records, ["R1.a"]
        )

    def test_filter_btree_scan_cheaper_at_low_selectivity(
        self, workload1, database1
    ):
        predicate = workload1.query.selection_for("R1")
        bindings = random_bindings(workload1, seed=1)
        domain = workload1.catalog.domain_size("R1", "a")
        bindings.bind("sel_R1", 0.01).bind_variable("v_R1", 0.01 * domain)
        fbs = execute_plan(
            FilterBTreeScan("R1", "a", predicate),
            database1, bindings, workload1.query.parameter_space,
        )
        scan = execute_plan(
            Filter(FileScan("R1"), predicate),
            database1, bindings, workload1.query.parameter_space,
        )
        assert (
            fbs.io_snapshot["pages_read"] < scan.io_snapshot["pages_read"]
        )

    def test_unbound_variable_raises(self, workload1, database1):
        predicate = workload1.query.selection_for("R1")
        with pytest.raises(ExecutionError):
            execute_plan(Filter(FileScan("R1"), predicate), database1)


class TestJoinOperators:
    def _join_inputs(self, workload2):
        query = workload2.query
        left = Filter(FileScan("R1"), query.selection_for("R1"))
        right = Filter(FileScan("R2"), query.selection_for("R2"))
        predicate = query.join_predicates[0]
        return left, right, predicate

    def _expected(self, workload2, database2, bindings):
        return row_multiset(
            reference_rows(workload2, database2, bindings),
            ["R1.a", "R1.b", "R2.a", "R2.c"],
        )

    def test_hash_join_matches_reference(self, workload2, database2):
        left, right, predicate = self._join_inputs(workload2)
        bindings = random_bindings(workload2, seed=2)
        result = execute_plan(
            HashJoin(left, right, predicate),
            database2, bindings, workload2.query.parameter_space,
        )
        assert row_multiset(
            result.records, ["R1.a", "R1.b", "R2.a", "R2.c"]
        ) == self._expected(workload2, database2, bindings)

    def test_hash_join_build_side_irrelevant_for_results(
        self, workload2, database2
    ):
        left, right, predicate = self._join_inputs(workload2)
        bindings = random_bindings(workload2, seed=2)
        a = execute_plan(
            HashJoin(left, right, predicate),
            database2, bindings, workload2.query.parameter_space,
        )
        b = execute_plan(
            HashJoin(right, left, predicate.flipped()),
            database2, bindings, workload2.query.parameter_space,
        )
        keys = ["R1.a", "R1.b", "R2.a", "R2.c"]
        assert row_multiset(a.records, keys) == row_multiset(b.records, keys)

    def test_merge_join_matches_reference(self, workload2, database2):
        left, right, predicate = self._join_inputs(workload2)
        bindings = random_bindings(workload2, seed=2)
        plan = MergeJoin(
            Sort(left, predicate.left_attribute),
            Sort(right, predicate.right_attribute),
            predicate,
        )
        result = execute_plan(
            plan, database2, bindings, workload2.query.parameter_space
        )
        assert row_multiset(
            result.records, ["R1.a", "R1.b", "R2.a", "R2.c"]
        ) == self._expected(workload2, database2, bindings)

    def test_index_join_matches_reference(self, workload2, database2):
        query = workload2.query
        left = Filter(FileScan("R1"), query.selection_for("R1"))
        predicate = query.join_predicates[0]
        bindings = random_bindings(workload2, seed=2)
        plan = IndexJoin(
            left, "R2", "c", predicate,
            residual_predicate=query.selection_for("R2"),
        )
        result = execute_plan(
            plan, database2, bindings, workload2.query.parameter_space
        )
        assert row_multiset(
            result.records, ["R1.a", "R1.b", "R2.a", "R2.c"]
        ) == self._expected(workload2, database2, bindings)

    def test_index_join_charges_probes(self, workload2, database2):
        query = workload2.query
        predicate = query.join_predicates[0]
        bindings = random_bindings(workload2, seed=2)
        plan = IndexJoin(FileScan("R1"), "R2", "c", predicate)
        result = execute_plan(
            plan, database2, bindings, workload2.query.parameter_space
        )
        assert result.io_snapshot["index_probes"] == workload2.catalog.cardinality(
            "R1"
        )


class TestSortAndChoosePlan:
    def test_sort_orders_output(self, workload1, database1):
        result = execute_plan(Sort(FileScan("R1"), "R1.b"), database1)
        values = [record["R1.b"] for record in result.records]
        assert values == sorted(values)

    def test_sort_spills_when_memory_tight(self, workload1, database1):
        from repro.cost.parameters import Bindings

        bindings = Bindings().bind("memory_pages", 2)
        result = execute_plan(
            Sort(FileScan("R1"), "R1.b"),
            database1,
            bindings,
            workload1.query.parameter_space,
        )
        assert result.io_snapshot["pages_written"] > 0

    def test_choose_plan_picks_cheap_side(self, workload1, database1):
        predicate = workload1.query.selection_for("R1")
        plan = ChoosePlan(
            [
                Filter(FileScan("R1"), predicate),
                FilterBTreeScan("R1", "a", predicate),
            ]
        )
        domain = workload1.catalog.domain_size("R1", "a")
        low = random_bindings(workload1, seed=3)
        low.bind("sel_R1", 0.01).bind_variable("v_R1", 0.01 * domain)
        result = execute_plan(
            plan, database1, low, workload1.query.parameter_space
        )
        assert len(result.decisions) == 1
        chosen = result.decisions[0][1]
        assert isinstance(chosen, FilterBTreeScan)

        high = random_bindings(workload1, seed=3)
        high.bind("sel_R1", 0.95).bind_variable("v_R1", 0.95 * domain)
        result = execute_plan(
            plan, database1, high, workload1.query.parameter_space
        )
        chosen = result.decisions[0][1]
        assert isinstance(chosen, Filter)


class TestEndToEndPlans:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_all_three_optimizers_agree_on_results(
        self, workload2, database2, seed
    ):
        bindings = random_bindings(workload2, seed=seed)
        static = optimize_static(workload2.catalog, workload2.query)
        dynamic = optimize_dynamic(workload2.catalog, workload2.query)
        runtime = optimize_runtime(workload2.catalog, workload2.query, bindings)
        keys = ["R1.a", "R1.b", "R2.a", "R2.c"]
        expected = row_multiset(
            reference_rows(workload2, database2, bindings), keys
        )
        for result in (static, dynamic, runtime):
            executed = execute_plan(
                result.plan, database2, bindings,
                workload2.query.parameter_space,
            )
            assert row_multiset(executed.records, keys) == expected

    def test_four_way_join_execution(self, workload3, database3):
        bindings = random_bindings(workload3, seed=1)
        dynamic = optimize_dynamic(workload3.catalog, workload3.query)
        executed = execute_plan(
            dynamic.plan, database3, bindings, workload3.query.parameter_space
        )
        expected = reference_rows(workload3, database3, bindings)
        keys = ["R1.a", "R2.a", "R3.a", "R4.a"]
        assert row_multiset(executed.records, keys) == row_multiset(
            expected, keys
        )

    def test_execution_result_accounting(self, workload2, database2):
        bindings = random_bindings(workload2, seed=1)
        static = optimize_static(workload2.catalog, workload2.query)
        result = execute_plan(
            static.plan, database2, bindings, workload2.query.parameter_space
        )
        assert result.elapsed_seconds > 0
        assert result.simulated_seconds() > 0
        assert result.io_snapshot["pages_read"] > 0
