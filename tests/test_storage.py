"""Heap files, records, I/O accounting, and the Database container."""

import pytest

from repro.catalog import Attribute, Schema
from repro.catalog import (
    AttributeStatistics,
    Catalog,
    IndexInfo,
    RelationStatistics,
)
from repro.common.errors import CatalogError, ExecutionError
from repro.storage import Database, HeapFile, IOStatistics, Record


def make_heap(records_per_page=4):
    schema = Schema("R", [Attribute("a"), Attribute("b")])
    stats = IOStatistics()
    return HeapFile(schema, stats, records_per_page), stats


class TestRecord:
    def test_qualified_and_unqualified_access(self):
        record = Record({"R.a": 1, "R.b": 2})
        assert record["R.a"] == 1
        assert record["a"] == 1
        assert record.get("zzz") is None

    def test_ambiguous_reference_raises(self):
        record = Record({"R.a": 1, "S.a": 2})
        with pytest.raises(ExecutionError):
            record["a"]

    def test_missing_field_raises(self):
        with pytest.raises(ExecutionError):
            Record({"R.a": 1})["b"]

    def test_contains(self):
        record = Record({"R.a": 1})
        assert "a" in record
        assert "R.a" in record
        assert "b" not in record

    def test_merged_with(self):
        left = Record({"R.a": 1})
        right = Record({"S.b": 2})
        merged = left.merged_with(right)
        assert merged["R.a"] == 1 and merged["S.b"] == 2

    def test_project(self):
        record = Record({"R.a": 1, "R.b": 2})
        assert record.project(["R.a"]).as_dict() == {"R.a": 1}

    def test_equality_and_hash(self):
        assert Record({"R.a": 1}) == Record({"R.a": 1})
        assert len({Record({"R.a": 1}), Record({"R.a": 1})}) == 1


class TestHeapFile:
    def test_insert_qualifies_fields(self):
        heap, _ = make_heap()
        rid = heap.insert({"a": 1, "b": 2})
        record = heap.fetch(rid)
        assert record["R.a"] == 1

    def test_insert_accepts_qualified_fields(self):
        heap, _ = make_heap()
        rid = heap.insert({"R.a": 1, "R.b": 2})
        assert heap.fetch(rid)["b"] == 2

    def test_missing_field_rejected(self):
        heap, _ = make_heap()
        with pytest.raises(ExecutionError):
            heap.insert({"a": 1})

    def test_page_packing(self):
        heap, _ = make_heap(records_per_page=4)
        heap.bulk_load({"a": i, "b": i} for i in range(9))
        assert heap.page_count == 3
        assert heap.record_count == 9
        assert len(heap) == 9

    def test_scan_charges_one_read_per_page(self):
        heap, stats = make_heap(records_per_page=4)
        heap.bulk_load({"a": i, "b": i} for i in range(8))
        stats.reset()
        records = list(heap.scan())
        assert len(records) == 8
        assert stats.pages_read == 2
        assert stats.records_processed == 8

    def test_fetch_charges_one_read_per_record(self):
        heap, stats = make_heap()
        rids = heap.bulk_load({"a": i, "b": i} for i in range(8))
        stats.reset()
        for rid in rids:
            heap.fetch(rid)
        assert stats.pages_read == 8  # unclustered-fetch behaviour

    def test_fetch_invalid_rid(self):
        heap, _ = make_heap()
        with pytest.raises(ExecutionError):
            heap.fetch((99, 0))

    def test_scan_preserves_insertion_order(self):
        heap, _ = make_heap()
        heap.bulk_load({"a": i, "b": 0} for i in range(10))
        assert [r["a"] for r in heap.scan()] == list(range(10))

    def test_zero_records_per_page_rejected(self):
        schema = Schema("R", [Attribute("a")])
        with pytest.raises(ExecutionError):
            HeapFile(schema, IOStatistics(), records_per_page=0)


class TestIOStatistics:
    def test_counters_accumulate(self):
        stats = IOStatistics()
        stats.charge_page_reads(2)
        stats.charge_page_writes(1)
        stats.charge_records(5)
        stats.charge_index_probe()
        assert stats.total_pages == 3
        assert stats.snapshot() == {
            "pages_read": 2,
            "pages_written": 1,
            "records_processed": 5,
            "index_probes": 1,
        }

    def test_reset(self):
        stats = IOStatistics()
        stats.charge_page_reads(3)
        stats.reset()
        assert stats.pages_read == 0

    def test_estimated_seconds_positive(self):
        stats = IOStatistics()
        stats.charge_page_reads(100)
        assert stats.estimated_seconds() == pytest.approx(1.0)


class TestDatabase:
    def _catalog(self):
        catalog = Catalog()
        schema = Schema("R", [Attribute("a"), Attribute("b")])
        stats = RelationStatistics(
            "R", 8, [AttributeStatistics("a", 8), AttributeStatistics("b", 4)]
        )
        catalog.add_relation(schema, stats)
        catalog.add_index(IndexInfo("R", "a"))
        return catalog

    def test_load_maintains_indexes(self):
        database = Database(self._catalog())
        database.load("R", [{"a": i, "b": i % 4} for i in range(8)])
        btree = database.btree("R", "a")
        assert btree.entry_count == 8
        assert database.has_btree("R", "a")
        assert not database.has_btree("R", "b")

    def test_btree_lookup_accepts_qualified_name(self):
        database = Database(self._catalog())
        database.load("R", [{"a": 1, "b": 1}])
        assert database.btree("R", "R.a") is database.btree("R", "a")

    def test_missing_relation_raises(self):
        database = Database(self._catalog())
        with pytest.raises(ExecutionError):
            database.heap("R")  # no data loaded yet

    def test_double_create_rejected(self):
        database = Database(self._catalog())
        database.create_relation("R")
        with pytest.raises(CatalogError):
            database.create_relation("R")

    def test_index_search_finds_inserted_rids(self):
        database = Database(self._catalog())
        database.load("R", [{"a": i % 4, "b": 0} for i in range(8)])
        btree = database.btree("R", "a")
        rids = btree.search(2)
        heap = database.heap("R")
        for rid in rids:
            assert heap.fetch(rid)["a"] == 2
        assert len(rids) == 2

    def test_relation_names(self):
        database = Database(self._catalog())
        database.load("R", [{"a": 0, "b": 0}])
        assert database.relation_names() == ["R"]
