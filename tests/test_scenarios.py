"""The three optimization scenarios, break-even analysis, and the
conditional re-optimization extension."""

import pytest

from repro.common.errors import PlanError
from repro.common.units import CATALOG_VALIDATION_SECONDS
from repro.optimizer import optimize_dynamic
from repro.scenarios import (
    ConditionalReoptimizationScenario,
    DynamicPlanScenario,
    InvocationRecord,
    RunTimeOptimizationScenario,
    ScenarioResult,
    StaticPlanScenario,
    breakeven_runtime_vs_dynamic,
    breakeven_static_vs_dynamic,
    predicted_execution_seconds,
)
from repro.workloads import binding_series, random_bindings


@pytest.fixture(scope="module")
def series2(workload2):
    return binding_series(workload2, count=10, seed=13)


@pytest.fixture(scope="module")
def static2(workload2, series2):
    return StaticPlanScenario(workload2).run_series(series2)


@pytest.fixture(scope="module")
def dynamic2(workload2, series2):
    return DynamicPlanScenario(workload2).run_series(series2)


@pytest.fixture(scope="module")
def runtime2(workload2, series2):
    return RunTimeOptimizationScenario(workload2).run_series(series2)


class TestPredictedExecutionSeconds:
    def test_rejects_unresolved_dynamic_plans(self, workload2):
        dynamic = optimize_dynamic(workload2.catalog, workload2.query)
        bindings = random_bindings(workload2, seed=0)
        with pytest.raises(PlanError):
            predicted_execution_seconds(
                dynamic.plan, workload2.catalog,
                workload2.query.parameter_space, bindings,
            )


class TestInvocationRecord:
    def test_run_time_effort_sums_components(self):
        record = InvocationRecord(1.0, 2.0, 3.0)
        assert record.run_time_effort == 6.0


class TestScenarioResult:
    def test_averages(self):
        records = [InvocationRecord(0.0, 1.0, 2.0),
                   InvocationRecord(0.0, 3.0, 4.0)]
        result = ScenarioResult("x", 5.0, records, 10)
        assert result.average_activation_seconds == 2.0
        assert result.average_execution_seconds == 3.0
        assert result.total_effort() == 5.0 + 10.0

    def test_empty_series(self):
        result = ScenarioResult("x", 0.0, [], 0)
        assert result.average_execution_seconds == 0.0
        assert result.average_run_time_effort == 0.0


class TestStaticScenario:
    def test_activation_constant_across_invocations(self, workload2, series2,
                                                    static2):
        activations = {r.activation_seconds for r in static2.invocations}
        assert len(activations) == 1
        assert activations.pop() >= CATALOG_VALIDATION_SECONDS

    def test_no_per_invocation_optimization(self, static2):
        assert all(r.optimize_seconds == 0.0 for r in static2.invocations)

    def test_execution_varies_with_bindings(self, static2):
        costs = {round(r.execution_seconds, 6) for r in static2.invocations}
        assert len(costs) > 1


class TestRuntimeScenario:
    def test_pays_optimization_every_invocation(self, runtime2):
        assert all(r.optimize_seconds > 0 for r in runtime2.invocations)
        assert runtime2.compile_seconds == 0.0

    def test_no_activation_cost(self, runtime2):
        assert all(r.activation_seconds == 0.0 for r in runtime2.invocations)


class TestDynamicScenario:
    def test_activation_exceeds_static(self, static2, dynamic2):
        assert (
            dynamic2.average_activation_seconds
            > static2.average_activation_seconds
        )

    def test_execution_beats_static(self, static2, dynamic2):
        assert (
            dynamic2.average_execution_seconds
            < static2.average_execution_seconds
        )

    def test_matches_runtime_execution(self, dynamic2, runtime2):
        # The optimality guarantee seen through the scenario layer.
        assert dynamic2.average_execution_seconds == pytest.approx(
            runtime2.average_execution_seconds, rel=1e-9
        )

    def test_extra_metadata_present(self, dynamic2):
        assert dynamic2.extra["choose_plan_count"] >= 1
        assert "optimizer_statistics" in dynamic2.extra

    def test_cpu_scale_scales_compile_time(self, workload2, series2):
        unscaled = DynamicPlanScenario(workload2, cpu_scale=1.0)
        scaled = DynamicPlanScenario(workload2, cpu_scale=100.0)
        u = unscaled.run_series(series2[:2])
        s = scaled.run_series(series2[:2])
        # Same optimizer, but wall-clock noise: compare within 100x
        # bands rather than exactly.
        assert s.compile_seconds > u.compile_seconds


class TestBreakeven:
    def test_static_vs_dynamic_is_one_for_paper_queries(self, static2,
                                                        dynamic2):
        # Paper Section 6: "the break-even points are consistently as
        # low as N = 1".
        assert breakeven_static_vs_dynamic(static2, dynamic2) == 1

    def test_runtime_vs_dynamic_none_when_activation_dominates(self):
        runtime = ScenarioResult(
            "rt", 0.0, [InvocationRecord(0.01, 0.0, 1.0)], 0
        )
        dynamic = ScenarioResult(
            "dyn", 5.0, [InvocationRecord(0.0, 0.5, 1.0)], 0
        )
        assert breakeven_runtime_vs_dynamic(runtime, dynamic) is None

    def test_runtime_vs_dynamic_formula(self):
        # e = 6, a = 3, f = 1  ->  ceil(6 / 2) = 3.
        runtime = ScenarioResult(
            "rt", 0.0, [InvocationRecord(3.0, 0.0, 1.0)], 0
        )
        dynamic = ScenarioResult(
            "dyn", 6.0, [InvocationRecord(0.0, 1.0, 1.0)], 0
        )
        assert breakeven_runtime_vs_dynamic(runtime, dynamic) == 3

    def test_static_vs_dynamic_never(self):
        static = ScenarioResult(
            "st", 0.0, [InvocationRecord(0.0, 0.1, 1.0)], 0
        )
        dynamic = ScenarioResult(
            "dyn", 1.0, [InvocationRecord(0.0, 0.2, 1.0)], 0
        )
        assert breakeven_static_vs_dynamic(static, dynamic) is None


class TestConditionalReoptimization:
    def test_reoptimizes_on_drift(self, workload2, series2):
        scenario = ConditionalReoptimizationScenario(workload2, tolerance=0.1)
        result = scenario.run_series(series2)
        # Uniform random selectivities drift constantly: many
        # re-optimizations, the paper's criticism of this approach.
        assert result.extra["reoptimizations"] > len(series2) // 2

    def test_tolerant_scenario_reoptimizes_less(self, workload2, series2):
        eager = ConditionalReoptimizationScenario(workload2, tolerance=0.05)
        lazy = ConditionalReoptimizationScenario(workload2, tolerance=0.9)
        eager_result = eager.run_series(series2)
        lazy_result = lazy.run_series(series2)
        assert (
            lazy_result.extra["reoptimizations"]
            <= eager_result.extra["reoptimizations"]
        )

    def test_execution_quality_between_static_and_runtime(
        self, workload2, series2, static2, runtime2
    ):
        scenario = ConditionalReoptimizationScenario(workload2, tolerance=0.2)
        result = scenario.run_series(series2)
        assert (
            runtime2.average_execution_seconds - 1e-9
            <= result.average_execution_seconds
            <= static2.average_execution_seconds + 1e-9
        )
