"""Service-level resilience: retry, degradation, breaker, wrapping.

Each test builds a single-threaded :class:`QueryService` over a
freshly populated database, installs a fault injector with a
deterministic per-site trigger profile, and asserts *outcomes*: the
query completes with the fault-free rows (or fails fast with the
typed error), and the resilience counters record exactly what the
profile injected.
"""

import logging

import pytest

from repro.catalog import populate_database
from repro.common.errors import (
    ExecutionError,
    PermanentIOError,
    QueryTimeoutError,
    ServiceExecutionError,
)
from repro.observability import MetricsRegistry
from repro.resilience import (
    CircuitBreaker,
    FaultInjector,
    FaultProfile,
    FaultRule,
    MemoryDropStage,
    ResiliencePolicy,
    RetryPolicy,
    fault_profile,
)
from repro.service import QueryService
from repro.service.decision import DecisionCompilationError
from repro.storage import Database
from repro.workloads import paper_workload, random_bindings

QUERY_NUMBER = 2
DATA_SEED = 11


def quiet_policy(max_retries=3, max_degradations=2, breaker=None,
                 deadline_seconds=None):
    """A deterministic policy: zero backoff, no sleeping."""
    return ResiliencePolicy(
        retry=RetryPolicy(max_retries=max_retries, base_delay=0.0, jitter=0.0),
        breaker=breaker,
        max_degradations=max_degradations,
        deadline_seconds=deadline_seconds,
        sleep=lambda _seconds: None,
    )


def make_service(workload, resilience=None, metrics=None, execute=True):
    database = Database(workload.catalog)
    populate_database(database, seed=DATA_SEED)
    service = QueryService(
        database,
        max_workers=1,
        execute=execute,
        resilience=resilience,
        metrics=metrics,
    )
    return database, service


def run_once(workload, profile=None, resilience=None, metrics=None,
             deadline_seconds=None):
    """One baseline run and one (optionally faulty) run; both results."""
    bindings = random_bindings(workload, seed=0, run_index=0)
    _, baseline_service = make_service(workload)
    with baseline_service:
        baseline = baseline_service.run(workload.query, bindings)

    database, service = make_service(
        workload, resilience=resilience or quiet_policy(), metrics=metrics
    )
    if profile is not None:
        database.install_fault_injector(FaultInjector(profile, seed=0))
    with service:
        result = service.run(
            workload.query, bindings.copy(), deadline_seconds=deadline_seconds
        )
    return baseline, result, service


@pytest.fixture(scope="module")
def workload():
    return paper_workload(QUERY_NUMBER, memory_uncertain=True)


class TestTransientRetry:
    def test_completes_with_baseline_rows(self, workload):
        baseline, result, service = run_once(
            workload, profile=fault_profile("transient-io")
        )
        assert [r.as_dict() for r in result.execution.records] == [
            r.as_dict() for r in baseline.execution.records
        ]
        counts = service.resilience_counts()
        assert counts["transient_retries"] == 2
        assert counts["permanent_failures"] == 0
        assert counts["degradations"] == 0

    def test_retry_budget_exhaustion_raises_wrapped_transient(self, workload):
        # Four triggers against a budget of one retry: the second
        # injection propagates as the wrapped cause.
        profile = FaultProfile(
            "storm",
            rules=(FaultRule("heap_read", at_operations=(2, 4, 6, 8),
                             limit=4),),
        )
        bindings = random_bindings(workload, seed=0, run_index=0)
        database, service = make_service(
            workload, resilience=quiet_policy(max_retries=1)
        )
        database.install_fault_injector(FaultInjector(profile, seed=0))
        with service, pytest.raises(ServiceExecutionError) as excinfo:
            service.run(workload.query, bindings)
        error = excinfo.value
        assert type(error.cause).__name__ == "TransientIOError"
        assert error.attempts == 2  # initial try + the one retried attempt
        assert service.resilience_counts()["transient_retries"] == 1


class TestPermanentFailure:
    def test_fails_fast_with_typed_wrapper(self, workload):
        bindings = random_bindings(workload, seed=0, run_index=0)
        database, service = make_service(workload, resilience=quiet_policy())
        database.install_fault_injector(
            FaultInjector(fault_profile("broken-disk"), seed=0)
        )
        with service, pytest.raises(ServiceExecutionError) as excinfo:
            service.run(workload.query, bindings, tag="req-7")
        error = excinfo.value
        assert isinstance(error, ExecutionError)  # stays in the family
        assert isinstance(error.cause, PermanentIOError)
        assert error.__cause__ is error.cause
        assert error.tag == "req-7"
        assert error.query_name == workload.query.name
        assert error.cache_hit is False
        assert error.attempts == 1
        counts = service.resilience_counts()
        assert counts["permanent_failures"] == 1
        assert counts["transient_retries"] == 0
        snapshot = database.fault_injector.snapshot()
        assert snapshot["injected_permanent"] == 1


class TestDegradation:
    def test_memory_drop_redecides_and_completes(self, workload):
        baseline, result, service = run_once(
            workload, profile=fault_profile("memory-drop")
        )
        counts = service.resilience_counts()
        assert counts["degradations"] == 1
        assert counts["fallback_activations"] == 0
        assert sorted(
            tuple(sorted(r.as_dict().items()))
            for r in result.execution.records
        ) == sorted(
            tuple(sorted(r.as_dict().items()))
            for r in baseline.execution.records
        )

    def test_budget_exhaustion_activates_static_fallback(self, workload):
        profile = FaultProfile(
            "drops", memory_drops=(MemoryDropStage(3, 2),)
        )
        baseline, result, service = run_once(
            workload,
            profile=profile,
            resilience=quiet_policy(max_degradations=0),
        )
        counts = service.resilience_counts()
        assert counts["degradations"] == 1
        assert counts["fallback_activations"] == 1
        entry = service.cache.get(workload.query)
        assert entry.fallback_plan is not None
        assert result.execution.row_count == baseline.execution.row_count


class TestDeadline:
    def test_zero_deadline_times_out_typed(self, workload):
        bindings = random_bindings(workload, seed=0, run_index=0)
        _, service = make_service(workload, resilience=quiet_policy())
        with service, pytest.raises(ServiceExecutionError) as excinfo:
            service.run(workload.query, bindings, deadline_seconds=0.0)
        error = excinfo.value
        assert isinstance(error.cause, QueryTimeoutError)
        assert error.cause.rows_produced == 0
        assert service.resilience_counts()["timeouts"] == 1

    def test_policy_default_deadline_applies(self, workload):
        bindings = random_bindings(workload, seed=0, run_index=0)
        _, service = make_service(
            workload, resilience=quiet_policy(deadline_seconds=0.0)
        )
        with service, pytest.raises(ServiceExecutionError) as excinfo:
            service.run(workload.query, bindings)
        assert isinstance(excinfo.value.cause, QueryTimeoutError)


class TestDecisionFallbackSurfaced:
    def test_counted_and_logged(self, workload, monkeypatch, caplog):
        import repro.service.service as service_module

        def broken(*_args, **_kwargs):
            raise DecisionCompilationError("forced for the test")

        monkeypatch.setattr(service_module, "CompiledDecision", broken)
        bindings = random_bindings(workload, seed=0, run_index=0)
        _, service = make_service(workload, execute=False)
        with service, caplog.at_level(logging.WARNING, "repro.service.service"):
            result = service.run(workload.query, bindings)
        # The interpreter path still decided a plan.
        assert result.chosen is not None
        assert service.resilience_counts()["decision_fallbacks"] == 1
        assert any(
            "fell back to the interpreter" in record.message
            for record in caplog.records
        )


class TestCircuitBreaker:
    def test_trips_then_short_circuits_then_recloses(self):
        # Local helpers from the staleness tests: a narrowed workload
        # whose bindings can be pushed out of the covered interval.
        from tests.test_service import bindings_at, narrow_workload

        workload = narrow_workload(bounds=(0.0, 0.3))
        breaker = CircuitBreaker(failure_threshold=1, cooldown=2)
        service = QueryService(
            Database(workload.catalog),
            execute=False,
            max_workers=1,
            resilience=quiet_policy(breaker=breaker),
        )
        with service:
            first = service.run(workload.query, bindings_at(workload, 0.2))
            assert not first.reoptimized

            tripped = service.run(workload.query, bindings_at(workload, 0.9))
            assert tripped.reoptimized
            assert breaker.trips == 1
            assert service.resilience_counts()["breaker_trips"] == 1

            # Bounds are now [0.0, 0.9]; 0.95 is stale again, but the
            # breaker is open: served from cache, no re-optimization.
            for expected in (1, 2):
                held = service.run(
                    workload.query, bindings_at(workload, 0.95)
                )
                assert not held.reoptimized and held.cache_hit
                assert (
                    service.resilience_counts()["breaker_short_circuits"]
                    == expected
                )

            # Cooldown spent: the next stale invocation re-optimizes.
            reopened = service.run(workload.query, bindings_at(workload, 0.95))
            assert reopened.reoptimized
            assert breaker.trips == 2
        entry = service.cache.get(workload.query)
        assert entry.reoptimizations == 2

    def test_disabled_by_default(self):
        from tests.test_service import bindings_at, narrow_workload

        workload = narrow_workload(bounds=(0.0, 0.3))
        service = QueryService(
            Database(workload.catalog), execute=False, max_workers=1
        )
        with service:
            service.run(workload.query, bindings_at(workload, 0.2))
            for _ in range(3):
                service.run(workload.query, bindings_at(workload, 0.9))
        counts = service.resilience_counts()
        assert counts["breaker_trips"] == 0
        assert counts["breaker_short_circuits"] == 0


class TestCountersSurfaced:
    def test_metrics_mirror_resilience_counts(self, workload):
        metrics = MetricsRegistry()
        _, _, service = run_once(
            workload, profile=fault_profile("transient-io"), metrics=metrics
        )
        counts = service.resilience_counts()
        assert counts["transient_retries"] == 2
        assert (
            metrics.get("service_transient_retries_total").value
            == counts["transient_retries"]
        )
        assert metrics.get("service_degradations_total").value == 0

    def test_stats_snapshot_includes_resilience(self, workload):
        _, _, service = run_once(
            workload, profile=fault_profile("transient-io")
        )
        stats = service.stats()
        assert stats.resilience["transient_retries"] == 2
        assert set(stats.resilience) == set(service.resilience_counts())
