"""Predicates, user variables, and selectivity specifications."""

import pytest

from repro.algebra.expressions import (
    Comparison,
    ComparisonOp,
    JoinPredicate,
    Literal,
    SelectionPredicate,
    UserVariable,
)
from repro.common.errors import ExecutionError
from repro.cost.parameters import Bindings
from repro.storage import Record


class TestComparisonOp:
    @pytest.mark.parametrize(
        "op, left, right, expected",
        [
            (ComparisonOp.EQ, 1, 1, True),
            (ComparisonOp.EQ, 1, 2, False),
            (ComparisonOp.NE, 1, 2, True),
            (ComparisonOp.LT, 1, 2, True),
            (ComparisonOp.LT, 2, 2, False),
            (ComparisonOp.LE, 2, 2, True),
            (ComparisonOp.GT, 3, 2, True),
            (ComparisonOp.GE, 2, 2, True),
            (ComparisonOp.GE, 1, 2, False),
        ],
    )
    def test_evaluate(self, op, left, right, expected):
        assert op.evaluate(left, right) is expected


class TestOperands:
    def test_literal_always_bound(self):
        literal = Literal(5)
        assert literal.is_bound
        assert literal.resolve(None) == 5

    def test_user_variable_unbound_raises(self):
        variable = UserVariable("v")
        assert not variable.is_bound
        with pytest.raises(ExecutionError):
            variable.resolve(None)
        with pytest.raises(ExecutionError):
            variable.resolve(Bindings())

    def test_user_variable_resolves_from_bindings(self):
        bindings = Bindings().bind_variable("v", 42)
        assert UserVariable("v").resolve(bindings) == 42

    def test_operand_equality(self):
        assert Literal(1) == Literal(1)
        assert Literal(1) != Literal(2)
        assert UserVariable("v") == UserVariable("v")
        assert UserVariable("v") != UserVariable("w")


class TestComparison:
    def test_bare_value_coerced_to_literal(self):
        comparison = Comparison("R.a", ComparisonOp.LT, 10)
        assert isinstance(comparison.operand, Literal)

    def test_evaluate_against_record(self):
        comparison = Comparison("R.a", ComparisonOp.LT, 10)
        assert comparison.evaluate(Record({"R.a": 5}))
        assert not comparison.evaluate(Record({"R.a": 15}))

    def test_evaluate_with_user_variable(self):
        comparison = Comparison("R.a", ComparisonOp.GE, UserVariable("v"))
        bindings = Bindings().bind_variable("v", 7)
        assert comparison.evaluate(Record({"R.a": 7}), bindings)
        assert not comparison.evaluate(Record({"R.a": 6}), bindings)

    def test_is_bound(self):
        assert Comparison("R.a", ComparisonOp.EQ, 1).is_bound
        assert not Comparison("R.a", ComparisonOp.EQ, UserVariable("v")).is_bound

    def test_hash_and_eq(self):
        a = Comparison("R.a", ComparisonOp.LT, UserVariable("v"))
        b = Comparison("R.a", ComparisonOp.LT, UserVariable("v"))
        assert a == b and hash(a) == hash(b)


class TestSelectionPredicate:
    def _uncertain(self):
        return SelectionPredicate(
            Comparison("R.a", ComparisonOp.LT, UserVariable("v")),
            selectivity_parameter="sel_R",
        )

    def test_requires_selectivity_information(self):
        with pytest.raises(ValueError):
            SelectionPredicate(Comparison("R.a", ComparisonOp.LT, 5))

    def test_uncertain_flag(self):
        assert self._uncertain().is_uncertain
        known = SelectionPredicate(
            Comparison("R.a", ComparisonOp.LT, 5), known_selectivity=0.3
        )
        assert not known.is_uncertain

    def test_default_expected_selectivity_is_paper_default(self):
        assert self._uncertain().expected_selectivity == 0.05

    def test_default_bounds_are_zero_one(self):
        bounds = self._uncertain().selectivity_bounds
        assert (bounds.lower, bounds.upper) == (0.0, 1.0)

    def test_attribute_property(self):
        assert self._uncertain().attribute == "R.a"

    def test_evaluate_delegates_to_comparison(self):
        bindings = Bindings().bind_variable("v", 10)
        assert self._uncertain().evaluate(Record({"R.a": 5}), bindings)

    def test_equality(self):
        assert self._uncertain() == self._uncertain()


class TestJoinPredicate:
    def test_evaluate(self):
        predicate = JoinPredicate("R.b", "S.c")
        assert predicate.evaluate(Record({"R.b": 1}), Record({"S.c": 1}))
        assert not predicate.evaluate(Record({"R.b": 1}), Record({"S.c": 2}))

    def test_attribute_for(self):
        predicate = JoinPredicate("R.b", "S.c")
        assert predicate.attribute_for("R") == "R.b"
        assert predicate.attribute_for("S") == "S.c"
        assert predicate.attribute_for("T") is None

    def test_flipped_is_equal(self):
        predicate = JoinPredicate("R.b", "S.c")
        assert predicate.flipped() == predicate
        assert hash(predicate.flipped()) == hash(predicate)

    def test_inequality(self):
        assert JoinPredicate("R.b", "S.c") != JoinPredicate("R.b", "S.d")
