"""The Volcano iterator protocol: open / next / close semantics."""

import pytest

from repro.algebra.physical import FileScan, Filter
from repro.common.errors import ExecutionError
from repro.executor.engine import ExecutionContext
from repro.executor.iterators import build_iterator
from repro.workloads import random_bindings


@pytest.fixture()
def context(workload1, database1):
    bindings = random_bindings(workload1, seed=0)
    return ExecutionContext(
        database1, bindings, workload1.query.parameter_space
    )


class TestProtocol:
    def test_open_is_idempotent(self, context):
        iterator = build_iterator(FileScan("R1"), context)
        iterator.open()
        stream = iterator._stream
        iterator.open()
        assert iterator._stream is stream

    def test_explicit_next_calls(self, context, workload1):
        iterator = build_iterator(FileScan("R1"), context)
        first = iterator.next()
        second = iterator.next()
        assert first != second or first is not second
        count = 2
        while True:
            try:
                iterator.next()
            except StopIteration:
                break
            count += 1
        assert count == workload1.catalog.cardinality("R1")

    def test_close_then_reopen_restarts(self, context, workload1):
        iterator = build_iterator(FileScan("R1"), context)
        first_run = list(iterator)
        iterator.close()
        second_run = list(iterator)
        assert len(first_run) == len(second_run)
        assert len(first_run) == workload1.catalog.cardinality("R1")

    def test_iteration_protocol(self, context):
        predicate = context.parameter_space  # not a predicate; placeholder
        iterator = build_iterator(FileScan("R1"), context)
        assert iter(iterator) is iterator._stream

    def test_unknown_operator_rejected(self, context):
        class Bogus:
            def inputs(self):
                return ()

        with pytest.raises(ExecutionError):
            build_iterator(Bogus(), context)

    def test_filter_streams_lazily(self, context, workload1):
        # Pulling a single record must not scan the whole relation.
        predicate = workload1.query.selection_for("R1")
        domain = workload1.catalog.domain_size("R1", "a")
        context.bindings.bind_variable("v_R1", domain)  # everything passes
        before = context.io_stats.pages_read
        iterator = build_iterator(
            Filter(FileScan("R1"), predicate), context
        )
        iterator.next()
        pages_touched = context.io_stats.pages_read - before
        total_pages = workload1.catalog.statistics("R1").pages
        assert pages_touched < total_pages / 2
