"""Catalog validation and drift: dropped indexes, changed statistics.

The paper's Section 1 motivates uncertainty with "indexes are created
and destroyed" and changing database contents; Section 2 recalls
System R's handling of infeasible plans ([CAK81]).  Static plans break
when their structures vanish; dynamic plans degrade gracefully.
"""


import pytest

from repro.algebra.physical import ChoosePlan, FilterBTreeScan
from repro.catalog import (
    AttributeStatistics,
    RelationStatistics,
    build_synthetic_catalog,
    default_relation_specs,
)
from repro.common.errors import CatalogError, InfeasiblePlanError
from repro.executor import (
    activate_plan,
    node_is_feasible,
    resolve_dynamic_plan,
    validate_plan,
)
from repro.optimizer import optimize_dynamic, optimize_static
from repro.workloads import paper_workload, random_bindings


def fresh_workload(number=1):
    """A workload with a private catalog we may mutate."""
    return paper_workload(number, seed=0)


class TestNodeFeasibility:
    def test_index_nodes_require_their_index(self, workload1):
        plan = FilterBTreeScan(
            "R1", "a", workload1.query.selection_for("R1")
        )
        assert node_is_feasible(plan, workload1.catalog)
        catalog = build_synthetic_catalog(
            default_relation_specs(1, seed=0), seed=0
        )
        catalog.drop_index("R1", "a")
        assert not node_is_feasible(plan, catalog)

    def test_unknown_relation_infeasible(self, workload1):
        from repro.algebra.physical import FileScan

        catalog = build_synthetic_catalog(
            default_relation_specs(1, seed=0), seed=0
        )
        assert not node_is_feasible(FileScan("ZZZ"), catalog)


class TestStaticPlanInfeasibility:
    def test_static_plan_breaks_when_index_dropped(self):
        workload = fresh_workload(1)
        static = optimize_static(workload.catalog, workload.query)
        # The motivating example's static plan bets on the index scan.
        assert any(
            isinstance(node, FilterBTreeScan)
            for node in static.plan.walk_unique()
        )
        workload.catalog.drop_index("R1", "a")
        with pytest.raises(InfeasiblePlanError):
            validate_plan(static.plan, workload.catalog)

    def test_activation_validates(self):
        workload = fresh_workload(1)
        static = optimize_static(workload.catalog, workload.query)
        workload.catalog.drop_index("R1", "a")
        bindings = random_bindings(workload, seed=1)
        with pytest.raises(InfeasiblePlanError):
            activate_plan(
                static.plan,
                workload.catalog,
                workload.query.parameter_space,
                bindings,
            )

    def test_validation_can_be_skipped(self):
        workload = fresh_workload(1)
        static = optimize_static(workload.catalog, workload.query)
        bindings = random_bindings(workload, seed=1)
        plan, _ = activate_plan(
            static.plan,
            workload.catalog,
            workload.query.parameter_space,
            bindings,
            validate=False,
        )
        assert plan is static.plan


class TestDynamicPlanDegradation:
    def test_dynamic_plan_survives_dropped_index(self):
        workload = fresh_workload(1)
        dynamic = optimize_dynamic(workload.catalog, workload.query)
        workload.catalog.drop_index("R1", "a")
        validated = validate_plan(dynamic.plan, workload.catalog)
        # The index-scan alternative is gone; the file-scan one stays.
        operators = [n.operator_name() for n in validated.walk_unique()]
        assert "Filter-B-tree-Scan" not in operators
        assert "File-Scan" in operators

    def test_choose_plan_collapses_to_single_alternative(self):
        workload = fresh_workload(1)
        dynamic = optimize_dynamic(workload.catalog, workload.query)
        assert isinstance(dynamic.plan, ChoosePlan)
        workload.catalog.drop_index("R1", "a")
        validated = validate_plan(dynamic.plan, workload.catalog)
        assert validated.choose_plan_count() == 0

    def test_unchanged_catalog_returns_same_plan_object(self):
        workload = fresh_workload(2)
        dynamic = optimize_dynamic(workload.catalog, workload.query)
        assert validate_plan(dynamic.plan, workload.catalog) is dynamic.plan

    def test_two_way_join_loses_index_joins_only(self):
        workload = fresh_workload(2)
        dynamic = optimize_dynamic(workload.catalog, workload.query)
        # Drop the join-attribute index of R2: Index-Joins into R2 and
        # B-tree scans on R2.c become infeasible; everything else stays.
        workload.catalog.drop_index("R2", "c")
        validated = validate_plan(dynamic.plan, workload.catalog)
        for node in validated.walk_unique():
            assert node_is_feasible(node, workload.catalog)
        operators = [n.operator_name() for n in validated.walk_unique()]
        assert "Hash-Join" in operators

    def test_validated_plan_still_resolves_and_matches_reoptimization(self):
        workload = fresh_workload(2)
        dynamic = optimize_dynamic(workload.catalog, workload.query)
        workload.catalog.drop_index("R2", "c")
        validated = validate_plan(dynamic.plan, workload.catalog)
        bindings = random_bindings(workload, seed=5)
        chosen, _ = resolve_dynamic_plan(
            validated,
            workload.catalog,
            workload.query.parameter_space,
            bindings,
        )
        assert chosen.choose_plan_count() == 0
        for node in chosen.walk_unique():
            assert node_is_feasible(node, workload.catalog)


class TestStatisticsDrift:
    def test_decisions_follow_updated_cardinality(self):
        # Query 2's build-side decision depends on the relative sizes
        # of R1 and R2; shrink R2 drastically and the choose-plan
        # decisions must adapt without re-optimization.
        workload = fresh_workload(2)
        dynamic = optimize_dynamic(workload.catalog, workload.query)
        bindings = random_bindings(workload, seed=2)
        bindings.bind("sel_R1", 0.5).bind("sel_R2", 0.5)
        before, _ = resolve_dynamic_plan(
            dynamic.plan, workload.catalog,
            workload.query.parameter_space, bindings,
        )
        old_stats = workload.catalog.statistics("R2")
        new_stats = RelationStatistics(
            "R2",
            5,  # shrunk from 1000 records to 5
            [
                AttributeStatistics(stats.attribute_name, stats.domain_size)
                for stats in (
                    old_stats.attribute("a"),
                    old_stats.attribute("b"),
                    old_stats.attribute("c"),
                )
            ],
        )
        workload.catalog.update_statistics(new_stats)
        after, _ = resolve_dynamic_plan(
            dynamic.plan, workload.catalog,
            workload.query.parameter_space, bindings,
        )
        assert before.signature() != after.signature()

    def test_update_statistics_unknown_relation_rejected(self):
        workload = fresh_workload(1)
        with pytest.raises(CatalogError):
            workload.catalog.update_statistics(
                RelationStatistics("ZZZ", 10)
            )
