"""Cooperative cancellation lands exactly at iterator boundaries.

Deadlines are checked at operator open and at every row/batch step of
the engine's drive loop, never inside an operator.  Under a
:class:`~repro.resilience.deadline.CountingClock` each check advances
the clock by one second, so a ``Deadline(k)`` expires on the ``k``-th
check and these tests can pin *where* cancellation happens:

* a mid-run expiry stops within one batch — the partial row count is
  an exact prefix sum of the fault-free batch sizes;
* the raised error's I/O snapshot equals the database counter delta,
  so no work goes unaccounted;
* a zero deadline expires at open, before any row is produced;
* the engine closed the plan on the way out: the same database runs
  the same plan again, fault-free, to completion.

The matrix is row/batch × traced/untraced, mirroring the
differential harness.
"""

import pytest

from repro.catalog import populate_database
from repro.common.errors import QueryTimeoutError
from repro.executor.engine import ExecutionContext, execute_plan
from repro.executor.vectorized import build_batch_iterator
from repro.observability import Tracer
from repro.optimizer.optimizer import optimize_dynamic
from repro.resilience import CountingClock, Deadline
from repro.storage.database import Database
from repro.workloads import paper_workload, random_bindings

QUERY_NUMBER = 2
DATA_SEED = 11
BATCH_SIZE = 4


@pytest.fixture(scope="module")
def setup():
    workload = paper_workload(QUERY_NUMBER)
    plan = optimize_dynamic(workload.catalog, workload.query).plan
    bindings = random_bindings(workload, seed=0, run_index=0)
    return workload, plan, bindings


def fresh_database(workload):
    database = Database(workload.catalog)
    populate_database(database, seed=DATA_SEED)
    return database


def run(workload, plan, bindings, mode, deadline=None, tracer=None,
        database=None):
    if database is None:
        database = fresh_database(workload)
    return execute_plan(
        plan,
        database,
        bindings,
        workload.query.parameter_space,
        tracer=tracer,
        execution_mode=mode,
        batch_size=BATCH_SIZE if mode == "batch" else None,
        deadline=deadline,
    )


def count_checks(workload, plan, bindings, mode):
    """Deadline checks a fault-free run performs, and its row count."""
    clock = CountingClock()
    deadline = Deadline(10.0**9, clock=clock)
    result = run(workload, plan, bindings, mode, deadline=deadline)
    # The constructor reads the clock once; every check reads once.
    return int(clock.now) - 1, result.row_count


def batch_prefix_sums(workload, plan, bindings):
    """Cumulative row counts at every batch boundary, fault-free."""
    database = fresh_database(workload)
    context = ExecutionContext(
        database,
        bindings,
        workload.query.parameter_space,
        execution_mode="batch",
        batch_size=BATCH_SIZE,
    )
    root = build_batch_iterator(plan, context)
    sums, total = [0], 0
    for batch in root.batches():
        total += len(batch)
        sums.append(total)
    return sums


@pytest.mark.parametrize("traced", (False, True), ids=("untraced", "traced"))
@pytest.mark.parametrize("mode", ("row", "batch"))
def test_mid_run_expiry_stops_at_a_boundary(setup, mode, traced):
    workload, plan, bindings = setup
    checks, total_rows = count_checks(workload, plan, bindings, mode)
    assert total_rows > 0 and checks > 3

    database = fresh_database(workload)
    before = database.io_stats.snapshot()
    tracer = Tracer() if traced else None
    # Expire two checks before the run would have completed: inside
    # the drive loop, after some results but before the last ones.
    deadline = Deadline(checks - 2, clock=CountingClock())
    with pytest.raises(QueryTimeoutError) as excinfo:
        run(workload, plan, bindings, mode, deadline=deadline,
            tracer=tracer, database=database)
    error = excinfo.value

    assert 0 < error.rows_produced < total_rows
    if mode == "batch":
        # Cancellation never splits a batch: the partial count is an
        # exact prefix of the fault-free batch sizes.
        assert error.rows_produced in batch_prefix_sums(
            workload, plan, bindings
        )

    # Every page and record the aborted run touched is accounted for.
    after = database.io_stats.snapshot()
    assert error.io_snapshot == {
        key: after[key] - before[key] for key in after
    }

    if traced:
        assert error.trace is not None
        assert error.trace.spans
    else:
        assert error.trace is None

    # The engine closed the plan tree on the way out: the same
    # database runs the same plan to completion afterwards.
    rerun = run(workload, plan, bindings, mode, database=database)
    assert rerun.row_count == total_rows


@pytest.mark.parametrize("mode", ("row", "batch"))
def test_zero_deadline_expires_at_open(setup, mode):
    workload, plan, bindings = setup
    deadline = Deadline(0, clock=CountingClock())
    with pytest.raises(QueryTimeoutError) as excinfo:
        run(workload, plan, bindings, mode, deadline=deadline)
    error = excinfo.value
    assert error.rows_produced == 0
    assert error.elapsed_seconds >= error.deadline_seconds


def test_no_deadline_means_no_checks(setup):
    workload, plan, bindings = setup
    result = run(workload, plan, bindings, "row", deadline=None)
    assert result.row_count > 0


def test_timeout_error_carries_partial_trace_via_explain(setup):
    from repro.observability.explain import explain_analyze

    workload, plan, bindings = setup
    database = fresh_database(workload)
    checks, _ = count_checks(workload, plan, bindings, "row")
    with pytest.raises(QueryTimeoutError) as excinfo:
        explain_analyze(
            plan,
            database,
            bindings,
            workload.query.parameter_space,
            deadline=Deadline(checks - 2, clock=CountingClock()),
        )
    trace = excinfo.value.trace
    assert trace is not None
    labels = [span.label() for span, _depth in trace.walk()]
    assert labels
