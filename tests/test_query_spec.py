"""QuerySpec normalization, join-graph queries, and parameter spaces."""

import pytest

from repro.algebra import (
    Comparison,
    ComparisonOp,
    GetSet,
    Join,
    JoinPredicate,
    Select,
    SelectionPredicate,
)
from repro.common.errors import OptimizationError
from repro.cost.parameters import MEMORY_PARAMETER
from repro.optimizer import QuerySpec
from repro.workloads.queries import make_selection_predicate


def chain_spec(k=3, memory_uncertain=False):
    relations = ["R%d" % (i + 1) for i in range(k)]
    selections = {name: make_selection_predicate(name) for name in relations}
    joins = [
        JoinPredicate("R%d.b" % (i + 1), "R%d.c" % (i + 2))
        for i in range(k - 1)
    ]
    return QuerySpec(relations, selections, joins,
                     memory_uncertain=memory_uncertain)


class TestConstruction:
    def test_empty_query_rejected(self):
        with pytest.raises(OptimizationError):
            QuerySpec([])

    def test_duplicate_relation_rejected(self):
        with pytest.raises(OptimizationError):
            QuerySpec(["R", "R"])

    def test_selection_on_unknown_relation_rejected(self):
        with pytest.raises(OptimizationError):
            QuerySpec(["R"], {"S": make_selection_predicate("S")})

    def test_join_predicate_on_unknown_relation_rejected(self):
        with pytest.raises(OptimizationError):
            QuerySpec(["R", "S"], {}, [JoinPredicate("R.b", "T.c")])

    def test_disconnected_join_graph_rejected(self):
        with pytest.raises(OptimizationError):
            QuerySpec(["R", "S", "T"], {}, [JoinPredicate("R.b", "S.c")])

    def test_single_relation_no_joins_ok(self):
        spec = QuerySpec(["R"], {"R": make_selection_predicate("R")})
        assert spec.uncertain_variable_count() == 1


class TestFromLogical:
    def test_normalizes_select_join_tree(self):
        r_pred = make_selection_predicate("R")
        expression = Join(
            Select(GetSet("R"), r_pred),
            GetSet("S"),
            JoinPredicate("R.b", "S.c"),
        )
        spec = QuerySpec.from_logical(expression)
        assert set(spec.relations) == {"R", "S"}
        assert spec.selection_for("R") is r_pred
        assert spec.selection_for("S") is None
        assert len(spec.join_predicates) == 1

    def test_select_above_join_rejected(self):
        expression = Select(
            Join(GetSet("R"), GetSet("S"), JoinPredicate("R.b", "S.c")),
            make_selection_predicate("R"),
        )
        with pytest.raises(OptimizationError):
            QuerySpec.from_logical(expression)

    def test_two_selections_on_one_relation_rejected(self):
        expression = Select(
            Select(GetSet("R"), make_selection_predicate("R")),
            make_selection_predicate("R"),
        )
        with pytest.raises(OptimizationError):
            QuerySpec.from_logical(expression)

    def test_non_logical_input_rejected(self):
        with pytest.raises(OptimizationError):
            QuerySpec.from_logical("not a query")


class TestParameterSpace:
    def test_uncertain_selectivities_registered(self):
        spec = chain_spec(3)
        assert spec.parameter_space.uncertain_names() == [
            "sel_R1",
            "sel_R2",
            "sel_R3",
        ]

    def test_memory_uncertainty_adds_one_variable(self):
        certain = chain_spec(2, memory_uncertain=False)
        uncertain = chain_spec(2, memory_uncertain=True)
        assert certain.uncertain_variable_count() == 2
        assert uncertain.uncertain_variable_count() == 3
        assert uncertain.parameter_space.get(MEMORY_PARAMETER).uncertain

    def test_known_selectivity_adds_no_variable(self):
        predicate = SelectionPredicate(
            Comparison("R.a", ComparisonOp.LT, 5), known_selectivity=0.3
        )
        spec = QuerySpec(["R"], {"R": predicate})
        assert spec.uncertain_variable_count() == 0


class TestJoinGraph:
    def test_cross_predicates_orients_towards_left(self):
        spec = chain_spec(3)
        predicates = spec.cross_predicates({"R2"}, {"R1"})
        assert len(predicates) == 1
        # Oriented so the left attribute belongs to the left set.
        assert predicates[0].left_attribute.startswith("R2.")

    def test_cross_predicates_empty_for_unconnected_sets(self):
        spec = chain_spec(3)
        assert spec.cross_predicates({"R1"}, {"R3"}) == []

    def test_internal_predicates(self):
        spec = chain_spec(3)
        assert len(spec.internal_predicates({"R1", "R2", "R3"})) == 2
        assert len(spec.internal_predicates({"R1", "R2"})) == 1
        assert spec.internal_predicates({"R1"}) == []

    def test_is_connected(self):
        spec = chain_spec(4)
        assert spec.is_connected({"R1", "R2"})
        assert spec.is_connected({"R2", "R3", "R4"})
        assert not spec.is_connected({"R1", "R3"})
        assert spec.is_connected({"R2"})

    def test_connected_splits_chain(self):
        spec = chain_spec(3)
        splits = spec.connected_splits(frozenset({"R1", "R2", "R3"}))
        # Chain of 3: {R1}|{R2,R3} and {R1,R2}|{R3}, both orders = 4.
        assert len(splits) == 4
        for left, right in splits:
            assert spec.is_connected(left) and spec.is_connected(right)
            assert spec.cross_predicates(left, right)

    def test_connected_splits_exclude_cross_products(self):
        spec = chain_spec(4)
        splits = spec.connected_splits(frozenset({"R1", "R2", "R3", "R4"}))
        assert (frozenset({"R1", "R3"}), frozenset({"R2", "R4"})) not in splits
        # Chain of 4: 3 cut points x 2 orders = 6 connected splits.
        assert len(splits) == 6
