"""Unit tests for the resilience primitives.

Covers the fault-injection harness (rule triggers, limits, memory
drops, seeded determinism), cooperative deadlines under a counting
clock, the retry/backoff policy, and the count-based circuit breaker
— all without a database, driving the injector and clock by hand.
"""

import pytest

from repro.common import percentile
from repro.common.errors import (
    ExecutionError,
    MemoryDropError,
    PermanentIOError,
    QueryTimeoutError,
    TransientIOError,
)
from repro.resilience import (
    CircuitBreaker,
    CountingClock,
    Deadline,
    FAULT_PROFILES,
    FaultInjector,
    FaultProfile,
    FaultRule,
    MemoryDropStage,
    RetryPolicy,
    fault_profile,
)


# ----------------------------------------------------------------------
# Fault rules and profiles
# ----------------------------------------------------------------------


class TestFaultRules:
    def test_rejects_unknown_site(self):
        with pytest.raises(ExecutionError):
            FaultRule("disk_seek")

    def test_rejects_unknown_kind(self):
        with pytest.raises(ExecutionError):
            FaultRule("heap_read", kind="intermittent")

    def test_rejects_bad_rate(self):
        with pytest.raises(ExecutionError):
            FaultRule("heap_read", rate=1.5)

    def test_unknown_profile_lists_valid_names(self):
        with pytest.raises(ExecutionError) as excinfo:
            fault_profile("nope")
        for name in FAULT_PROFILES:
            assert name in str(excinfo.value)

    def test_builtin_profiles_roundtrip_to_dict(self):
        for name, profile in FAULT_PROFILES.items():
            data = profile.to_dict()
            assert data["name"] == name
            assert isinstance(data["rules"], list)
            assert isinstance(data["memory_drops"], list)

    def test_memory_stage_rejects_zero_pages(self):
        with pytest.raises(ExecutionError):
            MemoryDropStage(10, 0)


class TestFaultInjector:
    def test_at_operations_counts_per_site(self):
        profile = FaultProfile(
            "t",
            rules=(FaultRule("heap_read", at_operations=(2,), limit=1),),
        )
        injector = FaultInjector(profile)
        # Other sites advance the global counter but not the trigger.
        injector.record("index_probe")
        injector.record("index_probe")
        injector.record("heap_read")  # heap_read #1: clean
        with pytest.raises(TransientIOError) as excinfo:
            injector.record("heap_read")  # heap_read #2: faults
        assert excinfo.value.site == "heap_read"
        assert excinfo.value.operation_index == 4
        assert injector.injected_transient == 1

    def test_limit_caps_injections(self):
        profile = FaultProfile(
            "t",
            rules=(FaultRule("heap_read", at_operations=(1, 2, 3), limit=2),),
        )
        injector = FaultInjector(profile)
        faults = 0
        for _ in range(10):
            try:
                injector.record("heap_read")
            except TransientIOError:
                faults += 1
        assert faults == 2
        assert injector.injected_transient == 2

    def test_permanent_kind_raises_permanent_error(self):
        profile = FaultProfile(
            "t",
            rules=(FaultRule("heap_read", kind="permanent",
                             at_operations=(1,), limit=1),),
        )
        with pytest.raises(PermanentIOError):
            FaultInjector(profile).record("heap_read")

    def test_bulk_record_advances_per_operation(self):
        profile = FaultProfile(
            "t",
            rules=(FaultRule("heap_read", at_operations=(3,), limit=1),),
        )
        injector = FaultInjector(profile)
        with pytest.raises(TransientIOError) as excinfo:
            injector.record("heap_read", 5)
        # The fault aborts the call at the 3rd observed operation.
        assert excinfo.value.operation_index == 3
        assert injector.operations == 3

    def test_memory_drop_fires_once_and_shrinks_grant(self):
        profile = FaultProfile(
            "t", memory_drops=(MemoryDropStage(2, 4),)
        )
        injector = FaultInjector(profile)
        injector.record("heap_read")
        assert injector.current_memory_pages(64) == 64
        with pytest.raises(MemoryDropError) as excinfo:
            injector.record("heap_read")
        assert excinfo.value.new_memory_pages == 4
        assert injector.current_memory_pages(64) == 4
        assert injector.current_memory_pages(2) == 2  # min, floor 1
        # Fired stages never re-fire.
        for _ in range(5):
            injector.record("heap_read")
        assert injector.memory_drops_fired == 1

    def test_rate_faults_deterministic_per_seed(self):
        profile = FaultProfile(
            "t", rules=(FaultRule("heap_read", rate=0.05),)
        )

        def fault_pattern(seed):
            injector = FaultInjector(profile, seed=seed)
            pattern = []
            for _ in range(500):
                try:
                    injector.record("heap_read")
                    pattern.append(0)
                except TransientIOError:
                    pattern.append(1)
            return pattern

        assert fault_pattern(7) == fault_pattern(7)
        assert fault_pattern(7) != fault_pattern(8)
        assert sum(fault_pattern(7)) > 0

    def test_snapshot_counts(self):
        profile = FaultProfile(
            "t",
            rules=(FaultRule("heap_read", at_operations=(1,), limit=1),),
        )
        injector = FaultInjector(profile, seed=3)
        with pytest.raises(TransientIOError):
            injector.record("heap_read")
        injector.record("index_probe")
        snapshot = injector.snapshot()
        assert snapshot["profile"] == "t"
        assert snapshot["seed"] == 3
        assert snapshot["operations"] == 2
        assert snapshot["site_operations"]["heap_read"] == 1
        assert snapshot["site_operations"]["index_probe"] == 1
        assert snapshot["injected_transient"] == 1
        assert snapshot["injected_permanent"] == 0


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------


class TestDeadline:
    def test_counting_clock_expires_on_nth_check(self):
        deadline = Deadline(3, clock=CountingClock())
        deadline.check()  # reads 1.0
        deadline.check()  # reads 2.0
        with pytest.raises(QueryTimeoutError) as excinfo:
            deadline.check()  # reads 3.0 >= expiry
        error = excinfo.value
        assert error.deadline_seconds == 3.0
        assert error.elapsed_seconds == 3.0
        assert error.rows_produced == 0
        assert error.io_snapshot is None

    def test_zero_deadline_expires_immediately(self):
        deadline = Deadline(0, clock=CountingClock())
        with pytest.raises(QueryTimeoutError):
            deadline.check()

    def test_negative_seconds_rejected(self):
        with pytest.raises(ExecutionError):
            Deadline(-1)

    def test_ensure_coerces(self):
        assert Deadline.ensure(None) is None
        deadline = Deadline(5)
        assert Deadline.ensure(deadline) is deadline
        coerced = Deadline.ensure(2.5)
        assert isinstance(coerced, Deadline)
        assert coerced.seconds == 2.5

    def test_elapsed_and_remaining(self):
        clock = CountingClock()
        deadline = Deadline(10, clock=clock)
        assert deadline.elapsed() == 1.0
        assert deadline.remaining() == 8.0
        assert not deadline.expired()


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------


class TestRetryPolicy:
    def test_backoff_grows_exponentially_without_jitter(self):
        policy = RetryPolicy(base_delay=0.01, multiplier=2.0, jitter=0.0)
        assert policy.delay(1) == pytest.approx(0.01)
        assert policy.delay(2) == pytest.approx(0.02)
        assert policy.delay(3) == pytest.approx(0.04)

    def test_jitter_bounded_and_seeded(self):
        a = RetryPolicy(base_delay=0.01, jitter=0.5, seed=4)
        b = RetryPolicy(base_delay=0.01, jitter=0.5, seed=4)
        delays_a = [a.delay(1) for _ in range(20)]
        delays_b = [b.delay(1) for _ in range(20)]
        assert delays_a == delays_b
        for delay in delays_a:
            assert 0.01 <= delay <= 0.015

    def test_validation(self):
        with pytest.raises(ExecutionError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ExecutionError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ExecutionError):
            RetryPolicy(jitter=2.0)


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------


class TestCircuitBreaker:
    def test_trips_after_threshold_and_cools_down(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=3)
        assert breaker.allow("q")
        assert not breaker.record_reoptimization("q")
        assert breaker.state("q") == "closed"
        assert breaker.record_reoptimization("q")  # trips
        assert breaker.state("q") == "open"
        # Open: the next `cooldown` stale lookups are short-circuited.
        assert not breaker.allow("q")
        assert not breaker.allow("q")
        assert not breaker.allow("q")
        assert breaker.short_circuits == 3
        # Cooldown exhausted: closed again.
        assert breaker.allow("q")
        assert breaker.state("q") == "closed"
        assert breaker.trips == 1

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=2)
        breaker.record_reoptimization("q")
        breaker.record_success("q")
        assert not breaker.record_reoptimization("q")
        assert breaker.trips == 0

    def test_keys_are_independent(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=2)
        assert breaker.record_reoptimization("a")
        assert not breaker.allow("a")
        assert breaker.allow("b")


# ----------------------------------------------------------------------
# percentile relocation
# ----------------------------------------------------------------------


class TestPercentileMove:
    def test_lives_in_common(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)

    def test_service_reexport_is_same_object(self):
        from repro.service.service import percentile as service_percentile

        assert service_percentile is percentile

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
