"""Property-based fuzzing of the SQL front end.

Hypothesis generates random well-formed queries over the demo catalog;
parsing must succeed, the resulting spec must validate, and for
multi-relation queries the optimality guarantee must hold end to end.
Random *ill-formed* byte soup must raise ``SqlSyntaxError`` (or parse,
for the rare accidentally valid string) — never crash another way.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import OptimizationError
from repro.frontend import parse_query
from repro.frontend.sql import SqlSyntaxError
from repro.workloads import paper_workload


@pytest.fixture(scope="module")
def catalog():
    return paper_workload(3, seed=0).catalog  # R1..R4, attrs a/b/c


RELATIONS = ("R1", "R2", "R3", "R4")
CHAIN_JOINS = {
    ("R1", "R2"): "R1.b = R2.c",
    ("R2", "R3"): "R2.b = R3.c",
    ("R3", "R4"): "R3.b = R4.c",
}


@st.composite
def well_formed_queries(draw):
    count = draw(st.integers(1, 4))
    relations = list(RELATIONS[:count])
    predicates = [
        CHAIN_JOINS[(relations[i], relations[i + 1])]
        for i in range(count - 1)
    ]
    selected = draw(
        st.lists(st.sampled_from(relations), unique=True, max_size=count)
    )
    for index, relation in enumerate(selected):
        kind = draw(st.sampled_from(["param", "literal"]))
        op = draw(st.sampled_from(["<", "<=", ">", ">=", "="]))
        if kind == "param":
            predicates.append("%s.a %s :v_%s" % (relation, op, relation))
        else:
            value = draw(st.integers(0, 1000))
            predicates.append("%s.a %s %d" % (relation, op, value))
    sql = "SELECT * FROM " + ", ".join(relations)
    if predicates:
        sql += " WHERE " + " AND ".join(predicates)
    return sql, count, len(selected)


class TestWellFormedQueries:
    @settings(max_examples=40, deadline=None)
    @given(query=well_formed_queries())
    def test_parse_and_optimize(self, catalog, query):
        sql, relation_count, _selected = query
        spec = parse_query(sql, catalog)
        assert len(spec.relations) == relation_count
        from repro.optimizer import optimize_dynamic, optimize_static

        static = optimize_static(catalog, spec)
        dynamic = optimize_dynamic(catalog, spec)
        assert static.cost.is_point
        assert dynamic.node_count() >= static.node_count()

    @settings(max_examples=15, deadline=None)
    @given(query=well_formed_queries(), binding_seed=st.integers(0, 100))
    def test_guarantee_holds_for_fuzzed_queries(self, catalog, query,
                                                binding_seed):
        from repro.common.rng import make_rng
        from repro.cost.parameters import Bindings
        from repro.executor import resolve_dynamic_plan
        from repro.optimizer import optimize_dynamic, optimize_runtime
        from repro.scenarios import predicted_execution_seconds

        sql, _count, _selected = query
        spec = parse_query(sql, catalog)
        rng = make_rng(binding_seed, "sql-fuzz")
        bindings = Bindings()
        for name in spec.parameter_space.uncertain_names():
            bounds = spec.parameter_space.get(name).bounds
            bindings.bind(name, rng.uniform(bounds.lower, bounds.upper))
        dynamic = optimize_dynamic(catalog, spec)
        chosen, _ = resolve_dynamic_plan(
            dynamic.plan, catalog, spec.parameter_space, bindings
        )
        optimum = optimize_runtime(catalog, spec, bindings)
        assert predicted_execution_seconds(
            chosen, catalog, spec.parameter_space, bindings
        ) == pytest.approx(
            predicted_execution_seconds(
                optimum.plan, catalog, spec.parameter_space, bindings
            ),
            rel=1e-9,
        )


class TestIllFormedQueries:
    @settings(max_examples=80, deadline=None)
    @given(garbage=st.text(max_size=60))
    def test_garbage_never_crashes_unexpectedly(self, catalog, garbage):
        try:
            parse_query(garbage, catalog)
        except OptimizationError:
            pass  # SqlSyntaxError or a validation error: expected

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "SELECT",
            "SELECT * FROM",
            "SELECT * FROM R1 WHERE",
            "SELECT * FROM R1 WHERE R1.a",
            "SELECT * FROM R1 WHERE R1.a < ",
            "SELECT * FROM R1 GROUP BY R1.a",
            "INSERT INTO R1 VALUES (1)",
        ],
    )
    def test_specific_malformed_queries(self, catalog, bad):
        with pytest.raises(SqlSyntaxError):
            parse_query(bad, catalog)
