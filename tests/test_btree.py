"""The B+-tree: structure, search, range scans, and invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ExecutionError
from repro.storage import BTree, IOStatistics


def make_tree(fan_out=4):
    return BTree("a", IOStatistics(), fan_out=fan_out)


class TestBasics:
    def test_empty_tree(self):
        tree = make_tree()
        assert tree.entry_count == 0
        assert tree.height == 1
        assert tree.search(5) == []
        assert list(tree.range_scan()) == []

    def test_insert_and_search(self):
        tree = make_tree()
        tree.insert(5, (0, 0))
        assert tree.search(5) == [(0, 0)]
        assert tree.search(6) == []

    def test_duplicates_accumulate(self):
        tree = make_tree()
        tree.insert(5, (0, 0))
        tree.insert(5, (0, 1))
        assert sorted(tree.search(5)) == [(0, 0), (0, 1)]
        assert tree.entry_count == 2

    def test_small_fanout_rejected(self):
        with pytest.raises(ExecutionError):
            BTree("a", IOStatistics(), fan_out=2)


class TestSplitsAndHeight:
    def test_height_grows_with_inserts(self):
        tree = make_tree(fan_out=4)
        for i in range(100):
            tree.insert(i, (i, 0))
        assert tree.height >= 3
        tree.check_invariants()

    def test_reverse_order_inserts(self):
        tree = make_tree(fan_out=4)
        for i in reversed(range(50)):
            tree.insert(i, (i, 0))
        tree.check_invariants()
        assert tree.keys_in_order() == list(range(50))

    def test_leaf_count_tracks_entries(self):
        tree = make_tree(fan_out=4)
        for i in range(64):
            tree.insert(i, (i, 0))
        assert tree.leaf_count() >= 64 // 4


class TestRangeScan:
    def _loaded(self):
        tree = make_tree(fan_out=4)
        for i in range(20):
            tree.insert(i, (i, 0))
        return tree

    def test_full_scan_in_order(self):
        tree = self._loaded()
        keys = [key for key, _rid in tree.range_scan()]
        assert keys == list(range(20))

    def test_bounded_scan_inclusive(self):
        tree = self._loaded()
        keys = [key for key, _ in tree.range_scan(5, 10)]
        assert keys == [5, 6, 7, 8, 9, 10]

    def test_open_lower_bound(self):
        tree = self._loaded()
        keys = [key for key, _ in tree.range_scan(None, 3)]
        assert keys == [0, 1, 2, 3]

    def test_open_upper_bound(self):
        tree = self._loaded()
        keys = [key for key, _ in tree.range_scan(17, None)]
        assert keys == [17, 18, 19]

    def test_empty_range(self):
        tree = self._loaded()
        assert list(tree.range_scan(50, 60)) == []

    def test_range_with_duplicates(self):
        tree = make_tree()
        for i in range(10):
            tree.insert(i % 3, (i, 0))
        values = [key for key, _ in tree.range_scan(1, 1)]
        assert values == [1, 1, 1]


class TestIOAccounting:
    def test_search_charges_probe_and_descent(self):
        stats = IOStatistics()
        tree = BTree("a", stats, fan_out=4)
        for i in range(100):
            tree.insert(i, (i, 0))
        stats.reset()
        tree.search(42)
        assert stats.index_probes == 1
        assert stats.pages_read == tree.height

    def test_range_scan_charges_leaf_chain(self):
        stats = IOStatistics()
        tree = BTree("a", stats, fan_out=4)
        for i in range(40):
            tree.insert(i, (i, 0))
        stats.reset()
        list(tree.range_scan())
        # Descent plus one read per additional leaf.
        assert stats.pages_read >= tree.leaf_count()


@st.composite
def key_lists(draw):
    return draw(st.lists(st.integers(min_value=-1000, max_value=1000),
                         min_size=0, max_size=200))


class TestPropertyBased:
    @settings(max_examples=50, deadline=None)
    @given(key_lists())
    def test_invariants_after_random_inserts(self, keys):
        tree = make_tree(fan_out=4)
        for position, key in enumerate(keys):
            tree.insert(key, (position, 0))
        tree.check_invariants()

    @settings(max_examples=50, deadline=None)
    @given(key_lists())
    def test_scan_equals_sorted_input(self, keys):
        tree = make_tree(fan_out=5)
        for position, key in enumerate(keys):
            tree.insert(key, (position, 0))
        scanned = [key for key, _ in tree.range_scan()]
        assert scanned == sorted(keys)

    @settings(max_examples=50, deadline=None)
    @given(key_lists(), st.integers(-1000, 1000))
    def test_search_agrees_with_brute_force(self, keys, probe):
        tree = make_tree(fan_out=4)
        for position, key in enumerate(keys):
            tree.insert(key, (position, 0))
        expected = sorted(
            (position, 0) for position, key in enumerate(keys) if key == probe
        )
        assert sorted(tree.search(probe)) == expected

    @settings(max_examples=30, deadline=None)
    @given(key_lists(), st.integers(-1000, 1000), st.integers(-1000, 1000))
    def test_range_scan_agrees_with_brute_force(self, keys, a, b):
        low, high = min(a, b), max(a, b)
        tree = make_tree(fan_out=4)
        for position, key in enumerate(keys):
            tree.insert(key, (position, 0))
        expected = sorted(key for key in keys if low <= key <= high)
        scanned = [key for key, _ in tree.range_scan(low, high)]
        assert scanned == expected
