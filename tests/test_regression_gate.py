"""The benchmark regression gate's refusal and direction logic.

``benchmarks/check_regression.py`` is CI's last line of defence for
perf; these tests pin the behaviours a broken gate would silently
lose: malformed records fail with a *diagnosis* (file, record, missing
key) rather than a ``KeyError`` traceback, direction is inferred from
the unit, and a baseline metric that vanished from results is a hard
failure.
"""

import importlib.util
import json
import pathlib

import pytest

GATE_PATH = (
    pathlib.Path(__file__).parent.parent / "benchmarks" / "check_regression.py"
)

spec = importlib.util.spec_from_file_location("check_regression", GATE_PATH)
gate = importlib.util.module_from_spec(spec)
spec.loader.exec_module(gate)


def write_records(path, records):
    path.write_text(json.dumps(records), encoding="utf-8")


def record(name="bench", metric="p50", value=1.0, unit="s"):
    return {"name": name, "metric": metric, "value": value, "unit": unit}


class TestLoadRecords:
    def test_valid_records_key_by_name_and_metric(self, tmp_path):
        path = tmp_path / "r.json"
        write_records(path, [record(), record(metric="p95", value=2.0)])
        loaded = gate.load_records(path)
        assert set(loaded) == {("bench", "p50"), ("bench", "p95")}

    def test_missing_key_is_a_diagnosis_not_a_keyerror(self, tmp_path):
        path = tmp_path / "r.json"
        write_records(path, [{"name": "bench", "metric": "p50", "value": 1}])
        with pytest.raises(gate.MalformedRecordError) as excinfo:
            gate.load_records(path)
        message = str(excinfo.value)
        assert "r.json" in message
        assert "unit" in message
        assert "record 0" in message

    def test_non_numeric_value_is_refused(self, tmp_path):
        path = tmp_path / "r.json"
        write_records(path, [record(value="fast")])
        with pytest.raises(gate.MalformedRecordError) as excinfo:
            gate.load_records(path)
        assert "non-numeric" in str(excinfo.value)

    def test_bad_json_and_non_list_are_refused(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_text("{not json")
        with pytest.raises(gate.MalformedRecordError):
            gate.load_records(path)
        path.write_text(json.dumps({"name": "bench"}))
        with pytest.raises(gate.MalformedRecordError) as excinfo:
            gate.load_records(path)
        assert "list" in str(excinfo.value)


class TestCompare:
    def setup_dirs(self, tmp_path, baseline_records, result_records):
        baselines = tmp_path / "baselines"
        results = tmp_path / "results"
        baselines.mkdir()
        results.mkdir()
        write_records(baselines / "bench.json", baseline_records)
        if result_records is not None:
            write_records(results / "bench.json", result_records)
        return results, baselines

    def test_malformed_baseline_is_a_failure_not_a_crash(self, tmp_path):
        results, baselines = self.setup_dirs(
            tmp_path,
            [{"name": "bench", "metric": "p50", "value": 1}],
            [record()],
        )
        rows, failures = gate.compare(results, baselines, 0.25)
        assert rows == []
        assert len(failures) == 1
        assert "unit" in failures[0]

    def test_missing_baseline_metric_in_results_fails_clearly(self, tmp_path):
        results, baselines = self.setup_dirs(
            tmp_path,
            [record(), record(metric="p95", value=2.0)],
            [record()],
        )
        _rows, failures = gate.compare(results, baselines, 0.25)
        assert any("bench/p95" in f and "missing" in f for f in failures)

    def test_latency_regression_fails_and_speedup_gain_passes(self, tmp_path):
        results, baselines = self.setup_dirs(
            tmp_path,
            [record(), record(metric="speedup", value=4.0, unit="x")],
            [
                record(value=2.0),  # latency doubled: regression
                record(metric="speedup", value=8.0, unit="x"),  # improved
            ],
        )
        rows, failures = gate.compare(results, baselines, 0.25)
        statuses = {(name, metric): status
                    for name, metric, _u, _b, _c, _ch, status in rows}
        assert statuses[("bench", "p50")] == "regression"
        assert statuses[("bench", "speedup")] == "improvement"
        assert len(failures) == 1 and "bench/p50" in failures[0]

    def test_new_metric_passes_without_baseline_edit(self, tmp_path):
        results, baselines = self.setup_dirs(
            tmp_path,
            [record()],
            [record(), record(metric="p95", value=2.0)],
        )
        rows, failures = gate.compare(results, baselines, 0.25)
        assert failures == []
        assert any(status == "new" for *_rest, status in rows)
