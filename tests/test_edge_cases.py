"""Degenerate inputs: empty relations, single records, extreme
selectivities, and heavy duplicate values."""

import pytest

from repro.algebra.expressions import (
    Comparison,
    ComparisonOp,
    JoinPredicate,
    SelectionPredicate,
    UserVariable,
)
from repro.catalog import (
    Attribute,
    AttributeStatistics,
    Catalog,
    IndexInfo,
    RelationStatistics,
    Schema,
)
from repro.cost.parameters import Bindings
from repro.executor import execute_plan, resolve_dynamic_plan
from repro.optimizer import QuerySpec, optimize_dynamic, optimize_static
from repro.storage import Database


def tiny_catalog(card_r=0, card_s=4):
    catalog = Catalog()
    for name, cardinality in (("R", card_r), ("S", card_s)):
        schema = Schema(name, [Attribute("a"), Attribute("b")])
        stats = RelationStatistics(
            name,
            cardinality,
            [AttributeStatistics("a", max(cardinality, 1)),
             AttributeStatistics("b", 2)],
        )
        catalog.add_relation(schema, stats)
        catalog.add_index(IndexInfo(name, "a"))
        catalog.add_index(IndexInfo(name, "b"))
    return catalog


def selection(relation):
    return SelectionPredicate(
        Comparison("%s.a" % relation, ComparisonOp.LT, UserVariable("v")),
        selectivity_parameter="sel_%s" % relation,
    )


class TestEmptyRelation:
    def _setup(self):
        catalog = tiny_catalog(card_r=0, card_s=4)
        database = Database(catalog)
        database.load("R", [])
        database.load("S", [{"a": i, "b": i % 2} for i in range(4)])
        query = QuerySpec(
            ["R", "S"],
            {"R": selection("R")},
            [JoinPredicate("R.b", "S.b")],
            name="empty-join",
        )
        return catalog, database, query

    def test_optimizes_without_error(self):
        catalog, _, query = self._setup()
        static = optimize_static(catalog, query)
        dynamic = optimize_dynamic(catalog, query)
        assert static.cost.lower >= 0
        assert dynamic.cost.lower >= 0

    def test_executes_to_empty_result(self):
        catalog, database, query = self._setup()
        dynamic = optimize_dynamic(catalog, query)
        bindings = Bindings().bind("sel_R", 0.5).bind_variable("v", 1)
        result = execute_plan(
            dynamic.plan, database, bindings, query.parameter_space
        )
        assert result.row_count == 0

    def test_resolution_works_on_empty(self):
        catalog, _, query = self._setup()
        dynamic = optimize_dynamic(catalog, query)
        bindings = Bindings().bind("sel_R", 0.0).bind_variable("v", 0)
        chosen, report = resolve_dynamic_plan(
            dynamic.plan, catalog, query.parameter_space, bindings
        )
        assert chosen.choose_plan_count() == 0


class TestSingleRecord:
    def test_one_record_each_side(self):
        catalog = tiny_catalog(card_r=1, card_s=1)
        database = Database(catalog)
        database.load("R", [{"a": 0, "b": 1}])
        database.load("S", [{"a": 0, "b": 1}])
        query = QuerySpec(
            ["R", "S"], {}, [JoinPredicate("R.b", "S.b")], name="one-one"
        )
        dynamic = optimize_dynamic(catalog, query)
        result = execute_plan(
            dynamic.plan, database, Bindings(), query.parameter_space
        )
        assert result.row_count == 1


class TestExtremeSelectivities:
    @pytest.mark.parametrize("selectivity", [0.0, 1.0])
    def test_boundary_bindings(self, workload1, database1, selectivity):
        dynamic = optimize_dynamic(workload1.catalog, workload1.query)
        domain = workload1.catalog.domain_size("R1", "a")
        bindings = (
            Bindings()
            .bind("sel_R1", selectivity)
            .bind_variable("v_R1", selectivity * domain)
        )
        chosen, _ = resolve_dynamic_plan(
            dynamic.plan, workload1.catalog,
            workload1.query.parameter_space, bindings,
        )
        result = execute_plan(
            chosen, database1, bindings, workload1.query.parameter_space
        )
        cardinality = workload1.catalog.cardinality("R1")
        if selectivity == 0.0:
            assert result.row_count == 0
        else:
            # v = domain, a < domain holds for every record.
            assert result.row_count == cardinality

    def test_selectivity_zero_picks_index_scan(self, workload1):
        dynamic = optimize_dynamic(workload1.catalog, workload1.query)
        bindings = Bindings().bind("sel_R1", 0.0)
        chosen, _ = resolve_dynamic_plan(
            dynamic.plan, workload1.catalog,
            workload1.query.parameter_space, bindings,
        )
        assert chosen.operator_name() == "Filter-B-tree-Scan"


class TestHeavyDuplicates:
    def test_join_on_constant_attribute(self):
        # Every record shares the same join value: the join degenerates
        # to a cross product of the matching sides; all algorithms must
        # agree.
        catalog = tiny_catalog(card_r=6, card_s=5)
        database = Database(catalog)
        database.load("R", [{"a": i, "b": 1} for i in range(6)])
        database.load("S", [{"a": i, "b": 1} for i in range(5)])
        query = QuerySpec(
            ["R", "S"], {}, [JoinPredicate("R.b", "S.b")], name="dupes"
        )
        from repro.algebra.physical import (
            FileScan,
            HashJoin,
            MergeJoin,
            Sort,
        )

        predicate = query.join_predicates[0]
        hash_plan = HashJoin(FileScan("R"), FileScan("S"), predicate)
        merge_plan = MergeJoin(
            Sort(FileScan("R"), "R.b"),
            Sort(FileScan("S"), "S.b"),
            predicate,
        )
        for plan in (hash_plan, merge_plan):
            result = execute_plan(
                plan, database, Bindings(), query.parameter_space
            )
            assert result.row_count == 30

    def test_index_join_with_duplicates(self):
        catalog = tiny_catalog(card_r=3, card_s=5)
        database = Database(catalog)
        database.load("R", [{"a": i, "b": 0} for i in range(3)])
        database.load("S", [{"a": i, "b": 0} for i in range(5)])
        query = QuerySpec(
            ["R", "S"], {}, [JoinPredicate("R.b", "S.b")], name="dupes-idx"
        )
        from repro.algebra.physical import FileScan, IndexJoin

        plan = IndexJoin(
            FileScan("R"), "S", "b", query.join_predicates[0]
        )
        result = execute_plan(
            plan, database, Bindings(), query.parameter_space
        )
        assert result.row_count == 15
