"""Property tests for the interval cost arithmetic (Section 5).

Interval arithmetic is the foundation of the whole partial-order cost
model, so these tests state its algebraic contract as hypotheses over
random intervals rather than hand-picked examples:

* **containment** — for any members ``x in A`` and ``y in B``, the
  combined value lands inside the combined interval (`+`, `*`,
  ``hull``, ``envelope_min``).  IEEE-754 rounding is monotone, so
  containment holds exactly, with no tolerance;
* **comparison structure** — ``INCOMPARABLE`` is symmetric,
  ``LESS``/``GREATER`` are dual, overlap is equivalent to
  incomparability for non-identical-point pairs, and ``EQUAL`` arises
  only for identical point intervals;
* **degenerate collapse** — point intervals behave exactly like the
  scalars they wrap, so the interval optimizer degenerates to the
  classic one when nothing is uncertain (the paper's requirement that
  dynamic plans cost nothing extra for fully-bound queries).
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.intervals import Interval
from repro.common.ordering import PartialOrder

# Bounds keep products finite and avoid subnormal noise; the paper's
# quantities (cardinalities, selectivities, seconds) all fit well
# inside this range.
MAGNITUDE = 1e9

finite = st.floats(
    min_value=-MAGNITUDE,
    max_value=MAGNITUDE,
    allow_nan=False,
    allow_infinity=False,
)
nonneg = st.floats(
    min_value=0.0,
    max_value=MAGNITUDE,
    allow_nan=False,
    allow_infinity=False,
)
fractions = st.floats(min_value=0.0, max_value=1.0)


@st.composite
def intervals(draw, elements=finite):
    """A random interval (degenerate points included)."""
    a = draw(elements)
    b = draw(elements)
    return Interval(min(a, b), max(a, b))


@st.composite
def members(draw, elements=finite):
    """An interval plus a value inside it."""
    interval = draw(intervals(elements))
    fraction = draw(fractions)
    value = interval.lower + fraction * (interval.upper - interval.lower)
    # Rounding can land a hair outside; clamp back into the interval.
    value = min(max(value, interval.lower), interval.upper)
    return interval, value


# ----------------------------------------------------------------------
# Containment: combining members stays within combining intervals
# ----------------------------------------------------------------------


@given(members(), members())
def test_addition_containment(am, bm):
    a, x = am
    b, y = bm
    assert (a + b).contains(x + y)


@given(members(), members())
def test_multiplication_containment(am, bm):
    a, x = am
    b, y = bm
    assert (a * b).contains(x * y)


@given(st.lists(members(), min_size=1, max_size=6))
def test_hull_contains_every_member(pairs):
    hull = Interval.hull(interval for interval, _ in pairs)
    for interval, value in pairs:
        assert hull.contains(value)
        assert hull.contains(interval.lower)
        assert hull.contains(interval.upper)


@given(st.lists(members(), min_size=1, max_size=6))
def test_envelope_min_contains_minimum_member(pairs):
    """Choose-plan cost rule: min over members is in envelope_min."""
    envelope = Interval.envelope_min(interval for interval, _ in pairs)
    assert envelope.contains(min(value for _, value in pairs))


@given(st.lists(intervals(), min_size=1, max_size=6))
def test_envelope_min_within_hull(ivs):
    envelope = Interval.envelope_min(ivs)
    hull = Interval.hull(ivs)
    assert hull.lower <= envelope.lower
    assert envelope.upper <= hull.upper
    assert envelope.lower == hull.lower


@given(members(), intervals())
def test_subtract_lower_containment(am, b):
    """Branch-and-bound deduction: x - b.lower stays in A - b.lower."""
    a, x = am
    result = a.subtract_lower(b)
    assert result.contains(x - b.lower)
    # Width is preserved in real arithmetic; in floats a large shift
    # can absorb a narrow width, so tolerate rounding at the shifted
    # magnitude.
    tolerance = 1e-9 * max(1.0, abs(a.lower), abs(a.upper), abs(b.lower))
    assert math.isclose(result.width, a.width, abs_tol=tolerance)


@given(members(), st.floats(min_value=0.0, max_value=1e3))
def test_scale_containment(am, factor):
    a, x = am
    assert a.scale(factor).contains(x * factor)


@given(members(), intervals())
def test_clamp_containment(am, bounds):
    a, x = am
    lo, hi = bounds.lower, bounds.upper
    clamped = a.clamp(lo, hi)
    assert lo <= clamped.lower <= clamped.upper <= hi
    assert clamped.contains(min(max(x, lo), hi))


# ----------------------------------------------------------------------
# Comparison structure
# ----------------------------------------------------------------------


@given(intervals(), intervals())
def test_incomparability_is_symmetric(a, b):
    forward = a.compare(b)
    backward = b.compare(a)
    assert (forward == PartialOrder.INCOMPARABLE) == (
        backward == PartialOrder.INCOMPARABLE
    )


@given(intervals(), intervals())
def test_less_greater_duality(a, b):
    forward = a.compare(b)
    backward = b.compare(a)
    if forward == PartialOrder.LESS:
        assert backward == PartialOrder.GREATER
    if forward == PartialOrder.GREATER:
        assert backward == PartialOrder.LESS
    if forward == PartialOrder.EQUAL:
        assert backward == PartialOrder.EQUAL


@given(intervals(), intervals())
def test_overlap_means_incomparable(a, b):
    """The paper's rule: only disjoint intervals are ordered."""
    result = a.compare(b)
    identical_points = a.is_point and b.is_point and a.lower == b.lower
    if identical_points:
        assert result == PartialOrder.EQUAL
    elif a.overlaps(b):
        assert result == PartialOrder.INCOMPARABLE
    else:
        assert result in (PartialOrder.LESS, PartialOrder.GREATER)


@given(intervals(), intervals())
def test_equal_only_for_identical_points(a, b):
    if a.compare(b) == PartialOrder.EQUAL:
        assert a.is_point and b.is_point and a.lower == b.lower


@given(intervals(), intervals())
def test_dominates_requires_disjoint_or_equal(a, b):
    if a.dominates(b):
        assert a.upper < b.lower or (
            a.is_point and b.is_point and a.lower == b.lower
        )


# ----------------------------------------------------------------------
# Degenerate intervals collapse to scalar arithmetic
# ----------------------------------------------------------------------


@given(finite, finite)
def test_point_addition_collapses(x, y):
    result = Interval.point(x) + Interval.point(y)
    assert result.is_point
    assert result.lower == x + y


@given(finite, finite)
def test_point_multiplication_collapses(x, y):
    result = Interval.point(x) * Interval.point(y)
    assert result.is_point
    assert result.lower == x * y


@given(finite, finite)
def test_point_comparison_collapses(x, y):
    result = Interval.point(x).compare(Interval.point(y))
    if x < y:
        assert result == PartialOrder.LESS
    elif x > y:
        assert result == PartialOrder.GREATER
    else:
        assert result == PartialOrder.EQUAL


@given(finite)
@settings(max_examples=50)
def test_point_properties(x):
    point = Interval.point(x)
    assert point.is_point
    assert point.width == 0.0
    assert point.midpoint == x
    assert point.contains(x)
    assert Interval.hull([point]) == point
    assert Interval.envelope_min([point]) == point


@given(finite, nonneg)
def test_scalar_coercion_matches_point(x, y):
    """Bare numbers coerce to points in mixed arithmetic."""
    interval = Interval.point(x)
    assert interval + y == interval + Interval.point(y)
    assert interval * y == interval * Interval.point(y)
    assert interval.compare(y) == interval.compare(Interval.point(y))
