"""Durable plan-cache snapshots: round trip, refusal, warm restore.

The contract under test is the module docstring of
:mod:`repro.service.durability`: a snapshot is versioned, checksummed,
pickle-free JSON written atomically; a restore rebuilds cache entries
— plan, parameter space, observed ranges, counters — and re-compiles
generated code rather than loading it; and a restored tier serves its
hot set as cache *hits* without paying the optimizer again, which the
tests prove at the counter level by wrapping the optimizer entry
point and requiring zero calls after restore.
"""

import json
import os

import pytest

from repro.__main__ import main
from repro.catalog.synthetic import populate_database
from repro.common.errors import (
    SnapshotCorruptError,
    SnapshotError,
    SnapshotVersionError,
)
from repro.optimizer.optimizer import optimize_dynamic
from repro.service import (
    DurabilityConfig,
    QueryService,
    ShardedQueryService,
    build_snapshot,
    read_snapshot,
    restore_gateway,
    restore_service,
    write_snapshot,
)
from repro.service.durability import SNAPSHOT_FORMAT, SNAPSHOT_VERSION
from repro.storage import Database
from repro.workloads.traffic import HeavyTrafficSpec, to_service_requests


def traffic(requests=30, shapes=5, seed=0):
    spec = HeavyTrafficSpec(
        requests=requests, query_shapes=shapes, tenants=2, seed=seed
    )
    return to_service_requests(spec)


class CountingOptimizer:
    """Wraps the optimizer so tests can assert it was never consulted."""

    def __init__(self):
        self.calls = 0

    def __call__(self, catalog, query, **kwargs):
        self.calls += 1
        return optimize_dynamic(catalog, query, **kwargs)


def make_gateway(catalog, shards=3, durability=None, optimizer=None, seed=7):
    database = Database(catalog)
    populate_database(database, seed=seed)
    return ShardedQueryService(
        database,
        shards=shards,
        capacity=16,
        durability=durability,
        optimize=optimizer or optimize_dynamic,
    )


class TestSnapshotDocument:
    """The snapshot file format and its refusal modes."""

    def test_round_trip_preserves_document(self, tmp_path):
        catalog, _queries, requests = traffic()
        gateway = make_gateway(catalog)
        try:
            gateway.run_batch(requests)
            snapshot = build_snapshot(gateway)
        finally:
            gateway.shutdown()
        assert snapshot["format"] == SNAPSHOT_FORMAT
        assert snapshot["version"] == SNAPSHOT_VERSION
        assert snapshot["entries"], "traffic must compile at least one plan"
        path = tmp_path / "cache.json"
        write_snapshot(path, snapshot)
        assert read_snapshot(path) == snapshot

    def test_write_is_atomic_and_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "cache.json"
        first = {
            "format": SNAPSHOT_FORMAT,
            "version": SNAPSHOT_VERSION,
            "entries": [],
            "checksum": read_checksum_of([]),
        }
        write_snapshot(path, first)
        write_snapshot(path, first)  # overwrite in place
        assert read_snapshot(path) == first
        leftovers = [
            name for name in os.listdir(tmp_path) if name != "cache.json"
        ]
        assert leftovers == []

    def test_missing_file_is_typed_unreadable(self, tmp_path):
        with pytest.raises(SnapshotError) as excinfo:
            read_snapshot(tmp_path / "absent.json")
        assert excinfo.value.reason == "unreadable"

    def test_garbage_bytes_are_bad_json(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{not json")
        with pytest.raises(SnapshotCorruptError) as excinfo:
            read_snapshot(path)
        assert excinfo.value.reason == "bad_json"

    def test_tampered_entries_fail_the_checksum(self, tmp_path):
        catalog, _queries, requests = traffic()
        gateway = make_gateway(catalog)
        try:
            gateway.run_batch(requests)
            snapshot = build_snapshot(gateway)
        finally:
            gateway.shutdown()
        path = tmp_path / "cache.json"
        write_snapshot(path, snapshot)
        document = json.loads(path.read_text())
        document["entries"][0]["hits"] += 1
        path.write_text(json.dumps(document))
        with pytest.raises(SnapshotCorruptError) as excinfo:
            read_snapshot(path)
        assert excinfo.value.reason == "checksum_mismatch"

    def test_future_version_is_refused_not_guessed(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(
            json.dumps(
                {
                    "format": SNAPSHOT_FORMAT,
                    "version": SNAPSHOT_VERSION + 1,
                    "entries": [],
                    "checksum": "",
                }
            )
        )
        with pytest.raises(SnapshotVersionError) as excinfo:
            read_snapshot(path)
        assert excinfo.value.reason == "version_mismatch"
        assert excinfo.value.found == (SNAPSHOT_FORMAT, SNAPSHOT_VERSION + 1)
        assert excinfo.value.supported == (SNAPSHOT_FORMAT, SNAPSHOT_VERSION)

    def test_no_plan_payload_is_executable_code(self, tmp_path):
        """Snapshots stay pickle-free: plans are JSON documents."""
        catalog, _queries, requests = traffic()
        gateway = make_gateway(catalog)
        try:
            gateway.run_batch(requests)
            snapshot = build_snapshot(gateway)
        finally:
            gateway.shutdown()
        for entry in snapshot["entries"]:
            payload = json.loads(entry["plan"])  # must parse as JSON
            assert isinstance(payload, dict)
            assert "decision" not in entry
            assert "pipelines" not in entry


def read_checksum_of(entries):
    from repro.service.durability import _checksum

    return _checksum(entries)


class TestWarmRestore:
    """A restored tier serves its hot set without re-optimizing."""

    def test_gateway_restore_serves_hits_with_zero_optimizer_calls(
        self, tmp_path
    ):
        catalog, _queries, requests = traffic()
        path = tmp_path / "cache.json"
        gateway = make_gateway(catalog, durability=DurabilityConfig(path))
        try:
            results = gateway.run_batch(requests)
            assert all(r.execution is not None for r in results)
        finally:
            gateway.shutdown()  # writes the shutdown snapshot

        optimizer = CountingOptimizer()
        warmed = make_gateway(
            catalog, durability=DurabilityConfig(path), optimizer=optimizer
        )
        try:
            stats = warmed.restore_stats
            assert stats is not None and stats.restored > 0
            assert stats.errors == []
            replay = warmed.run_batch(requests)
        finally:
            warmed.shutdown()
        assert optimizer.calls == 0
        assert all(result.cache_hit for result in replay)
        total = warmed.stats().total
        assert total.cache["hits"] == len(requests)
        assert total.optimize_count == 0

    def test_restored_rows_match_cold_rows(self, tmp_path):
        catalog, _queries, requests = traffic()
        path = tmp_path / "cache.json"
        gateway = make_gateway(catalog, durability=DurabilityConfig(path))
        try:
            cold = [
                sorted(
                    sorted(record.as_dict().items())
                    for record in result.execution.records
                )
                for result in gateway.run_batch(requests)
            ]
        finally:
            gateway.shutdown()
        warmed = make_gateway(catalog, durability=DurabilityConfig(path))
        try:
            warm = [
                sorted(
                    sorted(record.as_dict().items())
                    for record in result.execution.records
                )
                for result in warmed.run_batch(requests)
            ]
        finally:
            warmed.shutdown()
        assert warm == cold

    def test_restore_survives_shard_count_change(self, tmp_path):
        catalog, _queries, requests = traffic()
        path = tmp_path / "cache.json"
        gateway = make_gateway(
            catalog, shards=3, durability=DurabilityConfig(path)
        )
        try:
            gateway.run_batch(requests)
        finally:
            gateway.shutdown()
        optimizer = CountingOptimizer()
        resharded = make_gateway(
            catalog,
            shards=2,
            durability=DurabilityConfig(path),
            optimizer=optimizer,
        )
        try:
            stats = resharded.restore_stats
            assert stats.restored > 0 and stats.errors == []
            replay = resharded.run_batch(requests)
        finally:
            resharded.shutdown()
        assert optimizer.calls == 0
        assert all(result.cache_hit for result in replay)

    def test_restore_never_clobbers_existing_entries(self, tmp_path):
        catalog, _queries, requests = traffic()
        gateway = make_gateway(catalog)
        try:
            gateway.run_batch(requests)
            snapshot = build_snapshot(gateway)
            again = restore_gateway(gateway, snapshot)
        finally:
            gateway.shutdown()
        assert again.restored == 0
        assert again.skipped == len(snapshot["entries"])

    def test_single_service_round_trip(self, tmp_path):
        catalog, _queries, requests = traffic()
        database = Database(catalog)
        populate_database(database, seed=7)
        with QueryService(database, capacity=16) as service:
            service.run_batch(requests)
            snapshot = build_snapshot(service)
        database2 = Database(catalog)
        populate_database(database2, seed=7)
        optimizer = CountingOptimizer()
        with QueryService(
            database2, capacity=16, optimize=optimizer
        ) as fresh:
            stats = restore_service(fresh, snapshot)
            assert stats.restored == len(snapshot["entries"])
            results = fresh.run_batch(requests)
        assert optimizer.calls == 0
        assert all(result.cache_hit for result in results)

    def test_corrupt_snapshot_degrades_to_cold_start(self, tmp_path):
        catalog, _queries, requests = traffic()
        path = tmp_path / "cache.json"
        path.write_text("{definitely not a snapshot")
        gateway = make_gateway(catalog, durability=DurabilityConfig(path))
        try:
            assert gateway.restore_stats is None
            assert gateway.snapshot_counts()["failures"] == 1
            results = gateway.run_batch(requests)  # still serves
        finally:
            gateway.shutdown()
        assert len(results) == len(requests)

    def test_bad_entry_does_not_abort_the_rest(self, tmp_path):
        catalog, _queries, requests = traffic()
        gateway = make_gateway(catalog)
        try:
            gateway.run_batch(requests)
            snapshot = build_snapshot(gateway)
        finally:
            gateway.shutdown()
        snapshot["entries"][0] = {"query": {"name": "broken"}}
        fresh = make_gateway(catalog)
        try:
            stats = restore_gateway(fresh, snapshot)
        finally:
            fresh.shutdown()
        assert stats.restored == len(snapshot["entries"]) - 1
        assert len(stats.errors) == 1
        assert stats.errors[0][0] == "broken"


class TestSnapshotSchedule:
    """Periodic (count-based) and shutdown snapshotting."""

    def test_periodic_snapshots_are_count_based(self, tmp_path):
        catalog, _queries, requests = traffic(requests=30)
        path = tmp_path / "cache.json"
        config = DurabilityConfig(path, snapshot_every=10)
        gateway = make_gateway(catalog, durability=config)
        try:
            for request in requests:
                gateway.run(
                    request.query,
                    request.bindings,
                    tag=request.tag,
                    tenant=request.tenant,
                )
            counts = gateway.snapshot_counts()
            assert counts["written"] == 3  # at 10, 20, 30 completions
            assert counts["failures"] == 0
        finally:
            gateway.shutdown()
        assert gateway.snapshot_counts()["written"] == 4  # + shutdown

    def test_shutdown_snapshot_can_be_disabled(self, tmp_path):
        catalog, _queries, requests = traffic(requests=10)
        path = tmp_path / "cache.json"
        config = DurabilityConfig(path, snapshot_on_shutdown=False)
        gateway = make_gateway(catalog, durability=config)
        try:
            gateway.run_batch(requests)
        finally:
            gateway.shutdown()
        assert gateway.snapshot_counts()["written"] == 0
        assert not path.exists()

    def test_bad_snapshot_every_is_typed(self, tmp_path):
        with pytest.raises(SnapshotError) as excinfo:
            DurabilityConfig(tmp_path / "cache.json", snapshot_every=0)
        assert excinfo.value.reason == "bad_config"

    def test_coerce_accepts_paths_and_none(self, tmp_path):
        assert DurabilityConfig.coerce(None) is None
        config = DurabilityConfig.coerce(str(tmp_path / "cache.json"))
        assert isinstance(config, DurabilityConfig)
        assert DurabilityConfig.coerce(config) is config


class TestServeBatchSnapshotCLI:
    """The serve-batch --snapshot quickstart path."""

    def test_cold_then_warm_replay(self, tmp_path, capsys):
        path = str(tmp_path / "snap.json")
        args = [
            "serve-batch",
            "--invocations",
            "24",
            "--shards",
            "3",
            "--snapshot",
            path,
        ]
        assert main(args) == 0
        cold_out = capsys.readouterr().out
        assert "cold start" in cold_out
        assert "snapshot written to %s" % path in cold_out
        assert main(args) == 0
        warm_out = capsys.readouterr().out
        assert "restored" in warm_out
        assert "100.0% hit rate" in warm_out

    def test_corrupt_snapshot_is_a_clear_cli_error(self, tmp_path, capsys):
        path = tmp_path / "snap.json"
        path.write_text("{broken")
        code = main(
            ["serve-batch", "--invocations", "8", "--snapshot", str(path)]
        )
        out = capsys.readouterr().out
        assert code == 2
        assert "snapshot" in out
