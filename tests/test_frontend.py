"""The SQL front end: tokenizer, parser, binder, selectivity estimates."""

import pytest

from repro.algebra.expressions import ComparisonOp
from repro.frontend import parse_query
from repro.frontend.sql import SqlSyntaxError, tokenize
from repro.optimizer import optimize_dynamic, optimize_static


@pytest.fixture(scope="module")
def catalog(workload2):
    return workload2.catalog


class TestTokenizer:
    def test_basic_tokens(self):
        tokens = tokenize("SELECT * FROM R1 WHERE R1.a < :v")
        kinds = [token.kind for token in tokens]
        assert kinds == [
            "keyword", "punct", "keyword", "name", "keyword",
            "name", "punct", "name", "op", "param", "eof",
        ]

    def test_keywords_case_insensitive(self):
        tokens = tokenize("select * from R1")
        assert tokens[0].kind == "keyword" and tokens[0].value == "SELECT"

    def test_numbers(self):
        tokens = tokenize("12 3.5")
        assert [token.value for token in tokens[:-1]] == ["12", "3.5"]

    def test_two_character_operators(self):
        tokens = tokenize("<= >= <>")
        assert [token.value for token in tokens[:-1]] == ["<=", ">=", "<>"]

    def test_unknown_character_rejected(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT ! FROM R1")


class TestParserErrors:
    def test_missing_from(self, catalog):
        with pytest.raises(SqlSyntaxError):
            parse_query("SELECT * R1", catalog)

    def test_unqualified_select_list_rejected(self, catalog):
        with pytest.raises(SqlSyntaxError):
            parse_query("SELECT a FROM R1", catalog)

    def test_select_list_with_unknown_attribute_rejected(self, catalog):
        with pytest.raises(SqlSyntaxError):
            parse_query("SELECT R1.zzz FROM R1", catalog)

    def test_unknown_relation(self, catalog):
        with pytest.raises(SqlSyntaxError):
            parse_query("SELECT * FROM ZZZ", catalog)

    def test_unknown_attribute(self, catalog):
        with pytest.raises(SqlSyntaxError):
            parse_query("SELECT * FROM R1 WHERE R1.zzz < 5", catalog)

    def test_attribute_outside_from(self, catalog):
        with pytest.raises(SqlSyntaxError):
            parse_query(
                "SELECT * FROM R1 WHERE R2.a < 5", catalog
            )

    def test_non_equi_join_rejected(self, catalog):
        with pytest.raises(SqlSyntaxError):
            parse_query(
                "SELECT * FROM R1, R2 WHERE R1.b < R2.c", catalog
            )

    def test_literal_vs_literal_rejected(self, catalog):
        with pytest.raises(SqlSyntaxError):
            parse_query("SELECT * FROM R1 WHERE 1 = 1", catalog)

    def test_duplicate_relation_rejected(self, catalog):
        with pytest.raises(SqlSyntaxError):
            parse_query("SELECT * FROM R1, R1", catalog)

    def test_two_selections_on_one_relation_rejected(self, catalog):
        with pytest.raises(SqlSyntaxError):
            parse_query(
                "SELECT * FROM R1 WHERE R1.a < 5 AND R1.b > 2", catalog
            )

    def test_trailing_garbage_rejected(self, catalog):
        with pytest.raises(SqlSyntaxError):
            parse_query("SELECT * FROM R1 LIMIT 5", catalog)


class TestBinding:
    def test_host_variable_predicate_is_uncertain(self, catalog):
        spec = parse_query(
            "SELECT * FROM R1 WHERE R1.a < :v", catalog
        )
        predicate = spec.selection_for("R1")
        assert predicate.is_uncertain
        assert predicate.selectivity_parameter == "sel_R1"
        assert spec.uncertain_variable_count() == 1

    def test_join_and_selections(self, catalog):
        spec = parse_query(
            "SELECT * FROM R1, R2 "
            "WHERE R1.a < :v1 AND R1.b = R2.c AND R2.a < :v2",
            catalog,
        )
        assert set(spec.relations) == {"R1", "R2"}
        assert len(spec.join_predicates) == 1
        assert spec.uncertain_variable_count() == 2

    def test_literal_predicate_is_known(self, catalog):
        spec = parse_query(
            "SELECT * FROM R1 WHERE R1.a = 5", catalog
        )
        predicate = spec.selection_for("R1")
        assert not predicate.is_uncertain
        domain = catalog.domain_size("R1", "a")
        assert predicate.known_selectivity == pytest.approx(1.0 / domain)

    def test_range_literal_selectivity(self, catalog):
        domain = catalog.domain_size("R1", "a")
        half = domain // 2
        spec = parse_query(
            "SELECT * FROM R1 WHERE R1.a < %d" % half, catalog
        )
        selectivity = spec.selection_for("R1").known_selectivity
        assert selectivity == pytest.approx(0.5, abs=0.05)

    def test_flipped_operand_order(self, catalog):
        spec = parse_query(
            "SELECT * FROM R1 WHERE 10 > R1.a", catalog
        )
        predicate = spec.selection_for("R1")
        assert predicate.comparison.op is ComparisonOp.LT

    def test_memory_uncertainty_flag(self, catalog):
        spec = parse_query(
            "SELECT * FROM R1 WHERE R1.a < :v",
            catalog,
            memory_uncertain=True,
        )
        assert spec.parameter_space.get("memory_pages").uncertain


class TestEndToEnd:
    def test_sql_query_optimizes_like_builtin_workload(self, workload2):
        sql = (
            "SELECT * FROM R1, R2 "
            "WHERE R1.a < :v_R1 AND R2.a < :v_R2 AND R1.b = R2.c"
        )
        spec = parse_query(sql, workload2.catalog)
        from_sql = optimize_dynamic(workload2.catalog, spec)
        builtin = optimize_dynamic(workload2.catalog, workload2.query)
        assert from_sql.plan.signature() == builtin.plan.signature()

    def test_sql_query_executes(self, workload2, database2):
        from repro.cost.parameters import Bindings
        from repro.executor import execute_plan

        spec = parse_query(
            "SELECT * FROM R1, R2 "
            "WHERE R1.a < :v_R1 AND R1.b = R2.c",
            workload2.catalog,
        )
        result = optimize_static(workload2.catalog, spec)
        domain = workload2.catalog.domain_size("R1", "a")
        bindings = Bindings().bind("sel_R1", 0.3).bind_variable(
            "v_R1", 0.3 * domain
        )
        executed = execute_plan(
            result.plan, database2, bindings, spec.parameter_space
        )
        assert executed.row_count > 0

    def test_literal_only_query_is_fully_static(self, catalog):
        spec = parse_query(
            "SELECT * FROM R1, R2 WHERE R1.a < 50 AND R1.b = R2.c",
            catalog,
        )
        assert spec.uncertain_variable_count() == 0
        dynamic = optimize_dynamic(catalog, spec)
        static = optimize_static(catalog, spec)
        # No uncertainty: the dynamic plan's cost interval is a point
        # matching the static optimum (up to kept equal-cost ties).
        assert dynamic.cost.lower == pytest.approx(
            static.cost.lower, rel=1e-9
        )
