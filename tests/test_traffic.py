"""The heavy-traffic generator: determinism, skew, bursts, and specs.

The generator's contract mirrors the chaos harness's: a
:class:`~repro.workloads.traffic.HeavyTrafficSpec` (seed included)
fully determines the request stream, byte for byte, and each aspect
of the stream — shape popularity, tenancy, arrivals, bindings — draws
from its own derived RNG stream so changing one cannot reshuffle
another.
"""

import pytest

from repro.common.errors import OptimizationError
from repro.optimizer.query import canonical_signature, signature_digest
from repro.workloads.traffic import (
    HeavyTrafficSpec,
    build_traffic_queries,
    generate_traffic,
    request_stream_json,
    to_service_requests,
    zipf_weights,
)


class TestDeterminism:
    def test_same_seed_byte_identical(self):
        spec = HeavyTrafficSpec(requests=500, seed=23)
        first = request_stream_json(generate_traffic(spec))
        second = request_stream_json(generate_traffic(spec))
        assert first == second

    def test_different_seed_differs(self):
        spec = HeavyTrafficSpec(requests=500, seed=23)
        assert request_stream_json(generate_traffic(spec)) != (
            request_stream_json(generate_traffic(spec.replace(seed=24)))
        )

    def test_streams_are_independent_per_aspect(self):
        # Changing the tenant count must not reshuffle which shapes
        # are requested or when — only the tenant labels.
        base = HeavyTrafficSpec(requests=300, tenants=2, seed=7)
        more_tenants = base.replace(tenants=6)
        for ours, theirs in zip(
            generate_traffic(base), generate_traffic(more_tenants)
        ):
            assert ours.shape == theirs.shape
            assert ours.arrival_seconds == theirs.arrival_seconds
            assert ours.selectivity == theirs.selectivity


class TestStreamShape:
    def test_fields_are_well_formed(self):
        spec = HeavyTrafficSpec(requests=400, query_shapes=10, tenants=3,
                                seed=1)
        stream = generate_traffic(spec)
        assert len(stream) == 400
        assert [request.index for request in stream] == list(range(400))
        last_arrival = 0.0
        tenants = {"tenant-%d" % rank for rank in range(3)}
        for request in stream:
            assert 0 <= request.shape < 10
            assert request.tenant in tenants
            assert 0.0 <= request.selectivity < 1.0
            # Open-loop arrivals: the clock only moves forward.
            assert request.arrival_seconds >= last_arrival
            last_arrival = request.arrival_seconds

    def test_zipf_weights_decrease_with_rank(self):
        weights = zipf_weights(10, 1.1)
        assert weights == sorted(weights, reverse=True)
        assert weights[0] == 1.0
        assert weights[1] == pytest.approx(1.0 / 2**1.1)

    def test_popularity_is_zipf_skewed(self):
        spec = HeavyTrafficSpec(requests=2000, query_shapes=20, zipf_s=1.1,
                                seed=0)
        counts = [0] * spec.query_shapes
        for request in generate_traffic(spec):
            counts[request.shape] += 1
        # Rank 0 dominates: more requests than any tail shape and
        # several times the uniform share.
        assert counts[0] == max(counts)
        assert counts[0] > 3 * (spec.requests // spec.query_shapes)
        assert counts[0] > 10 * counts[-1]

    def test_burst_windows_arrive_faster(self):
        spec = HeavyTrafficSpec(
            requests=2000,
            arrival_rate=1000.0,
            burst_factor=8.0,
            burst_length=50,
            burst_period=2,
            seed=3,
        )
        stream = generate_traffic(spec)
        gaps = {True: [], False: []}
        previous = 0.0
        for request in stream:
            window = request.index // spec.burst_length
            in_burst = window % spec.burst_period == 0
            gaps[in_burst].append(request.arrival_seconds - previous)
            previous = request.arrival_seconds
        burst_mean = sum(gaps[True]) / len(gaps[True])
        calm_mean = sum(gaps[False]) / len(gaps[False])
        # 8x the rate should cut the mean interarrival well below the
        # calm windows' (huge margin: 1000 samples per side).
        assert burst_mean < calm_mean / 3.0


class TestSpec:
    def test_rejects_unknown_keys(self):
        with pytest.raises(OptimizationError):
            HeavyTrafficSpec.from_dict({"requests": 10, "bogus": 1})
        with pytest.raises(OptimizationError):
            HeavyTrafficSpec().replace(bogus=1)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"requests": -1},
            {"query_shapes": 0},
            {"tenants": 0},
            {"arrival_rate": 0.0},
            {"burst_factor": 0.5},
            {"burst_length": 0},
            {"burst_period": 0},
            {"relations": 0},
        ],
    )
    def test_rejects_bad_values(self, overrides):
        with pytest.raises(OptimizationError):
            HeavyTrafficSpec(**overrides)

    def test_dict_roundtrip(self):
        spec = HeavyTrafficSpec(requests=50, query_shapes=5, seed=11)
        again = HeavyTrafficSpec.from_dict(spec.to_dict())
        assert again.to_dict() == spec.to_dict()
        assert spec.replace(seed=12).to_dict()["seed"] == 12
        # replace() leaves the original untouched.
        assert spec.seed == 11


class TestMaterialization:
    def test_shapes_have_distinct_signatures(self):
        spec = HeavyTrafficSpec(requests=0, query_shapes=15)
        _, queries = build_traffic_queries(spec)
        digests = {
            signature_digest(canonical_signature(query)) for query in queries
        }
        assert len(digests) == 15
        assert [query.name for query in queries] == [
            "traffic-shape%03d" % shape for shape in range(15)
        ]

    def test_single_shape_mix_is_valid(self):
        _, queries = build_traffic_queries(
            HeavyTrafficSpec(requests=0, query_shapes=1)
        )
        assert len(queries) == 1

    def test_service_requests_align_with_stream(self):
        spec = HeavyTrafficSpec(requests=60, query_shapes=6, tenants=3,
                                seed=4)
        traffic = generate_traffic(spec)
        _, queries, requests = to_service_requests(spec, traffic=traffic)
        assert len(requests) == len(traffic)
        for record, request in zip(traffic, requests):
            assert request.query is queries[record.shape]
            assert request.tenant == record.tenant
            assert request.tag == "shape%d#%d" % (record.shape, record.index)
            # The selectivity draw is bound onto the request's
            # uncertain predicates.
            predicate = request.query.selection_for(
                request.query.relations[0]
            )
            assert request.bindings.parameter(
                predicate.selectivity_parameter
            ) == pytest.approx(record.selectivity)
