"""Logical expressions, physical plan DAGs, and the plan printer."""

import pytest

from repro.algebra import (
    BTreeScan,
    ChoosePlan,
    Comparison,
    ComparisonOp,
    FileScan,
    Filter,
    FilterBTreeScan,
    GetSet,
    HashJoin,
    IndexJoin,
    Join,
    JoinPredicate,
    MergeJoin,
    Select,
    SelectionPredicate,
    Sort,
    UserVariable,
    count_plan_nodes,
    plan_to_text,
)
from repro.common.errors import OptimizationError, PlanError


def selection(rel="R"):
    return SelectionPredicate(
        Comparison("%s.a" % rel, ComparisonOp.LT, UserVariable("v")),
        selectivity_parameter="sel_%s" % rel,
    )


class TestLogicalAlgebra:
    def test_getset(self):
        expression = GetSet("R")
        assert expression.relations() == frozenset({"R"})
        assert expression.children() == ()

    def test_select_collects_uncertain_parameters(self):
        expression = Select(GetSet("R"), selection())
        assert expression.uncertain_parameters() == ["sel_R"]
        assert expression.relations() == frozenset({"R"})

    def test_join_relations_union(self):
        join = Join(
            Select(GetSet("R"), selection("R")),
            GetSet("S"),
            JoinPredicate("R.b", "S.c"),
        )
        assert join.relations() == frozenset({"R", "S"})
        assert join.uncertain_parameters() == ["sel_R"]

    def test_join_without_predicate_rejected(self):
        with pytest.raises(OptimizationError):
            Join(GetSet("R"), GetSet("S"), [])

    def test_structural_equality(self):
        a = Select(GetSet("R"), selection())
        b = Select(GetSet("R"), selection())
        assert a == b and hash(a) == hash(b)

    def test_join_equality_ignores_predicate_order(self):
        p1 = JoinPredicate("R.b", "S.c")
        p2 = JoinPredicate("R.a", "S.a")
        a = Join(GetSet("R"), GetSet("S"), [p1, p2])
        b = Join(GetSet("R"), GetSet("S"), [p2, p1])
        assert a == b

    def test_walk(self):
        join = Join(GetSet("R"), GetSet("S"), JoinPredicate("R.b", "S.c"))
        kinds = [type(node).__name__ for node in join.walk()]
        assert kinds == ["Join", "GetSet", "GetSet"]


class TestPhysicalPlanDag:
    def _shared_dag(self):
        scan = FileScan("R")
        filt = Filter(scan, selection())
        left = Sort(filt, "R.b")
        right = Sort(filt, "R.a")
        return ChoosePlan([left, right]), scan, filt

    def test_node_count_counts_shared_once(self):
        plan, _, _ = self._shared_dag()
        # choose + 2 sorts + filter + scan = 5 distinct nodes
        assert plan.node_count() == 5
        assert count_plan_nodes(plan) == 5

    def test_tree_node_count_expands_sharing(self):
        plan, _, _ = self._shared_dag()
        # choose + 2 * (sort + filter + scan) = 7 when expanded
        assert plan.tree_node_count() == 7

    def test_choose_plan_count(self):
        plan, _, _ = self._shared_dag()
        assert plan.choose_plan_count() == 1
        assert FileScan("R").choose_plan_count() == 0

    def test_choose_plan_needs_two_alternatives(self):
        with pytest.raises(PlanError):
            ChoosePlan([FileScan("R")])

    def test_walk_unique_yields_each_node_once(self):
        plan, scan, filt = self._shared_dag()
        nodes = list(plan.walk_unique())
        assert len(nodes) == len({id(node) for node in nodes}) == 5
        assert scan in nodes and filt in nodes

    def test_signature_stable_and_structural(self):
        a = Filter(FileScan("R"), selection())
        b = Filter(FileScan("R"), selection())
        assert a.signature() == b.signature()
        c = Filter(FileScan("S"), selection())
        assert a.signature() != c.signature()

    def test_signature_distinguishes_operators(self):
        assert FileScan("R").signature() != BTreeScan("R", "a").signature()

    def test_join_requires_predicate(self):
        with pytest.raises(PlanError):
            HashJoin(FileScan("R"), FileScan("S"), [])
        with pytest.raises(PlanError):
            IndexJoin(FileScan("R"), "S", "c", [])

    def test_hash_join_build_probe_aliases(self):
        join = HashJoin(FileScan("R"), FileScan("S"), JoinPredicate("R.b", "S.c"))
        assert join.build is join.left
        assert join.probe is join.right

    def test_operator_names_match_table1(self):
        predicate = JoinPredicate("R.b", "S.c")
        assert FileScan("R").operator_name() == "File-Scan"
        assert BTreeScan("R", "a").operator_name() == "B-tree-Scan"
        assert Filter(FileScan("R"), selection()).operator_name() == "Filter"
        assert (
            FilterBTreeScan("R", "a", selection()).operator_name()
            == "Filter-B-tree-Scan"
        )
        assert (
            HashJoin(FileScan("R"), FileScan("S"), predicate).operator_name()
            == "Hash-Join"
        )
        assert (
            MergeJoin(FileScan("R"), FileScan("S"), predicate).operator_name()
            == "Merge-Join"
        )
        assert (
            IndexJoin(FileScan("R"), "S", "c", predicate).operator_name()
            == "Index-Join"
        )
        assert Sort(FileScan("R"), "R.a").operator_name() == "Sort"
        assert (
            ChoosePlan([FileScan("R"), BTreeScan("R", "a")]).operator_name()
            == "Choose-Plan"
        )


class TestPrinter:
    def test_renders_shared_nodes_once(self):
        scan = FileScan("R")
        plan = ChoosePlan([Sort(scan, "R.a"), Sort(scan, "R.b")])
        text = plan_to_text(plan, show_cost=False)
        assert text.count("File-Scan R") == 1
        assert "(shared)" in text

    def test_renders_choose_plan_fan_out(self):
        plan = ChoosePlan([FileScan("R"), BTreeScan("R", "a")])
        text = plan_to_text(plan, show_cost=False)
        assert "Choose-Plan (2 alternatives)" in text

    def test_shows_cost_when_annotated(self):
        from repro.common.intervals import Interval

        plan = FileScan("R")
        plan.annotate(cost=Interval(1, 2))
        assert "cost=" in plan_to_text(plan, show_cost=True)
