"""Shared test helper: an engine-independent reference evaluator.

Filters every relation by its selection, then folds the joins one
relation at a time — semantically the textbook definition (select +
cartesian product + join predicates) but polynomial instead of
exponential, so it also serves the 4-way-join integration tests.
"""


def reference_rows(workload, database, bindings):
    """Reference evaluation independent of the execution engine.

    Filters every relation by its selection, then folds the joins one
    relation at a time with naive dictionary lookups — semantically the
    textbook definition (select + cartesian product + join predicates)
    but polynomial instead of exponential.
    """
    query = workload.query
    filtered = {}
    for relation in query.relations:
        predicate = query.selection_for(relation)
        records = database.heap(relation).all_records()
        if predicate is not None:
            records = [
                record
                for record in records
                if predicate.evaluate(record, bindings)
            ]
        filtered[relation] = records

    remaining = list(query.relations)
    placed = {remaining.pop(0)}
    current = filtered[query.relations[0]]
    applied = set()
    while remaining:
        # Pick the next relation connected to what we've already joined.
        for index, candidate in enumerate(remaining):
            predicates = query.cross_predicates(placed, {candidate})
            if predicates:
                remaining.pop(index)
                break
        else:
            raise AssertionError("disconnected join graph in reference")
        joined = []
        for left_record in current:
            for right_record in filtered[candidate]:
                merged = left_record.merged_with(right_record)
                if all(
                    merged[p.left_attribute] == merged[p.right_attribute]
                    for p in predicates
                ):
                    joined.append(merged)
        placed.add(candidate)
        applied.update(
            (p.left_attribute, p.right_attribute) for p in predicates
        )
        current = joined
    # Any predicates not yet applied (cycles) filter the final set.
    for predicate in query.join_predicates:
        key = (predicate.left_attribute, predicate.right_attribute)
        rkey = (predicate.right_attribute, predicate.left_attribute)
        if key not in applied and rkey not in applied:
            current = [
                record
                for record in current
                if record[predicate.left_attribute]
                == record[predicate.right_attribute]
            ]
    return current


def row_multiset(records, keys):
    return sorted(tuple(record[key] for key in keys) for record in records)
