"""Interval arithmetic and the paper's comparison semantics."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.common.intervals import Interval
from repro.common.ordering import PartialOrder


def bounded_floats(lo=-1e6, hi=1e6):
    return st.floats(
        min_value=lo, max_value=hi, allow_nan=False, allow_infinity=False
    )


@st.composite
def intervals(draw):
    a = draw(bounded_floats())
    b = draw(bounded_floats())
    return Interval(min(a, b), max(a, b))


class TestConstruction:
    def test_point_from_single_argument(self):
        interval = Interval(3.0)
        assert interval.lower == interval.upper == 3.0
        assert interval.is_point

    def test_point_classmethod(self):
        assert Interval.point(5).lower == 5.0

    def test_zero(self):
        assert Interval.zero() == Interval(0.0, 0.0)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            Interval(2.0, 1.0)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            Interval(float("nan"), 1.0)

    def test_immutable(self):
        interval = Interval(1, 2)
        with pytest.raises(AttributeError):
            interval.lower = 0

    def test_hull(self):
        hull = Interval.hull([Interval(1, 2), Interval(0, 1.5), Interval(3)])
        assert hull == Interval(0, 3)

    def test_hull_empty_raises(self):
        with pytest.raises(ValueError):
            Interval.hull([])

    def test_iter_unpacks_bounds(self):
        lower, upper = Interval(1, 2)
        assert (lower, upper) == (1.0, 2.0)


class TestEnvelopeMin:
    """The choose-plan cost rule (paper Section 5)."""

    def test_paper_example(self):
        # Alternatives [0,10] and [1,1]: envelope is [0,1].
        envelope = Interval.envelope_min([Interval(0, 10), Interval(1, 1)])
        assert envelope == Interval(0, 1)

    def test_single_interval_is_identity(self):
        assert Interval.envelope_min([Interval(2, 5)]) == Interval(2, 5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Interval.envelope_min([])

    @given(st.lists(intervals(), min_size=1, max_size=6))
    def test_envelope_bounds_each_alternative_below(self, ivs):
        envelope = Interval.envelope_min(ivs)
        for iv in ivs:
            assert envelope.lower <= iv.lower
            assert envelope.upper <= iv.upper

    @given(st.lists(intervals(), min_size=1, max_size=6))
    def test_envelope_is_tight(self, ivs):
        envelope = Interval.envelope_min(ivs)
        assert any(math.isclose(envelope.lower, iv.lower) for iv in ivs)
        assert any(math.isclose(envelope.upper, iv.upper) for iv in ivs)


class TestArithmetic:
    def test_addition_adds_both_bounds(self):
        assert Interval(1, 2) + Interval(3, 5) == Interval(4, 7)

    def test_addition_with_scalar(self):
        assert Interval(1, 2) + 1 == Interval(2, 3)
        assert 1 + Interval(1, 2) == Interval(2, 3)

    def test_subtract_lower_removes_only_lower_bound(self):
        # Paper Section 5: only the guaranteed (lower-bound) cost is
        # "used up" when maintaining branch-and-bound limits.
        limit = Interval(10, 20)
        spent = Interval(3, 8)
        remaining = limit.subtract_lower(spent)
        assert remaining == Interval(7, 17)

    def test_multiplication(self):
        assert Interval(2, 3) * Interval(4, 5) == Interval(8, 15)

    def test_multiplication_with_zero_width(self):
        assert Interval(2) * Interval(3) == Interval(6)

    def test_scale(self):
        assert Interval(1, 2).scale(3) == Interval(3, 6)

    def test_scale_rejects_negative(self):
        with pytest.raises(ValueError):
            Interval(1, 2).scale(-1)

    def test_clamp(self):
        assert Interval(0, 10).clamp(2, 5) == Interval(2, 5)
        assert Interval(3, 4).clamp(0, 10) == Interval(3, 4)

    def test_apply_monotone_increasing(self):
        assert Interval(1, 4).apply_monotone(lambda x: x * x) == Interval(1, 16)

    def test_apply_monotone_decreasing(self):
        result = Interval(1, 4).apply_monotone(lambda x: 1.0 / x, increasing=False)
        assert result == Interval(0.25, 1.0)

    @given(intervals(), intervals())
    def test_addition_commutative(self, a, b):
        assert a + b == b + a

    @given(intervals(), intervals(), intervals())
    def test_addition_associative(self, a, b, c):
        left = (a + b) + c
        right = a + (b + c)
        assert math.isclose(left.lower, right.lower, abs_tol=1e-6)
        assert math.isclose(left.upper, right.upper, abs_tol=1e-6)

    @given(intervals(), intervals())
    def test_multiplication_contains_pointwise_products(self, a, b):
        product = a * b
        for x in (a.lower, a.upper, a.midpoint):
            for y in (b.lower, b.upper, b.midpoint):
                assert product.lower <= x * y + 1e-6
                assert x * y <= product.upper + max(1e-6, abs(product.upper) * 1e-9)


class TestComparison:
    """Overlap means incomparable (paper Sections 3 and 5)."""

    def test_disjoint_less(self):
        assert Interval(1, 2).compare(Interval(3, 4)) is PartialOrder.LESS

    def test_disjoint_greater(self):
        assert Interval(3, 4).compare(Interval(1, 2)) is PartialOrder.GREATER

    def test_overlapping_incomparable(self):
        assert Interval(1, 3).compare(Interval(2, 4)) is PartialOrder.INCOMPARABLE

    def test_nested_incomparable(self):
        assert Interval(0, 10).compare(Interval(3, 4)) is PartialOrder.INCOMPARABLE

    def test_equal_points(self):
        assert Interval(2).compare(Interval(2.0)) is PartialOrder.EQUAL

    def test_identical_wide_intervals_incomparable(self):
        # Two plans with the same wide interval may each win under
        # different bindings — the prototype keeps both.
        assert Interval(1, 5).compare(Interval(1, 5)) is PartialOrder.INCOMPARABLE

    def test_touching_intervals_incomparable(self):
        assert Interval(1, 2).compare(Interval(2, 3)) is PartialOrder.INCOMPARABLE

    def test_point_on_boundary_incomparable(self):
        assert Interval(2).compare(Interval(2, 3)) is PartialOrder.INCOMPARABLE

    def test_point_below_interval(self):
        assert Interval(1).compare(Interval(2, 3)) is PartialOrder.LESS

    def test_dominates(self):
        assert Interval(1, 2).dominates(Interval(3, 4))
        assert not Interval(1, 3).dominates(Interval(2, 4))
        assert Interval(2).dominates(Interval(2))

    @given(intervals(), intervals())
    def test_comparison_antisymmetric(self, a, b):
        assert a.compare(b) is b.compare(a).flipped()

    @given(intervals(), intervals())
    def test_less_implies_disjoint(self, a, b):
        if a.compare(b) is PartialOrder.LESS:
            assert a.upper < b.lower

    @given(intervals())
    def test_reflexive(self, a):
        result = a.compare(a)
        if a.is_point:
            assert result is PartialOrder.EQUAL
        else:
            assert result is PartialOrder.INCOMPARABLE


class TestPredicates:
    def test_contains(self):
        assert Interval(1, 3).contains(2)
        assert Interval(1, 3).contains(1)
        assert not Interval(1, 3).contains(3.5)

    def test_overlaps(self):
        assert Interval(1, 3).overlaps(Interval(2, 4))
        assert not Interval(1, 2).overlaps(Interval(3, 4))

    def test_width_and_midpoint(self):
        interval = Interval(1, 3)
        assert interval.width == 2
        assert interval.midpoint == 2

    def test_repr_point(self):
        assert repr(Interval(2)) == "Interval(2)"

    def test_repr_interval(self):
        assert "1" in repr(Interval(1, 2)) and "2" in repr(Interval(1, 2))

    def test_hashable(self):
        assert len({Interval(1, 2), Interval(1, 2), Interval(1, 3)}) == 2
