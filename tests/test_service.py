"""The query service: plan cache, concurrency, staleness, CLI.

The stress test is the load-bearing one: many pool threads resolve the
*same* cached dynamic plan under different bindings, and every
decision must match a single-threaded interpreted reference run —
start-up procedures are re-entrant and the compiled decision programs
make identical choices.
"""

import json

import pytest

from repro.__main__ import main
from repro.cost.parameters import Bindings
from repro.executor.startup import resolve_dynamic_plan
from repro.optimizer import (
    canonical_signature,
    optimize_dynamic,
    signature_digest,
)
from repro.optimizer.query import QuerySpec
from repro.service import (
    CompiledDecision,
    PlanCache,
    QueryService,
    ServiceRequest,
    render_report,
    replay_spec,
)
from repro.storage import Database
from repro.workloads import paper_workload, random_bindings
from repro.workloads.queries import (
    make_join_predicates,
    make_selection_predicate,
    selection_variable_name,
)
from repro.workloads.service import (
    ServiceQuerySpec,
    ServiceWorkloadSpec,
    build_service_workloads,
    generate_service_requests,
    service_request_bindings,
)


def narrow_workload(bounds=(0.0, 0.3)):
    """A 2-way service workload whose selectivities are compiled over
    a narrowed interval — bindings outside ``bounds`` are stale."""
    spec = ServiceWorkloadSpec(
        [ServiceQuerySpec(2, selectivity_bounds=bounds)], seed=7
    )
    return build_service_workloads(spec)[0]


def bindings_at(workload, selectivity):
    """Bindings setting every unbound selectivity to one value."""
    bindings = Bindings()
    for relation_name in workload.query.relations:
        predicate = workload.query.selection_for(relation_name)
        if predicate is None or not predicate.is_uncertain:
            continue
        domain = workload.catalog.domain_size(relation_name, "a")
        bindings.bind(predicate.selectivity_parameter, selectivity)
        bindings.bind_variable(
            selection_variable_name(relation_name), selectivity * domain
        )
    return bindings


class TestCanonicalSignature:
    def test_equal_structure_equal_signature(self, workload2):
        query = workload2.query
        renamed = QuerySpec(
            query.relations,
            query.selections,
            query.join_predicates,
            memory_uncertain=query.memory_uncertain,
            name="a-completely-different-name",
            projection=query.projection,
        )
        assert canonical_signature(query) == canonical_signature(renamed)
        assert query.signature() == renamed.signature()

    def test_relation_order_is_canonicalized(self, workload2):
        query = workload2.query
        reversed_spec = QuerySpec(
            list(reversed(query.relations)),
            query.selections,
            query.join_predicates,
            memory_uncertain=query.memory_uncertain,
            name=query.name,
            projection=query.projection,
        )
        assert canonical_signature(query) == canonical_signature(reversed_spec)

    def test_different_structure_different_signature(
        self, workload1, workload2
    ):
        assert canonical_signature(workload1.query) != canonical_signature(
            workload2.query
        )

    def test_memory_uncertainty_is_part_of_the_key(self, workload2,
                                                   workload2_mem):
        assert canonical_signature(workload2.query) != canonical_signature(
            workload2_mem.query
        )

    def test_unbound_parameter_set_is_part_of_the_key(self):
        relations = ["R1", "R2"]
        joins = make_join_predicates(relations, "chain")
        uncertain = QuerySpec(
            relations,
            {name: make_selection_predicate(name) for name in relations},
            joins,
        )
        partially_bound = QuerySpec(
            relations,
            {
                "R1": make_selection_predicate("R1"),
                "R2": make_selection_predicate("R2", uncertain=False),
            },
            joins,
        )
        assert canonical_signature(uncertain) != canonical_signature(
            partially_bound
        )

    def test_digest_is_stable_and_short(self, workload2):
        signature = canonical_signature(workload2.query)
        assert signature_digest(signature) == signature_digest(signature)
        assert len(signature_digest(signature)) == 16


class TestPlanCache:
    def queries(self, count):
        """Structurally distinct queries (distinct cache signatures)."""
        return [
            paper_workload(number, seed=0).query
            for number in range(1, count + 1)
        ]

    def test_miss_then_hit(self, workload2):
        cache = PlanCache(capacity=4)
        entry, hit = cache.entry_for(workload2.query)
        assert not hit
        # The entry exists but holds no plan yet: still a miss.
        entry2, hit = cache.entry_for(workload2.query)
        assert entry2 is entry and not hit
        entry.install(object(), workload2.query.parameter_space)
        _, hit = cache.entry_for(workload2.query)
        assert hit
        stats = cache.stats.snapshot()
        assert stats["lookups"] == 3
        assert stats["hits"] == 1 and stats["misses"] == 2

    def test_lru_eviction(self):
        first, second, third = self.queries(3)
        cache = PlanCache(capacity=2)
        cache.entry_for(first)
        cache.entry_for(second)
        cache.entry_for(first)  # refresh: second is now least recent
        cache.entry_for(third)  # evicts second
        assert len(cache) == 2
        assert first in cache and third in cache
        assert second not in cache
        assert cache.stats.evictions == 1

    def test_invalidate(self, workload2):
        cache = PlanCache(capacity=4)
        cache.entry_for(workload2.query)
        assert cache.invalidate(workload2.query)
        assert workload2.query not in cache
        assert not cache.invalidate(workload2.query)
        assert cache.stats.invalidations == 1


class TestStaleness:
    def test_out_of_bounds_binding_reoptimizes_in_place(self):
        workload = narrow_workload(bounds=(0.0, 0.3))
        service = QueryService(
            Database(workload.catalog), execute=False, max_workers=2
        )
        with service:
            inside = service.run(workload.query, bindings_at(workload, 0.2))
            assert not inside.cache_hit and not inside.reoptimized

            drifted = service.run(workload.query, bindings_at(workload, 0.9))
            assert drifted.reoptimized and not drifted.cache_hit
            assert drifted.optimize_seconds > 0.0

            # The widened plan now covers the drifted value: no second
            # re-optimization, and the entry survived under its key.
            again = service.run(workload.query, bindings_at(workload, 0.9))
            assert again.cache_hit and not again.reoptimized
        assert len(service.cache) == 1
        entry = service.cache.get(workload.query)
        assert entry.reoptimizations == 1
        for bounds in entry.covered_bounds.values():
            assert bounds.contains(0.9)
        assert service.cache.stats.invalidations == 1

    def test_observed_ranges_are_tracked(self):
        workload = narrow_workload()
        service = QueryService(
            Database(workload.catalog), execute=False, max_workers=2
        )
        with service:
            service.run(workload.query, bindings_at(workload, 0.10))
            service.run(workload.query, bindings_at(workload, 0.25))
        entry = service.cache.get(workload.query)
        for name in entry.covered_bounds:
            low, high = entry.observed[name]
            assert low == pytest.approx(0.10)
            assert high == pytest.approx(0.25)


class TestCompiledDecision:
    @pytest.mark.parametrize("paper_query", [1, 2, 3])
    def test_matches_interpreted_resolution(self, paper_query):
        workload = paper_workload(paper_query, seed=0)
        plan = optimize_dynamic(workload.catalog, workload.query).plan
        decision = CompiledDecision(
            plan, workload.catalog, workload.query.parameter_space
        )
        for seed in range(20):
            bindings = random_bindings(workload, seed=seed)
            compiled_plan, compiled_report = decision.choose(bindings)
            reference_plan, reference_report = resolve_dynamic_plan(
                plan, workload.catalog, workload.query.parameter_space,
                bindings,
            )
            assert compiled_plan.signature() == reference_plan.signature()
            assert (
                compiled_report.choice_signature()
                == reference_report.choice_signature()
            )
            assert compiled_report.decisions == reference_report.decisions


class TestQueryService:
    THREADS = 8

    def reference_signatures(self, workload, plan, all_bindings):
        return [
            resolve_dynamic_plan(
                plan, workload.catalog, workload.query.parameter_space,
                bindings,
            )[1].choice_signature()
            for bindings in all_bindings
        ]

    @pytest.mark.slow
    @pytest.mark.parametrize("compiled", [True, False])
    def test_concurrent_startup_matches_single_threaded(self, compiled):
        workload = paper_workload(2, seed=0)
        all_bindings = [
            service_request_bindings(workload, seed=0, run_index=index)
            for index in range(48)
        ]
        service = QueryService(
            Database(workload.catalog),
            execute=False,
            max_workers=self.THREADS,
            compiled=compiled,
        )
        with service:
            results = service.run_batch(
                ServiceRequest(workload.query, bindings)
                for bindings in all_bindings
            )
            plan = service.cache.get(workload.query).plan
        expected = self.reference_signatures(workload, plan, all_bindings)
        actual = [
            result.startup_report.choice_signature() for result in results
        ]
        assert actual == expected
        # Several distinct decisions, or the test proves nothing.
        assert len(set(expected)) > 1
        assert sum(1 for result in results if not result.cache_hit) >= 1
        assert service.cache.stats.snapshot()["lookups"] == len(all_bindings)

    def test_single_flight_compilation(self):
        workload = paper_workload(2, seed=0)
        calls = []
        from repro.optimizer.optimizer import optimize_dynamic as real

        def counting_optimize(catalog, query):
            calls.append(query.name)
            return real(catalog, query)

        service = QueryService(
            Database(workload.catalog),
            execute=False,
            max_workers=self.THREADS,
            optimize=counting_optimize,
        )
        all_bindings = [
            service_request_bindings(workload, seed=1, run_index=index)
            for index in range(16)
        ]
        with service:
            service.run_batch(
                ServiceRequest(workload.query, bindings)
                for bindings in all_bindings
            )
        assert len(calls) == 1

    def test_execution_through_the_service(self, workload2, database2):
        service = QueryService(database2, execute=True, max_workers=4)
        all_bindings = [
            service_request_bindings(workload2, seed=2, run_index=index)
            for index in range(8)
        ]
        with service:
            results = service.run_batch(
                ServiceRequest(workload2.query, bindings)
                for bindings in all_bindings
            )
        for result in results:
            assert result.execution is not None
            assert result.row_count >= 0

    def test_stats_snapshot(self):
        workload = paper_workload(1, seed=0)
        service = QueryService(
            Database(workload.catalog), execute=False, max_workers=2
        )
        with service:
            for index in range(6):
                service.run(
                    workload.query,
                    service_request_bindings(workload, 0, index),
                )
        stats = service.stats()
        assert stats.requests == 6
        assert stats.optimize_count == 1
        assert stats.startup_p50 <= stats.startup_p95
        assert stats.hit_rate == pytest.approx(5.0 / 6.0)
        assert stats.amortization > 1.0


class TestReplayDeterminism:
    def test_request_generation_is_reproducible(self):
        spec = ServiceWorkloadSpec.default(invocations=30, seed=11)
        _, first = generate_service_requests(spec)
        _, second = generate_service_requests(spec)
        assert [workload.query.name for workload, _ in first] == [
            workload.query.name for workload, _ in second
        ]
        for (_, left), (_, right) in zip(first, second):
            assert left._parameters == right._parameters
            assert left._variables == right._variables

    @pytest.mark.slow
    def test_replay_decisions_survive_thread_scheduling(self):
        spec = ServiceWorkloadSpec.default(
            invocations=24, threads=8, seed=4, execute=False
        )
        first = replay_spec(spec)
        second = replay_spec(spec)

        def signatures(report):
            return [
                result.startup_report.choice_signature()
                for result in report.results
            ]

        assert signatures(first) == signatures(second)
        # Hit/miss *classification* is timing-dependent (a burst of
        # concurrent first requests may each count as a miss before the
        # plan lands), so only the scheduling-invariant parts compare.
        assert first.stats.cache["lookups"] == second.stats.cache["lookups"]
        assert [result.tag for result in first.results] == [
            result.tag for result in second.results
        ]


class TestServeBatchCli:
    def test_default_spec(self, capsys):
        code = main(
            ["serve-batch", "--invocations", "16", "--no-execute",
             "--seed", "2"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "hit rate" in output
        assert "speedup" in output

    def test_spec_file(self, tmp_path, capsys):
        spec_path = tmp_path / "mix.json"
        spec_path.write_text(json.dumps({
            "invocations": 10,
            "threads": 4,
            "execute": False,
            "queries": [
                {"relations": 1, "weight": 2},
                {"relations": 2, "weight": 1,
                 "selectivity_bounds": [0.0, 0.4], "drift": 0.5},
            ],
        }))
        assert main(["serve-batch", str(spec_path)]) == 0
        output = capsys.readouterr().out
        assert "2 query shapes" in output

    def test_render_report_mentions_reoptimizations(self):
        spec = ServiceWorkloadSpec(
            [
                ServiceQuerySpec(
                    2, selectivity_bounds=(0.0, 0.2), drift=0.6
                )
            ],
            invocations=20,
            threads=4,
            seed=9,
            execute=False,
        )
        report = replay_spec(spec)
        assert "re-optimizations" in render_report(report)
        assert report.stats.cache["invalidations"] >= 1
