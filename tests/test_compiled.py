"""Differential tests: compiled (fused-pipeline) execution vs row mode.

The pipeline compiler (:mod:`repro.executor.compiled`) generates
Python source per operator chain, so its highest-risk failure is a
silent semantic divergence from the interpreted engines.  These tests
hold the engine-equivalence invariant — identical result rows,
identical simulated I/O totals, identical start-up decisions — over
every paper query, static and dynamic plans, traced and untraced, and
additionally pin down the guarantees fusion must not break: deadline
cancellation and injected faults still surface as typed errors inside
fused pipelines, and the plan cache invalidates generated pipelines
together with the compiled start-up decision program.
"""

import pytest

from repro.catalog import populate_database
from repro.common.errors import (
    PermanentIOError,
    QueryTimeoutError,
    ServiceExecutionError,
    TransientIOError,
)
from repro.executor.compiled import (
    CompiledPlanProgram,
    build_compiled_iterator,
    chain_key,
    compile_plan,
    pipeline_chain,
)
from repro.executor.engine import ExecutionContext, execute_plan
from repro.observability import Tracer
from repro.optimizer.optimizer import optimize_dynamic, optimize_static
from repro.resilience import FaultInjector, fault_profile
from repro.service.cache import PlanCacheEntry
from repro.storage.database import Database
from repro.workloads import binding_series, paper_workload

PAPER_QUERIES = (1, 2, 3, 4, 5)
PLAN_KINDS = ("static", "dynamic")


def _optimize(workload, kind):
    if kind == "static":
        return optimize_static(workload.catalog, workload.query).plan
    return optimize_dynamic(workload.catalog, workload.query).plan


def _database(workload):
    database = Database(workload.catalog)
    populate_database(database, seed=11)
    return database


def _run(workload, plan, bindings, mode, tracer=None, **kwargs):
    return execute_plan(
        plan,
        _database(workload),
        bindings,
        workload.query.parameter_space,
        tracer=tracer,
        execution_mode=mode,
        **kwargs,
    )


# ----------------------------------------------------------------------
# Engine equivalence
# ----------------------------------------------------------------------


@pytest.mark.parametrize("traced", (False, True), ids=("untraced", "traced"))
@pytest.mark.parametrize("kind", PLAN_KINDS)
@pytest.mark.parametrize("number", PAPER_QUERIES)
def test_compiled_matches_row(number, kind, traced):
    workload = paper_workload(number)
    plan = _optimize(workload, kind)
    for bindings in binding_series(workload, count=2, seed=5):
        row = _run(
            workload, plan, bindings, "row",
            tracer=Tracer() if traced else None,
        )
        compiled = _run(
            workload, plan, bindings, "compiled",
            tracer=Tracer() if traced else None,
        )

        assert compiled.records == row.records
        assert compiled.io_snapshot == row.io_snapshot
        assert compiled.decisions == row.decisions


@pytest.mark.parametrize("mode", ("row", "batch"))
@pytest.mark.parametrize("number", PAPER_QUERIES)
def test_compile_pipelines_flag_preserves_mode_semantics(number, mode):
    """``compile_pipelines=True`` accelerates row/batch transparently."""
    workload = paper_workload(number)
    plan = _optimize(workload, "dynamic")
    bindings = binding_series(workload, count=1, seed=5)[0]
    plain = _run(workload, plan, bindings, mode)
    fused = _run(workload, plan, bindings, mode, compile_pipelines=True)
    assert fused.records == plain.records
    assert fused.io_snapshot == plain.io_snapshot
    assert fused.decisions == plain.decisions


@pytest.mark.parametrize("batch_size", (1, 3, 64))
def test_compiled_batch_size_sweep(batch_size):
    """Any batch size yields row-mode results through fused pipelines."""
    workload = paper_workload(2)
    plan = _optimize(workload, "dynamic")
    bindings = binding_series(workload, count=1, seed=5)[0]
    row = _run(workload, plan, bindings, "row")
    compiled = _run(
        workload, plan, bindings, "compiled", batch_size=batch_size
    )
    assert compiled.records == row.records
    assert compiled.io_snapshot == row.io_snapshot


def test_compiled_trace_has_single_root_with_exact_totals():
    """A fused pipeline records one span; totals stay exact."""
    workload = paper_workload(3)
    plan = _optimize(workload, "static")
    bindings = binding_series(workload, count=1, seed=5)[0]
    compiled = _run(workload, plan, bindings, "compiled", tracer=Tracer())
    assert len(compiled.trace.roots) == 1
    root = compiled.trace.roots[0]
    assert root.rows == compiled.row_count
    assert root.pages_read == compiled.io_snapshot["pages_read"]
    assert root.records_processed == compiled.io_snapshot["records_processed"]


def test_empty_input_does_not_touch_unbound_operands():
    """Fused filters defer unbound-variable errors to the first record."""
    workload = paper_workload(2)
    plan = _optimize(workload, "static")
    bindings = binding_series(workload, count=1, seed=5)[0]
    for name in list(bindings._variables):
        bindings.bind_variable(name, -1)
    for name in bindings.parameter_names():
        if name.startswith("sel_"):
            bindings.bind(name, 0.0)
    row = _run(workload, plan, bindings, "row")
    compiled = _run(workload, plan, bindings, "compiled")
    assert row.records == []
    assert compiled.records == []
    assert compiled.io_snapshot == row.io_snapshot


# ----------------------------------------------------------------------
# Resilience guarantees inside fused pipelines
# ----------------------------------------------------------------------


def test_deadline_cancels_inside_fused_pipeline():
    """An expired deadline raises the typed timeout, not a plain error."""
    workload = paper_workload(5)
    plan = _optimize(workload, "static")
    bindings = binding_series(workload, count=1, seed=5)[0]
    with pytest.raises(QueryTimeoutError) as excinfo:
        _run(workload, plan, bindings, "compiled", deadline=0.0)
    error = excinfo.value
    assert error.rows_produced == 0
    assert error.io_snapshot is not None


def test_transient_fault_surfaces_typed_from_fused_pipeline():
    workload = paper_workload(2)
    plan = _optimize(workload, "static")
    bindings = binding_series(workload, count=1, seed=5)[0]
    database = _database(workload)
    database.install_fault_injector(
        FaultInjector(fault_profile("transient-io"), seed=0)
    )
    with pytest.raises(TransientIOError):
        execute_plan(
            plan,
            database,
            bindings,
            workload.query.parameter_space,
            execution_mode="compiled",
        )


def test_permanent_fault_surfaces_typed_from_fused_pipeline():
    workload = paper_workload(2)
    plan = _optimize(workload, "static")
    bindings = binding_series(workload, count=1, seed=5)[0]
    database = _database(workload)
    database.install_fault_injector(
        FaultInjector(fault_profile("broken-disk"), seed=0)
    )
    with pytest.raises(PermanentIOError):
        execute_plan(
            plan,
            database,
            bindings,
            workload.query.parameter_space,
            execution_mode="compiled",
        )


# ----------------------------------------------------------------------
# Code generation and caching
# ----------------------------------------------------------------------


def _first_chain(plan):
    """The first non-empty fused chain anywhere in a plan DAG."""
    for node in plan.walk_unique():
        steps, _source = pipeline_chain(node)
        if steps:
            return steps
    raise AssertionError("plan has no fusable chain: %r" % plan)


def test_chain_key_is_structural_not_identity():
    """Two optimizations of the same query share every chain key."""
    workload = paper_workload(3)
    plan_a = _optimize(workload, "dynamic")
    plan_b = _optimize(workload, "dynamic")
    steps_a = _first_chain(plan_a)
    steps_b = _first_chain(plan_b)
    assert steps_a is not steps_b
    assert chain_key(steps_a) == chain_key(steps_b)


def test_generated_source_inlines_predicates_and_projections():
    workload = paper_workload(3)
    plan = _optimize(workload, "dynamic")
    steps = _first_chain(plan)
    program = CompiledPlanProgram()
    factory = program.pipeline_factory(steps)
    assert "def _pipeline(source, ops):" in factory.source
    # The per-record work is inlined field access, not closure
    # dispatch: the source mentions the records' exact field dict.
    assert "_fields[" in factory.source


def test_program_compiles_each_chain_shape_once():
    workload = paper_workload(5)
    plan = _optimize(workload, "dynamic")
    program = compile_plan(plan)
    assert len(program) > 0
    after_precompile = program.compilations

    bindings = binding_series(workload, count=2, seed=5)
    database = _database(workload)
    for series in (bindings, bindings):
        for binding in series:
            execute_plan(
                plan,
                database,
                binding,
                workload.query.parameter_space,
                execution_mode="compiled",
                compiled_program=program,
            )
    # Start-up resolution rebuilds nodes each invocation; chains that
    # cross former choose-plan boundaries compile once on first use
    # and every later invocation hits the structural cache.
    first_round = program.compilations
    assert program.requests > program.compilations
    assert program.compilations >= after_precompile
    execute_plan(
        plan,
        database,
        bindings[0],
        workload.query.parameter_space,
        execution_mode="compiled",
        compiled_program=program,
    )
    assert program.compilations == first_round


def test_fresh_program_per_execution_when_none_supplied():
    workload = paper_workload(2)
    plan = _optimize(workload, "static")
    bindings = binding_series(workload, count=1, seed=5)[0]
    context = ExecutionContext(
        database=_database(workload),
        bindings=bindings,
        parameter_space=workload.query.parameter_space,
        execution_mode="compiled",
    )
    root = build_compiled_iterator(plan, context)
    assert [r for batch in root.batches() for r in batch] is not None


# ----------------------------------------------------------------------
# Plan-cache invalidation contract
# ----------------------------------------------------------------------


def test_install_replaces_pipelines_with_decision():
    workload = paper_workload(2)
    plan = _optimize(workload, "dynamic")
    entry = PlanCacheEntry("sig", workload.query)
    program = compile_plan(plan)
    entry.install(plan, workload.query.parameter_space, decision=None,
                  pipelines=program)
    assert entry.pipelines is program
    entry.install(plan, workload.query.parameter_space, decision=None)
    assert entry.pipelines is None


def _narrow_workload(bounds=(0.0, 0.3)):
    """A 2-way service workload compiled over narrowed selectivity
    bounds — bindings outside ``bounds`` render the cached plan stale."""
    from repro.workloads.service import (
        ServiceQuerySpec,
        ServiceWorkloadSpec,
        build_service_workloads,
    )

    spec = ServiceWorkloadSpec(
        [ServiceQuerySpec(2, selectivity_bounds=bounds)], seed=7
    )
    return build_service_workloads(spec)[0]


def _bindings_at(workload, selectivity):
    """Bindings setting every unbound selectivity to one value."""
    from repro.cost.parameters import Bindings
    from repro.workloads.queries import selection_variable_name

    bindings = Bindings()
    for relation_name in workload.query.relations:
        predicate = workload.query.selection_for(relation_name)
        if predicate is None or not predicate.is_uncertain:
            continue
        domain = workload.catalog.domain_size(relation_name, "a")
        bindings.bind(predicate.selectivity_parameter, selectivity)
        bindings.bind_variable(
            selection_variable_name(relation_name), selectivity * domain
        )
    return bindings


def test_service_reoptimization_invalidates_pipelines():
    """Staleness re-optimization swaps decision and pipelines together."""
    from repro.service import QueryService

    workload = _narrow_workload(bounds=(0.0, 0.3))
    database = Database(workload.catalog)
    populate_database(database, seed=11)
    with QueryService(
        database, max_workers=1, execution_mode="compiled"
    ) as service:
        service.run(workload.query, _bindings_at(workload, 0.2))
        entry = service.cache.get(workload.query)
        first_program = entry.pipelines
        assert isinstance(first_program, CompiledPlanProgram)

        drifted = service.run(workload.query, _bindings_at(workload, 0.9))
        assert drifted.reoptimized
        assert entry.pipelines is not first_program
        assert isinstance(entry.pipelines, CompiledPlanProgram)


# ----------------------------------------------------------------------
# Service plumbing
# ----------------------------------------------------------------------


def test_service_compiled_mode_matches_row():
    from repro.service import QueryService, ServiceRequest

    workload = paper_workload(2)
    database = Database(workload.catalog)
    populate_database(database, seed=11)
    bindings = binding_series(workload, count=1, seed=5)[0]
    with QueryService(
        database, max_workers=1, execution_mode="compiled"
    ) as service:
        compiled_result = service.run(workload.query, bindings)
        row_result = service.run(
            workload.query, bindings, execution_mode="row"
        )
        batched = service.run_batch(
            [
                ServiceRequest(
                    workload.query, bindings, execution_mode="compiled"
                )
            ]
        )
        entry = service.cache.get(workload.query)
        assert isinstance(entry.pipelines, CompiledPlanProgram)
    assert compiled_result.execution.records == row_result.execution.records
    assert batched[0].execution.records == row_result.execution.records


def test_service_compile_pipelines_flag():
    from repro.service import QueryService

    workload = paper_workload(2)
    database = Database(workload.catalog)
    populate_database(database, seed=11)
    bindings = binding_series(workload, count=1, seed=5)[0]
    with QueryService(
        database, max_workers=1, execution_mode="row", compile_pipelines=True
    ) as service:
        result = service.run(workload.query, bindings)
        entry = service.cache.get(workload.query)
        assert isinstance(entry.pipelines, CompiledPlanProgram)
    row = _run(
        workload, _optimize(workload, "dynamic"), bindings, "row"
    )
    assert [r.as_dict() for r in result.execution.records] == [
        r.as_dict() for r in row.records
    ]


def test_service_deadline_timeout_typed_in_compiled_mode():
    from repro.resilience import ResiliencePolicy, RetryPolicy
    from repro.service import QueryService

    workload = paper_workload(5)
    database = Database(workload.catalog)
    populate_database(database, seed=11)
    bindings = binding_series(workload, count=1, seed=5)[0]
    policy = ResiliencePolicy(
        retry=RetryPolicy(max_retries=0, base_delay=0.0, jitter=0.0),
        sleep=lambda _seconds: None,
    )
    with QueryService(
        database, max_workers=1, execution_mode="compiled", resilience=policy
    ) as service:
        with pytest.raises(ServiceExecutionError) as excinfo:
            service.run(workload.query, bindings, deadline_seconds=0.0)
    assert isinstance(excinfo.value.cause, QueryTimeoutError)


def test_workload_spec_accepts_compiled_mode():
    from repro.workloads.service import ServiceWorkloadSpec

    spec = ServiceWorkloadSpec.from_dict(
        {
            "queries": [{"relations": 2}],
            "invocations": 4,
            "execution_mode": "compiled",
        }
    )
    assert spec.execution_mode == "compiled"
    assert spec.replace(execution_mode="row").execution_mode == "row"
