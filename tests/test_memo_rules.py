"""The memo and the transformation-rule closure.

The key correctness property: the closure of join commutativity and
the two associativity rules must discover, for every connected subset
of relations, *every* connected split — i.e. the full bushy-tree plan
space without cross products.  We verify this against the independent
:meth:`QuerySpec.connected_splits` enumerator on chain, star, and
cycle topologies.
"""

import pytest

from repro.common.errors import OptimizationError
from repro.optimizer import OptimizerConfig, SearchEngine
from repro.optimizer.memo import (
    Group,
    Memo,
    MExpr,
    base_key,
    join_key,
    select_key,
)
from repro.workloads import make_join_workload


class TestMemoStructures:
    def test_keys(self):
        assert base_key("R") == ("base", "R")
        assert select_key("R") == ("select", "R")
        assert join_key({"R", "S"}) == ("join", frozenset({"R", "S"}))

    def test_group_deduplicates_mexprs(self):
        group = Group(join_key({"R", "S"}), {"R", "S"})
        m1 = MExpr.join(("base", "R"), ("base", "S"), ())
        m2 = MExpr.join(("base", "R"), ("base", "S"), ())
        assert group.add_mexpr(m1) is m1
        assert group.add_mexpr(m2) is None
        assert len(group.mexprs) == 1

    def test_memo_get_or_create(self):
        memo = Memo()
        group, created = memo.get_or_create(base_key("R"))
        assert created
        again, created_again = memo.get_or_create(base_key("R"))
        assert again is group and not created_again

    def test_unknown_group_raises(self):
        with pytest.raises(OptimizationError):
            Memo().group(("base", "zzz"))

    def test_counts(self):
        memo = Memo()
        group, _ = memo.get_or_create(base_key("R"))
        group.add_mexpr(MExpr.getset("R"))
        assert memo.group_count() == 1
        assert memo.mexpr_count() == 1


def _explored_engine(workload):
    engine = SearchEngine(workload.catalog, OptimizerConfig.dynamic())
    engine.query = workload.query
    engine.memo = Memo()
    engine.stats = __import__(
        "repro.optimizer.search", fromlist=["SearchStatistics"]
    ).SearchStatistics()
    engine._queue = []
    root = engine._build_initial_groups(workload.query)
    engine._explore_all()
    return engine, root


def _assert_closure_complete(workload):
    engine, root = _explored_engine(workload)
    query = workload.query
    for group in engine.memo.groups():
        if group.kind != "join":
            continue
        expected = set()
        for left, right in query.connected_splits(group.relations):
            expected.add((left, right))
        discovered = set()
        for mexpr in group.mexprs:
            discovered.add(
                (
                    engine.relations_of(mexpr.left_key),
                    engine.relations_of(mexpr.right_key),
                )
            )
        assert discovered == expected, (
            "group %s: rule closure found %d splits, enumeration %d"
            % (sorted(group.relations), len(discovered), len(expected))
        )


class TestRuleClosureCompleteness:
    def test_chain_3(self):
        _assert_closure_complete(make_join_workload(3, topology="chain"))

    def test_chain_5(self):
        _assert_closure_complete(make_join_workload(5, topology="chain"))

    def test_star_4(self):
        _assert_closure_complete(make_join_workload(4, topology="star"))

    def test_star_5(self):
        _assert_closure_complete(make_join_workload(5, topology="star"))

    def test_cycle_4(self):
        _assert_closure_complete(make_join_workload(4, topology="cycle"))

    def test_cycle_5(self):
        _assert_closure_complete(make_join_workload(5, topology="cycle"))


class TestLogicalTreeCounts:
    """Bushy-tree counts for chains follow 2^(n-1) * Catalan(n-1)."""

    @pytest.mark.parametrize(
        "relations, expected",
        [(1, 1), (2, 2), (3, 8), (4, 40), (6, 1344)],
    )
    def test_chain_tree_counts(self, relations, expected):
        workload = make_join_workload(relations, topology="chain")
        engine, root = _explored_engine(workload)
        assert engine.memo.logical_tree_count(root) == expected

    def test_star_tree_counts(self):
        # Star with k satellites: 2^k * k! ordered bushy trees.
        workload = make_join_workload(4, topology="star")
        engine, root = _explored_engine(workload)
        assert engine.memo.logical_tree_count(root) == 2 ** 3 * 6

    def test_groups_are_connected_subsets_only(self):
        workload = make_join_workload(4, topology="chain")
        engine, _ = _explored_engine(workload)
        for group in engine.memo.groups():
            if group.kind == "join":
                assert workload.query.is_connected(group.relations)

    def test_chain_group_count(self):
        # Chain of n has n*(n-1)/2 multi-relation connected ranges.
        workload = make_join_workload(5, topology="chain")
        engine, _ = _explored_engine(workload)
        join_groups = [g for g in engine.memo.groups() if g.kind == "join"]
        assert len(join_groups) == 5 * 4 // 2
