"""Start-up machinery: activation, decision procedures, reports."""

import pytest

from repro.common.units import CATALOG_VALIDATION_SECONDS
from repro.executor import activate_plan, resolve_dynamic_plan
from repro.executor.startup import StartupReport
from repro.optimizer import optimize_dynamic, optimize_static
from repro.scenarios import predicted_execution_seconds
from repro.workloads import binding_series, random_bindings


class TestResolveDynamicPlan:
    def test_resolved_plan_has_no_choose_operators(self, workload2):
        dynamic = optimize_dynamic(workload2.catalog, workload2.query)
        bindings = random_bindings(workload2, seed=1)
        chosen, report = resolve_dynamic_plan(
            dynamic.plan, workload2.catalog,
            workload2.query.parameter_space, bindings,
        )
        assert chosen.choose_plan_count() == 0
        assert report.decisions > 0

    def test_decisions_counted_once_per_choose_node(self, workload2):
        dynamic = optimize_dynamic(workload2.catalog, workload2.query)
        bindings = random_bindings(workload2, seed=1)
        _, report = resolve_dynamic_plan(
            dynamic.plan, workload2.catalog,
            workload2.query.parameter_space, bindings,
        )
        # Shared choose-plan nodes are resolved at most once each.
        assert report.decisions <= dynamic.plan.choose_plan_count()

    def test_shared_subplans_costed_once(self, workload2):
        dynamic = optimize_dynamic(workload2.catalog, workload2.query)
        bindings = random_bindings(workload2, seed=1)
        _, report = resolve_dynamic_plan(
            dynamic.plan, workload2.catalog,
            workload2.query.parameter_space, bindings,
        )
        # DAG sharing: evaluations bounded by distinct node count.
        assert report.cost_evaluations <= dynamic.plan.node_count()

    def test_different_bindings_different_choices(self, workload1):
        dynamic = optimize_dynamic(workload1.catalog, workload1.query)
        domain = workload1.catalog.domain_size("R1", "a")
        low = random_bindings(workload1, seed=0)
        low.bind("sel_R1", 0.01).bind_variable("v_R1", 0.01 * domain)
        high = random_bindings(workload1, seed=0)
        high.bind("sel_R1", 0.95).bind_variable("v_R1", 0.95 * domain)
        chosen_low, _ = resolve_dynamic_plan(
            dynamic.plan, workload1.catalog,
            workload1.query.parameter_space, low,
        )
        chosen_high, _ = resolve_dynamic_plan(
            dynamic.plan, workload1.catalog,
            workload1.query.parameter_space, high,
        )
        assert chosen_low.signature() != chosen_high.signature()

    def test_resolution_deterministic(self, workload2):
        dynamic = optimize_dynamic(workload2.catalog, workload2.query)
        bindings = random_bindings(workload2, seed=9)
        a, _ = resolve_dynamic_plan(
            dynamic.plan, workload2.catalog,
            workload2.query.parameter_space, bindings,
        )
        b, _ = resolve_dynamic_plan(
            dynamic.plan, workload2.catalog,
            workload2.query.parameter_space, bindings,
        )
        assert a.signature() == b.signature()


class TestStartupBranchAndBound:
    """The Section 4 extension: bound-pruned decision procedures must
    never change which plan is chosen."""

    def test_same_choice_with_and_without_pruning(self, workload3):
        dynamic = optimize_dynamic(workload3.catalog, workload3.query)
        for bindings in binding_series(workload3, count=6, seed=2):
            plain, _ = resolve_dynamic_plan(
                dynamic.plan, workload3.catalog,
                workload3.query.parameter_space, bindings,
            )
            pruned, report = resolve_dynamic_plan(
                dynamic.plan, workload3.catalog,
                workload3.query.parameter_space, bindings,
                branch_and_bound=True,
            )
            cost_plain = predicted_execution_seconds(
                plain, workload3.catalog,
                workload3.query.parameter_space, bindings,
            )
            cost_pruned = predicted_execution_seconds(
                pruned, workload3.catalog,
                workload3.query.parameter_space, bindings,
            )
            assert cost_plain == pytest.approx(cost_pruned, rel=1e-9)


class TestActivatePlan:
    def test_static_plan_activation_has_no_decisions(self, workload2):
        static = optimize_static(workload2.catalog, workload2.query)
        bindings = random_bindings(workload2, seed=1)
        plan, report = activate_plan(
            static.plan, workload2.catalog,
            workload2.query.parameter_space, bindings,
        )
        assert plan is static.plan
        assert report.decisions == 0
        assert report.cpu_seconds == 0.0
        assert report.io_seconds > 0

    def test_dynamic_activation_total_includes_validation(self, workload2):
        dynamic = optimize_dynamic(workload2.catalog, workload2.query)
        bindings = random_bindings(workload2, seed=1)
        _, report = activate_plan(
            dynamic.plan, workload2.catalog,
            workload2.query.parameter_space, bindings,
        )
        assert report.total_seconds >= CATALOG_VALIDATION_SECONDS
        assert report.node_count == dynamic.plan.node_count()

    def test_dynamic_module_io_larger_than_static(self, workload2):
        static = optimize_static(workload2.catalog, workload2.query)
        dynamic = optimize_dynamic(workload2.catalog, workload2.query)
        bindings = random_bindings(workload2, seed=1)
        _, static_report = activate_plan(
            static.plan, workload2.catalog,
            workload2.query.parameter_space, bindings,
        )
        _, dynamic_report = activate_plan(
            dynamic.plan, workload2.catalog,
            workload2.query.parameter_space, bindings,
        )
        assert dynamic_report.io_seconds > static_report.io_seconds


class TestStartupReport:
    def test_repr_and_fields(self):
        report = StartupReport(
            decisions=3, cost_evaluations=10, cpu_seconds=0.01,
            io_seconds=0.002, node_count=20,
        )
        assert "decisions=3" in repr(report)
        assert report.total_seconds == pytest.approx(
            CATALOG_VALIDATION_SECONDS + 0.012
        )
