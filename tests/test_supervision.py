"""Shard supervision: the state machine, failover, and conservation.

The contract under test is the module docstring of
:mod:`repro.service.supervision`: shard health is judged from
counters (never wall clocks), escalation follows healthy → suspect →
down → restarting → healthy, restarts rebuild the shard from the
gateway's recipe with fresh breaker state, and — the tier's hard
promise — no request is silently lost or duplicated: every accepted
request ends in exactly one of completed / failed-over / failed, and
``submitted == completed + failed_over + failed + rejected`` holds at
every quiescent point, including across kills and restarts.
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.synthetic import populate_database
from repro.common.errors import ServiceOverloadError, ShardDownError
from repro.service import ShardedQueryService
from repro.service.supervision import DOWN, HEALTHY, RESTARTING, SUSPECT
from repro.storage import Database
from repro.workloads.traffic import HeavyTrafficSpec, to_service_requests


def traffic(requests=24, shapes=5, seed=0):
    spec = HeavyTrafficSpec(
        requests=requests, query_shapes=shapes, tenants=2, seed=seed
    )
    return to_service_requests(spec)


def make_gateway(catalog, shards=3, seed=7, **kwargs):
    database = Database(catalog)
    populate_database(database, seed=seed)
    return ShardedQueryService(database, shards=shards, capacity=16, **kwargs)


def assert_conserved(gateway):
    outcomes = gateway.request_outcomes()
    assert outcomes["submitted"] == (
        outcomes["completed"]
        + outcomes["failed_over"]
        + outcomes["failed"]
        + outcomes["rejected"]
    ), outcomes
    return outcomes


class TestStateMachine:
    """Deterministic supervision transitions from shard counters."""

    def test_idle_healthy_shards_stay_healthy(self):
        catalog, _queries, _requests = traffic()
        gateway = make_gateway(catalog)
        try:
            assert gateway.supervisor.check() == []
            assert set(gateway.supervisor.states().values()) == {HEALTHY}
        finally:
            gateway.shutdown()

    def test_killed_shard_goes_down_and_restarts(self):
        catalog, _queries, requests = traffic()
        gateway = make_gateway(catalog)
        try:
            target = gateway.shard_for(requests[0].query)
            old_service = target.service
            old_generation = target.generation
            target.kill()
            sweep = gateway.supervisor.check()
            assert (target.index, HEALTHY, DOWN) in sweep
            assert (target.index, DOWN, RESTARTING) in sweep
            assert (target.index, RESTARTING, HEALTHY) in sweep
            assert gateway.supervisor.state(target.index) == HEALTHY
            assert gateway.supervisor.counts()["restarts"] == 1
            assert target.alive
            assert target.generation == old_generation + 1
            assert target.service is not old_service
        finally:
            gateway.shutdown()

    def test_restart_rebuilds_cache_breaker_and_queue(self):
        catalog, _queries, requests = traffic()
        gateway = make_gateway(catalog)
        try:
            target = gateway.shard_for(requests[0].query)
            for request in requests:
                gateway.run(request.query, request.bindings, tag=request.tag)
            assert target.service.cache.stats.lookups > 0
            old_resilience = target.service.resilience
            target.kill()
            gateway.supervisor.check()
            stats = target.service.cache.stats
            assert (stats.lookups, stats.hits, stats.misses) == (0, 0, 0)
            assert target.service.resilience is not old_resilience
            assert target.pending == 0
        finally:
            gateway.shutdown()

    def test_hang_escalates_suspect_then_down(self):
        catalog, _queries, requests = traffic()
        gateway = make_gateway(catalog)
        try:
            target = gateway.shard_for(requests[0].query)
            target.inject_fault("hang")
            future = gateway.submit(requests[0].query, requests[0].bindings)
            assert target._hanging.wait(timeout=30.0)
            first = gateway.supervisor.check()
            assert (target.index, HEALTHY, SUSPECT) in first
            assert gateway.supervisor.counts()["restarts"] == 0
            second = gateway.supervisor.check()
            assert (target.index, SUSPECT, DOWN) in second
            assert gateway.supervisor.counts()["restarts"] == 1
            # The wedged request was not lost: it completed degraded.
            result = future.result(timeout=60.0)
            assert result.execution is not None
            outcomes = assert_conserved(gateway)
            assert outcomes["failed_over"] == 1
        finally:
            gateway.shutdown()

    def test_slow_shard_is_suspect_without_restart(self):
        catalog, _queries, requests = traffic()
        gateway = make_gateway(catalog)
        try:
            target = gateway.shard_for(requests[0].query)
            target.inject_fault("slow", count=2)
            for request in requests[:6]:
                gateway.run(request.query, request.bindings)
            first = gateway.supervisor.check()
            assert (target.index, HEALTHY, SUSPECT) in first
            second = gateway.supervisor.check()
            assert (target.index, SUSPECT, HEALTHY) in second
            assert gateway.supervisor.counts()["restarts"] == 0
        finally:
            gateway.shutdown()

    def test_manual_restart_when_auto_restart_is_off(self):
        catalog, _queries, requests = traffic()
        gateway = make_gateway(catalog, supervisor_auto_restart=False)
        try:
            target = gateway.shard_for(requests[0].query)
            target.kill()
            gateway.supervisor.check()
            assert gateway.supervisor.state(target.index) == DOWN
            assert not gateway.supervisor.is_servable(target)
            # Requests keep completing through failover meanwhile.
            result = gateway.run(requests[0].query, requests[0].bindings)
            assert result.execution is not None
            gateway.supervisor.restart_shard(target)
            assert gateway.supervisor.state(target.index) == HEALTHY
            assert gateway.supervisor.is_servable(target)
        finally:
            gateway.shutdown()

    def test_down_error_is_typed(self):
        catalog, _queries, requests = traffic()
        gateway = make_gateway(catalog)
        try:
            target = gateway.shard_for(requests[0].query)
            target.kill()
            error = gateway.supervisor.down_error(target, signature="sig")
            assert isinstance(error, ShardDownError)
            assert error.shard == target.index
            assert error.signature == "sig"
            assert error.reason == "crashed"
        finally:
            gateway.shutdown()


class TestFailoverConservation:
    """No request silently lost or duplicated, whatever dies."""

    def test_run_fails_over_from_a_dead_shard(self):
        catalog, _queries, requests = traffic()
        gateway = make_gateway(catalog)
        try:
            target = gateway.shard_for(requests[0].query)
            target.kill()
            results = [
                gateway.run(
                    request.query,
                    request.bindings,
                    tag=request.tag,
                    tenant=request.tenant,
                )
                for request in requests
            ]
            assert all(result.execution is not None for result in results)
            outcomes = assert_conserved(gateway)
            assert outcomes["failed"] == 0
            assert outcomes["failed_over"] > 0
            assert outcomes["failover_reasons"].get("crashed", 0) > 0
        finally:
            gateway.shutdown()

    def test_submit_futures_resolve_despite_kill(self):
        catalog, _queries, requests = traffic()
        gateway = make_gateway(catalog)
        try:
            target = gateway.shard_for(requests[0].query)
            target.kill()
            futures = [
                gateway.submit(request.query, request.bindings)
                for request in requests[:8]
            ]
            results = [future.result(timeout=60.0) for future in futures]
            assert all(result.execution is not None for result in results)
            assert_conserved(gateway)
        finally:
            gateway.shutdown()

    def test_run_batch_routes_around_a_dead_shard(self):
        catalog, _queries, requests = traffic()
        gateway = make_gateway(catalog)
        try:
            target = gateway.shard_for(requests[0].query)
            target.kill()
            results = gateway.run_batch(requests)
            assert len(results) == len(requests)
            assert all(result.execution is not None for result in results)
            outcomes = assert_conserved(gateway)
            assert outcomes["failed"] == 0
        finally:
            gateway.shutdown()

    def test_single_shard_gateway_uses_the_standby_path(self):
        catalog, _queries, requests = traffic()
        gateway = make_gateway(catalog, shards=1)
        try:
            gateway.shards[0].kill()
            result = gateway.run(requests[0].query, requests[0].bindings)
            assert result.execution is not None
            outcomes = assert_conserved(gateway)
            assert outcomes["failed_over"] == 1
        finally:
            gateway.shutdown()

    def test_mid_stream_kill_with_supervised_recovery(self):
        catalog, _queries, requests = traffic(requests=30)
        gateway = make_gateway(catalog)
        try:
            target = gateway.shard_for(requests[10].query)
            for index, request in enumerate(requests):
                if index == 10:
                    target.kill()
                if index == 20:
                    gateway.supervisor.check()
                gateway.run(
                    request.query, request.bindings, tenant=request.tenant
                )
            outcomes = assert_conserved(gateway)
            assert outcomes["completed"] + outcomes["failed_over"] == 30
            assert gateway.supervisor.counts()["restarts"] == 1
            # Quota and queue accounting drained exactly.
            assert gateway._tenant_inflight == {}
            assert all(shard.pending == 0 for shard in gateway.shards)
        finally:
            gateway.shutdown()


class TestOverloadHints:
    """Typed rejections carry a seeded, reproducible retry hint."""

    def test_queue_full_rejection_has_retry_after_hint(self):
        catalog, _queries, requests = traffic()
        gateway = make_gateway(catalog, max_pending=1)
        try:
            target = gateway.shard_for(requests[0].query)
            target.reserve(1)
            with pytest.raises(ServiceOverloadError) as excinfo:
                gateway.run(requests[0].query, requests[0].bindings)
            error = excinfo.value
            assert error.reason == "shard_queue_full"
            assert error.retry_after_hint is not None
            assert 0.0 < error.retry_after_hint < 0.3
            target.release(1)
            assert_conserved(gateway)
        finally:
            gateway.shutdown()

    def test_hints_are_deterministic_per_seed(self):
        catalog, _queries, requests = traffic()
        hints = []
        for _ in range(2):
            gateway = make_gateway(catalog, max_pending=1, backoff_seed=3)
            try:
                target = gateway.shard_for(requests[0].query)
                target.reserve(1)
                run_hints = []
                for _attempt in range(3):
                    with pytest.raises(ServiceOverloadError) as excinfo:
                        gateway.run(requests[0].query, requests[0].bindings)
                    run_hints.append(excinfo.value.retry_after_hint)
                target.release(1)
                hints.append(run_hints)
            finally:
                gateway.shutdown()
        assert hints[0] == hints[1]
        # Successive rejections back off: hints grow exponentially.
        assert hints[0][0] < hints[0][1] < hints[0][2]


class QuotaMachine:
    """Drives one gateway through a random op sequence for Hypothesis."""

    def __init__(self, catalog, requests):
        self.requests = requests
        self.gateway = make_gateway(
            catalog, shards=2, tenant_quota=2, execute=False
        )

    def apply(self, op):
        kind, value = op
        if kind == "serve":
            request = self.requests[value % len(self.requests)]
            try:
                self.gateway.run(
                    request.query, request.bindings, tenant=request.tenant
                )
            except ServiceOverloadError:
                pass
        elif kind == "kill":
            self.gateway.shards[value % len(self.gateway.shards)].kill()
        else:
            self.gateway.supervisor.check()

    def close(self):
        self.gateway.shutdown()


operations = st.lists(
    st.tuples(st.sampled_from(["serve", "kill", "check"]), st.integers(0, 7)),
    min_size=1,
    max_size=24,
)


class TestQuotaConservationProperty:
    """Hypothesis: in-flight accounting survives any kill/restart mix."""

    @settings(max_examples=25, deadline=None)
    @given(ops=operations)
    def test_quota_and_queue_accounting_always_drain(self, ops):
        catalog, _queries, requests = traffic(requests=8)
        machine = QuotaMachine(catalog, requests)
        try:
            for op in ops:
                machine.apply(op)
            gateway = machine.gateway
            outcomes = assert_conserved(gateway)
            assert outcomes["failed"] == 0
            # Synchronous serving: nothing is in flight between ops,
            # so every reservation must have been released exactly
            # once — across failover, kills, and restarts.
            assert gateway._tenant_inflight == {}
            assert all(shard.pending == 0 for shard in gateway.shards)
        finally:
            machine.close()

    @pytest.mark.slow
    def test_threaded_stress_conserves_under_kills(self):
        catalog, _queries, requests = traffic(requests=8)
        gateway = make_gateway(
            catalog, shards=3, tenant_quota=4, execute=False
        )
        errors = []

        def worker(offset):
            for round_index in range(12):
                request = requests[(offset + round_index) % len(requests)]
                try:
                    gateway.run(
                        request.query,
                        request.bindings,
                        tenant=request.tenant,
                    )
                except ServiceOverloadError:
                    pass
                except Exception as error:  # noqa: BLE001 — collected
                    errors.append(error)

        try:
            threads = [
                threading.Thread(target=worker, args=(index,))
                for index in range(8)
            ]
            for thread in threads:
                thread.start()
            for round_index in range(6):
                gateway.shards[round_index % 3].kill()
                gateway.supervisor.check()
            for thread in threads:
                thread.join()
            gateway.supervisor.check()
            assert errors == []
            outcomes = assert_conserved(gateway)
            assert outcomes["failed"] == 0
            assert gateway._tenant_inflight == {}
            assert all(shard.pending == 0 for shard in gateway.shards)
        finally:
            gateway.shutdown()
