"""Property-based round-trips over randomly generated physical plans.

Hypothesis builds random plan DAGs from the full physical algebra and
checks that serialization, cost evaluation, and structural identity
are mutually consistent.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra.expressions import (
    Comparison,
    ComparisonOp,
    JoinPredicate,
    SelectionPredicate,
    UserVariable,
)
from repro.algebra.physical import (
    BTreeScan,
    ChoosePlan,
    FileScan,
    Filter,
    FilterBTreeScan,
    HashJoin,
    IndexJoin,
    MergeJoin,
    Project,
    Sort,
)
from repro.catalog import build_synthetic_catalog, default_relation_specs
from repro.cost.formulas import CostModel
from repro.cost.parameters import Bindings, Parameter, ParameterSpace, Valuation
from repro.executor.access_module import AccessModule

RELATIONS = ("R1", "R2")
ATTRIBUTES = ("a", "b", "c")


def _predicate(relation):
    return SelectionPredicate(
        Comparison(
            "%s.a" % relation, ComparisonOp.LT, UserVariable("v_%s" % relation)
        ),
        selectivity_parameter="sel_%s" % relation,
    )


@st.composite
def leaf_plans(draw):
    relation = draw(st.sampled_from(RELATIONS))
    kind = draw(st.sampled_from(["file", "btree", "fbs"]))
    if kind == "file":
        return Filter(FileScan(relation), _predicate(relation))
    if kind == "btree":
        return BTreeScan(relation, draw(st.sampled_from(ATTRIBUTES)))
    return FilterBTreeScan(relation, "a", _predicate(relation))


@st.composite
def plans(draw, depth=3):
    if depth <= 0:
        return draw(leaf_plans())
    kind = draw(
        st.sampled_from(
            ["leaf", "sort", "project", "hash", "merge", "index", "choose"]
        )
    )
    if kind == "leaf":
        return draw(leaf_plans())
    if kind == "sort":
        child = draw(plans(depth=depth - 1))
        return Sort(child, "R1.b")
    if kind == "project":
        child = draw(plans(depth=depth - 1))
        return Project(child, ("R1.a",))
    if kind == "choose":
        first = draw(plans(depth=depth - 1))
        second = draw(plans(depth=depth - 1))
        return ChoosePlan([first, second])
    predicate = JoinPredicate("R1.b", "R2.c")
    if kind == "index":
        outer = draw(plans(depth=depth - 1))
        return IndexJoin(outer, "R2", "c", predicate)
    left = draw(plans(depth=depth - 1))
    right = draw(plans(depth=depth - 1))
    if kind == "hash":
        return HashJoin(left, right, predicate)
    return MergeJoin(left, right, predicate)


@pytest.fixture(scope="module")
def catalog():
    return build_synthetic_catalog(default_relation_specs(2, seed=0), seed=0)


def _space():
    return ParameterSpace(
        [Parameter.selectivity("sel_R1"), Parameter.selectivity("sel_R2")]
    )


class TestRandomPlanProperties:
    @settings(max_examples=60, deadline=None)
    @given(plan=plans())
    def test_serialization_round_trip(self, plan):
        module = AccessModule.from_plan(plan, "random")
        rebuilt = module.materialize()
        assert rebuilt.signature() == plan.signature()
        assert rebuilt.node_count() == plan.node_count()
        assert rebuilt.choose_plan_count() == plan.choose_plan_count()

    @settings(max_examples=60, deadline=None)
    @given(plan=plans())
    def test_round_trip_preserves_costs(self, catalog, plan):
        model_a = CostModel(catalog, Valuation.bounds(_space()))
        model_b = CostModel(catalog, Valuation.bounds(_space()))
        rebuilt = AccessModule.from_plan(plan, "random").materialize()
        cost_a = model_a.evaluate(plan).cost
        cost_b = model_b.evaluate(rebuilt).cost
        assert cost_a.lower == pytest.approx(cost_b.lower)
        assert cost_a.upper == pytest.approx(cost_b.upper)

    @settings(max_examples=60, deadline=None)
    @given(plan=plans(), sel1=st.floats(0, 1), sel2=st.floats(0, 1))
    def test_runtime_cost_within_compile_interval(self, catalog, plan,
                                                  sel1, sel2):
        space = _space()
        compile_cost = CostModel(
            catalog, Valuation.bounds(space)
        ).evaluate(plan).cost
        bindings = Bindings().bind("sel_R1", sel1).bind("sel_R2", sel2)
        runtime_cost = CostModel(
            catalog, Valuation.runtime(space, bindings)
        ).evaluate(plan).cost
        tolerance = 1e-9 + compile_cost.upper * 1e-9
        assert compile_cost.lower - tolerance <= runtime_cost.lower
        assert runtime_cost.upper <= compile_cost.upper + tolerance

    @settings(max_examples=40, deadline=None)
    @given(plan=plans())
    def test_node_counts_consistent(self, plan):
        distinct = plan.node_count()
        expanded = plan.tree_node_count()
        assert distinct <= expanded
        assert len(list(plan.walk_unique())) == distinct

    @settings(max_examples=40, deadline=None)
    @given(plan=plans())
    def test_signature_deterministic(self, plan):
        assert plan.signature() == plan.signature()
