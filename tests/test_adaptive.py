"""Run-time adaptive execution (the Section 7 extension).

The adaptive executor materializes decided subplans and feeds their
*observed* cardinalities into the decisions above, recovering from
wrong selectivity estimates that defeat plain start-up resolution.
"""


from repro.algebra.physical import Materialized
from repro.executor import (
    execute_adaptively,
    execute_plan,
    resolve_dynamic_plan,
)
from repro.optimizer import optimize_dynamic
from repro.scenarios import predicted_execution_seconds
from repro.workloads import random_bindings

from tests._reference import reference_rows, row_multiset


def _misestimated_bindings(workload, claimed, actual, seed=0):
    """Bindings whose selectivity *estimates* are wrong.

    The user-variable values implement the *actual* selectivity, while
    the selectivity parameters (what decision procedures see) claim
    ``claimed``.
    """
    bindings = random_bindings(workload, seed=seed)
    for relation in workload.query.relations:
        domain = workload.catalog.domain_size(relation, "a")
        bindings.bind("sel_%s" % relation, claimed)
        bindings.bind_variable("v_%s" % relation, actual * domain)
    return bindings


class TestCorrectness:
    def test_results_match_reference(self, workload2, database2):
        dynamic = optimize_dynamic(workload2.catalog, workload2.query)
        bindings = random_bindings(workload2, seed=7)
        result, report = execute_adaptively(
            dynamic.plan, database2, bindings, workload2.query.parameter_space
        )
        keys = ["R1.a", "R2.a"]
        expected = reference_rows(workload2, database2, bindings)
        assert row_multiset(result.records, keys) == row_multiset(
            expected, keys
        )
        assert report.decisions == dynamic.plan.choose_plan_count()

    def test_results_match_plain_execution(self, workload3, database3):
        dynamic = optimize_dynamic(workload3.catalog, workload3.query)
        bindings = random_bindings(workload3, seed=3)
        adaptive, _ = execute_adaptively(
            dynamic.plan, database3, bindings, workload3.query.parameter_space
        )
        plain = execute_plan(
            dynamic.plan, database3, bindings, workload3.query.parameter_space
        )
        keys = ["R1.a", "R2.a", "R3.a", "R4.a"]
        assert row_multiset(adaptive.records, keys) == row_multiset(
            plain.records, keys
        )

    def test_static_plan_runs_unchanged(self, workload2, database2):
        from repro.optimizer import optimize_static

        static = optimize_static(workload2.catalog, workload2.query)
        bindings = random_bindings(workload2, seed=7)
        result, report = execute_adaptively(
            static.plan, database2, bindings, workload2.query.parameter_space
        )
        assert report.decisions == 0
        assert report.materialized_subplans == 0
        plain = execute_plan(
            static.plan, database2, bindings, workload2.query.parameter_space
        )
        assert result.row_count == plain.row_count


class TestObservation:
    def test_inner_chooses_materialized(self, workload2, database2):
        dynamic = optimize_dynamic(workload2.catalog, workload2.query)
        bindings = random_bindings(workload2, seed=11)
        _, report = execute_adaptively(
            dynamic.plan, database2, bindings, workload2.query.parameter_space
        )
        assert report.materialized_subplans >= 1
        assert report.materialized_records >= 0
        assert report.final_plan is not None
        assert report.final_plan.choose_plan_count() == 0

    def test_final_plan_replays_temporaries(self, workload2, database2):
        dynamic = optimize_dynamic(workload2.catalog, workload2.query)
        bindings = random_bindings(workload2, seed=11)
        _, report = execute_adaptively(
            dynamic.plan, database2, bindings, workload2.query.parameter_space
        )
        materialized_leaves = [
            node
            for node in report.final_plan.walk_unique()
            if isinstance(node, Materialized)
        ]
        assert materialized_leaves  # the winner consumes temporaries

    def test_waste_accounting(self, workload2, database2):
        dynamic = optimize_dynamic(workload2.catalog, workload2.query)
        bindings = random_bindings(workload2, seed=11)
        _, report = execute_adaptively(
            dynamic.plan, database2, bindings, workload2.query.parameter_space
        )
        assert report.wasted_records >= 0


class TestRecoveryFromMisestimation:
    """The reason this extension exists: estimates say 'tiny', data says
    'half the relation'.  Start-up resolution is fooled; the adaptive
    executor observes and recovers."""

    def _true_bindings(self, workload, actual):
        bindings = random_bindings(workload, seed=0)
        for relation in workload.query.relations:
            domain = workload.catalog.domain_size(relation, "a")
            bindings.bind("sel_%s" % relation, actual)
            bindings.bind_variable("v_%s" % relation, actual * domain)
        return bindings

    def test_adaptive_beats_fooled_startup_on_multiway_join(self, workload3,
                                                            database3):
        # Join-order errors compound on a 4-way join, so observing the
        # actual selection cardinalities pays off handsomely.
        workload, database = workload3, database3
        space = workload.query.parameter_space
        dynamic = optimize_dynamic(workload.catalog, workload.query)

        lied = _misestimated_bindings(workload, claimed=0.05, actual=0.9)
        truth = self._true_bindings(workload, actual=0.9)

        # Start-up resolution trusts the wrong estimates...
        fooled_plan, _ = resolve_dynamic_plan(
            dynamic.plan, workload.catalog, space, lied
        )
        fooled_cost = predicted_execution_seconds(
            fooled_plan, workload.catalog, space, truth
        )
        # ...the adaptive executor observes actual cardinalities.
        _, report = execute_adaptively(
            dynamic.plan, database, lied, space
        )
        adaptive_equivalent = _strip_materialized(report.final_plan)
        adaptive_cost = predicted_execution_seconds(
            adaptive_equivalent, workload.catalog, space, truth
        )
        assert adaptive_cost < fooled_cost * 0.8

    def test_adaptive_recovers_join_structure_on_two_way(self, workload2,
                                                         database2):
        # On query 2 the fooled plan (index join) never scans R2 at
        # all, so paying to materialize R2's selection can cost more
        # overall — but the *join-level* decision is still corrected:
        # the adaptive executor picks the same operator the true
        # optimum uses.  An honest limitation worth pinning down.
        workload, database = workload2, database2
        space = workload.query.parameter_space
        dynamic = optimize_dynamic(workload.catalog, workload.query)
        lied = _misestimated_bindings(workload, claimed=0.02, actual=0.6)
        truth = self._true_bindings(workload, actual=0.6)
        optimal_plan, _ = resolve_dynamic_plan(
            dynamic.plan, workload.catalog, space, truth
        )
        _, report = execute_adaptively(dynamic.plan, database, lied, space)
        assert (
            report.final_plan.operator_name()
            == optimal_plan.operator_name()
        )

    def test_adaptive_row_results_still_correct_under_lies(self, workload2,
                                                           database2):
        lied = _misestimated_bindings(workload2, claimed=0.02, actual=0.6)
        dynamic = optimize_dynamic(workload2.catalog, workload2.query)
        result, _ = execute_adaptively(
            dynamic.plan, database2, lied, workload2.query.parameter_space
        )
        keys = ["R1.a", "R2.a"]
        expected = reference_rows(workload2, database2, lied)
        assert row_multiset(result.records, keys) == row_multiset(
            expected, keys
        )


def _strip_materialized(plan):
    """Replace Materialized temporaries by their original subplans."""
    from repro.executor.startup import _rebuild

    if isinstance(plan, Materialized):
        return _strip_materialized(plan.original)
    children = [_strip_materialized(child) for child in plan.inputs()]
    return _rebuild(plan, children)
