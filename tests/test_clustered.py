"""Clustered indexes: sorted storage, cheap range fetches, and their
effect on plan choice.

The paper's experiments use *unclustered* B-trees (which is what makes
index scans fragile); clustered indexes are the natural extension —
matching records sit on adjacent pages, so index scans stay cheap at
any selectivity and the choose-plan trade-off shifts.
"""

import pytest

from repro.algebra.physical import FilterBTreeScan
from repro.catalog import (
    IndexInfo,
    build_synthetic_catalog,
    default_relation_specs,
    generate_rows,
)
from repro.cost.formulas import CostModel
from repro.cost.parameters import Bindings, Valuation
from repro.executor import execute_plan
from repro.storage import Database
from repro.workloads.queries import make_selection_predicate


def clustered_catalog():
    """R1's selection attribute carries a *clustered* B-tree."""
    specs = default_relation_specs(1, seed=0)
    specs[0].indexed_attributes = ("b", "c")  # a handled separately
    catalog = build_synthetic_catalog(specs, seed=0)
    catalog.add_index(IndexInfo("R1", "a", clustered=True))
    return catalog


@pytest.fixture(scope="module")
def clustered_setup():
    catalog = clustered_catalog()
    database = Database(catalog)
    database.load("R1", generate_rows(catalog, "R1", seed=0))
    from repro.optimizer import QuerySpec

    query = QuerySpec(
        ["R1"],
        {"R1": make_selection_predicate("R1")},
        [],
        name="clustered-q1",
    )
    return catalog, database, query


class TestClusteredStorage:
    def test_rows_stored_in_attribute_order(self, clustered_setup):
        _, database, _ = clustered_setup
        values = [
            record["R1.a"] for record in database.heap("R1").all_records()
        ]
        assert values == sorted(values)

    def test_index_marked_clustered(self, clustered_setup):
        catalog, _, _ = clustered_setup
        assert catalog.index_on("R1", "a").clustered


class TestClusteredExecution:
    def test_range_scan_reads_adjacent_pages_only(self, clustered_setup):
        catalog, database, query = clustered_setup
        domain = catalog.domain_size("R1", "a")
        selectivity = 0.5
        bindings = Bindings().bind("sel_R1", selectivity).bind_variable(
            "v_R1", selectivity * domain
        )
        plan = FilterBTreeScan("R1", "a", query.selection_for("R1"))
        executed = execute_plan(
            plan, database, bindings, query.parameter_space
        )
        matches = executed.row_count
        # Adjacent storage: page reads ~ matches/4, not ~ matches.
        assert executed.io_snapshot["pages_read"] < matches / 2 + 25

    def test_clustered_beats_unclustered_execution(self, clustered_setup):
        catalog, database, query = clustered_setup
        # An equivalent unclustered setup for comparison.
        specs = default_relation_specs(1, seed=0)
        flat_catalog = build_synthetic_catalog(specs, seed=0)
        flat_database = Database(flat_catalog)
        flat_database.load("R1", generate_rows(flat_catalog, "R1", seed=0))

        domain = catalog.domain_size("R1", "a")
        bindings = Bindings().bind("sel_R1", 0.6).bind_variable(
            "v_R1", 0.6 * domain
        )
        plan = FilterBTreeScan("R1", "a", query.selection_for("R1"))
        clustered_io = execute_plan(
            plan, database, bindings, query.parameter_space
        ).io_snapshot["pages_read"]
        unclustered_io = execute_plan(
            plan, flat_database, bindings, query.parameter_space
        ).io_snapshot["pages_read"]
        assert clustered_io < unclustered_io / 2


class TestClusteredCosting:
    def test_cost_model_knows_clustering(self, clustered_setup):
        catalog, _, query = clustered_setup
        flat_catalog = build_synthetic_catalog(
            default_relation_specs(1, seed=0), seed=0
        )
        bindings = Bindings().bind("sel_R1", 0.6)
        plan = FilterBTreeScan("R1", "a", query.selection_for("R1"))
        clustered_cost = CostModel(
            catalog, Valuation.runtime(query.parameter_space, bindings)
        ).evaluate(plan).cost.lower
        unclustered_cost = CostModel(
            flat_catalog, Valuation.runtime(query.parameter_space, bindings)
        ).evaluate(plan).cost.lower
        assert clustered_cost < unclustered_cost / 2

    def test_clustering_moves_the_decision_crossover(self, clustered_setup):
        # Unclustered: the index scan wins only below selectivity ~0.1.
        # Clustered: it stays cheap (adjacent pages) and wins at any
        # moderate selectivity; only near selectivity 1 does the plain
        # file scan edge it out (the index overhead on top of reading
        # everything), so the choose-plan operator rightly survives.
        catalog, _, query = clustered_setup
        from repro.executor import resolve_dynamic_plan
        from repro.optimizer import QuerySpec, optimize_dynamic
        from repro.workloads.queries import make_selection_predicate

        clustered_dynamic = optimize_dynamic(catalog, query)
        assert clustered_dynamic.plan.choose_plan_count() >= 1

        flat_catalog = build_synthetic_catalog(
            default_relation_specs(1, seed=0), seed=0
        )
        flat_query = QuerySpec(
            ["R1"], {"R1": make_selection_predicate("R1")}, [], name="q1"
        )
        flat_dynamic = optimize_dynamic(flat_catalog, flat_query)

        bindings = Bindings().bind("sel_R1", 0.6)
        clustered_choice, _ = resolve_dynamic_plan(
            clustered_dynamic.plan, catalog, query.parameter_space, bindings
        )
        flat_choice, _ = resolve_dynamic_plan(
            flat_dynamic.plan, flat_catalog,
            flat_query.parameter_space, bindings,
        )
        assert clustered_choice.operator_name() == "Filter-B-tree-Scan"
        assert flat_choice.operator_name() == "Filter"

    def test_unclustered_keeps_the_choice(self):
        # Contrast: the paper's unclustered setup retains both.
        from repro.optimizer import QuerySpec, optimize_dynamic

        flat_catalog = build_synthetic_catalog(
            default_relation_specs(1, seed=0), seed=0
        )
        query = QuerySpec(
            ["R1"], {"R1": make_selection_predicate("R1")}, [], name="q1"
        )
        result = optimize_dynamic(flat_catalog, query)
        assert result.plan.choose_plan_count() >= 1
