"""EXPLAIN ANALYZE: q-error arithmetic, profiles, CLI golden files.

The rendered ``explain --analyze`` output is deterministic by
construction — every annotated quantity (estimated and actual
cardinality, simulated cost, page counts) derives from seeded data and
the simulated I/O model, never from wall clocks — so the CLI output is
pinned with golden files.  Regenerate intentionally changed goldens
with ``pytest --update-goldens``.
"""

import pytest

from repro.__main__ import main
from repro.catalog import populate_database
from repro.observability import Tracer, q_error
from repro.observability.accuracy import cost_model_accuracy
from repro.observability.explain import explain_analyze
from repro.executor.engine import execute_plan
from repro.optimizer.optimizer import optimize_dynamic
from repro.storage import Database
from repro.workloads import random_bindings


class TestQError:
    def test_exact_estimate_is_one(self):
        assert q_error(42.0, 42.0) == 1.0

    def test_symmetric_over_and_under(self):
        assert q_error(10.0, 100.0) == pytest.approx(10.0)
        assert q_error(100.0, 10.0) == pytest.approx(10.0)

    def test_floor_guards_zero_actuals(self):
        # An empty result with a tiny estimate is a perfect prediction,
        # not a divide-by-zero.
        assert q_error(0.0, 0.0) == 1.0
        assert q_error(0.5, 0.0) == 1.0
        assert q_error(8.0, 0.0) == pytest.approx(8.0)

    def test_custom_floor(self):
        assert q_error(0.2, 0.0, floor=0.1) == pytest.approx(2.0)

    def test_never_below_one(self):
        for estimate, actual in ((3.0, 4.0), (4.0, 3.0), (0.0, 1.0)):
            assert q_error(estimate, actual) >= 1.0


class TestProfile:
    def test_hand_built_plan_q_errors(self, workload1):
        """Profile q-errors equal the hand-computed est/act ratios."""
        plan = optimize_dynamic(workload1.catalog, workload1.query).plan
        database = Database(workload1.catalog)
        populate_database(database, seed=0)
        bindings = random_bindings(workload1, seed=4)
        result = execute_plan(
            plan,
            database,
            bindings,
            workload1.query.parameter_space,
            tracer=Tracer(),
        )
        profile = result.profile
        assert profile.operators
        for operator in profile.operators:
            if operator.estimated_rows is None:
                continue
            expected = q_error(
                operator.estimated_rows.midpoint, float(operator.actual_rows)
            )
            assert operator.cardinality_q_error == pytest.approx(expected)
        # The summary aggregates exactly the per-operator errors.
        errors = profile.cardinality_q_errors()
        assert profile.max_q_error() == pytest.approx(max(errors))
        assert profile.mean_q_error() == pytest.approx(
            sum(errors) / len(errors)
        )

    def test_root_actual_rows_match_result(self, workload2, database2):
        plan = optimize_dynamic(workload2.catalog, workload2.query).plan
        bindings = random_bindings(workload2, seed=1)
        result = explain_analyze(
            plan, database2, bindings, workload2.query.parameter_space
        )
        root = result.profile.operators[0]
        assert root.depth == 0
        assert root.actual_rows == result.row_count

    def test_render_mentions_every_operator(self, workload2, database2):
        plan = optimize_dynamic(workload2.catalog, workload2.query).plan
        bindings = random_bindings(workload2, seed=1)
        result = explain_analyze(
            plan, database2, bindings, workload2.query.parameter_space
        )
        text = result.profile.render()
        for operator in result.profile.operators:
            assert operator.span.operator in text
        assert "q-error" in text


class TestExplainCli:
    @pytest.mark.parametrize("number", [1, 2, 3])
    def test_analyze_golden(self, capsys, golden, number):
        assert (
            main(
                [
                    "explain",
                    "--analyze",
                    "--query",
                    str(number),
                    "--seed",
                    "0",
                ]
            )
            == 0
        )
        golden("explain_q%d.txt" % number, capsys.readouterr().out)

    def test_analyze_static_golden(self, capsys, golden):
        assert (
            main(["explain", "--analyze", "--query", "2", "--static"]) == 0
        )
        golden("explain_q2_static.txt", capsys.readouterr().out)

    def test_plain_explain_prints_plan(self, capsys):
        assert main(["explain", "--query", "2"]) == 0
        out = capsys.readouterr().out
        assert "plan (dynamic):" in out
        assert "Choose-Plan" in out

    def test_explain_sql_argument(self, capsys):
        assert (
            main(
                [
                    "explain",
                    "--analyze",
                    "SELECT * FROM R1 WHERE R1.a < :v_R1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "EXPLAIN ANALYZE" in out
        assert "q-error" in out


class TestAccuracyReport:
    def test_structure_and_determinism(self):
        report = cost_model_accuracy(
            query_numbers=(1, 2), invocations=2, seed=0
        )
        again = cost_model_accuracy(
            query_numbers=(1, 2), invocations=2, seed=0
        )
        assert report.render() == again.render()
        overall = report.overall()
        assert overall.count > 0
        assert overall.max >= overall.p90 >= overall.p50 >= 1.0
        by_query = report.by_query()
        assert set(by_query) == {"query1", "query2"}
        by_operator = report.by_operator()
        assert "File-Scan" in by_operator

    def test_accuracy_cli_json(self, capsys):
        import json

        assert (
            main(
                [
                    "accuracy",
                    "--queries",
                    "1",
                    "--invocations",
                    "1",
                    "--json",
                ]
            )
            == 0
        )
        data = json.loads(capsys.readouterr().out)
        assert "overall" in data
        assert data["overall"]["count"] > 0

    def test_accuracy_cli_rejects_bad_queries(self, capsys):
        assert main(["accuracy", "--queries", "9"]) == 2
        assert main(["accuracy", "--queries", "x"]) == 2
        capsys.readouterr()
