"""The differential robustness gate and the ``chaos`` CLI.

Every paper query replayed under the recoverable combined profile
must *complete with the fault-free result multiset* — via retries and
mid-run degradation — and the resilience counters must land on the
exact values the per-site fault triggers imply.  The permanent-fault
profile must fail every query fast, typed, in one attempt.  Reports
are byte-identical across runs of the same (profile, seed, mode):
that is the property the CI chaos-smoke job pins.
"""

import json

import pytest

from repro.__main__ import main
from repro.resilience.chaos import (
    DEFAULT_QUERIES,
    SERVICE_SCENARIOS,
    rows_digest,
    rows_sequence_digest,
    run_chaos,
    run_service_chaos,
)

#: Exact per-query counters for ``transient-and-drop`` at seed 0.
#:
#: The transient rule triggers on a site's 2nd and 5th heap read;
#: queries 1 and 5 choose index plans doing only 3 and 6 heap reads
#: through a single site, so they hit one trigger each, while the
#: join pipelines of queries 2-4 hit both.  Every query crosses the
#: memory-drop threshold once.  Identical in row and batch modes
#: because the triggers count logical storage operations.
EXPECTED_TRANSIENT_AND_DROP = {
    1: {"transient_retries": 1, "degradations": 1},
    2: {"transient_retries": 2, "degradations": 1},
    3: {"transient_retries": 2, "degradations": 1},
    4: {"transient_retries": 2, "degradations": 1},
    5: {"transient_retries": 1, "degradations": 1},
}


class TestRecoverableProfiles:
    @pytest.mark.parametrize("mode", ("row", "batch"))
    def test_transient_and_drop_all_queries(self, mode):
        report = run_chaos("transient-and-drop", execution_mode=mode)
        assert report.passed, report.render()
        assert [o.number for o in report.outcomes] == list(DEFAULT_QUERIES)
        for outcome in report.outcomes:
            expected = EXPECTED_TRANSIENT_AND_DROP[outcome.number]
            assert outcome.outcome == "completed"
            assert outcome.rows_match
            assert outcome.digest == outcome.baseline_digest
            assert (
                outcome.resilience["transient_retries"]
                == expected["transient_retries"]
            )
            assert (
                outcome.resilience["degradations"]
                == expected["degradations"]
            )
            assert outcome.resilience["permanent_failures"] == 0
            assert outcome.resilience["fallback_activations"] == 0
            assert (
                outcome.injector["injected_transient"]
                == expected["transient_retries"]
            )
            assert outcome.injector["memory_drops_fired"] == 1
            assert outcome.injector["injected_permanent"] == 0

    def test_transient_only_profile(self):
        report = run_chaos("transient-io", query_numbers=(2,))
        assert report.passed
        (outcome,) = report.outcomes
        assert outcome.resilience["transient_retries"] == 2
        assert outcome.resilience["degradations"] == 0

    def test_memory_drop_only_profile(self):
        report = run_chaos("memory-drop", query_numbers=(2,))
        assert report.passed
        (outcome,) = report.outcomes
        assert outcome.resilience["transient_retries"] == 0
        assert outcome.resilience["degradations"] == 1


class TestFailFastProfile:
    def test_broken_disk_fails_every_query_typed(self):
        report = run_chaos("broken-disk", query_numbers=(1, 2))
        assert report.passed, report.render()
        for outcome in report.outcomes:
            assert outcome.expected == "fail-fast"
            assert outcome.outcome == "failed"
            assert outcome.failure["type"] == "PermanentIOError"
            assert outcome.attempts == 1
            assert outcome.injector["injected_permanent"] == 1
            assert outcome.resilience["permanent_failures"] == 1
            assert outcome.resilience["transient_retries"] == 0


class TestDeterminism:
    def test_same_seed_same_bytes(self):
        first = run_chaos("transient-and-drop", query_numbers=(1, 2))
        second = run_chaos("transient-and-drop", query_numbers=(1, 2))
        assert first.to_json() == second.to_json()

    def test_different_seed_different_report(self):
        base = run_chaos("flaky-storage", query_numbers=(2,), seed=0)
        other = run_chaos("flaky-storage", query_numbers=(2,), seed=3)
        assert base.to_json() != other.to_json()

    def test_report_json_roundtrips(self):
        report = run_chaos("transient-io", query_numbers=(1,))
        data = json.loads(report.to_json())
        assert data["passed"] is True
        assert data["profile"]["name"] == "transient-io"
        assert len(data["queries"]) == 1

    def test_rows_digest_is_order_insensitive(self):
        class FakeRecord:
            def __init__(self, **fields):
                self.fields = fields

            def as_dict(self):
                return dict(self.fields)

        a = FakeRecord(x=1, y=2)
        b = FakeRecord(x=3, y=4)
        assert rows_digest([a, b]) == rows_digest([b, a])
        assert rows_digest([a]) != rows_digest([b])


class TestMidQueryChaos:
    """Fault injection composed with mid-query re-optimization."""

    def test_memory_drop_with_reopt_keeps_counters_consistent(self):
        report = run_chaos("memory-drop", query_numbers=(3,), reopt="always")
        assert report.passed, report.render()
        (outcome,) = report.outcomes
        assert outcome.rows_match
        counts = outcome.resilience
        assert counts["degradations"] == 1
        assert counts["midquery_checkpoints"] >= 1
        assert counts["midquery_redecisions"] >= 1
        assert counts["incremental_redecisions"] >= 1

    def test_degradation_routes_through_incremental_redecision(self):
        """The memory-drop path re-decides incrementally, even reopt-off."""
        report = run_chaos("memory-drop", query_numbers=(2, 3))
        assert report.passed, report.render()
        for outcome in report.outcomes:
            assert outcome.resilience["degradations"] == 1
            assert outcome.resilience["incremental_redecisions"] == 1

    def test_skewed_bindings_force_midquery_switches(self):
        report = run_chaos(
            "none", query_numbers=(3,), reopt="always", skew=(0.02, 0.6)
        )
        assert report.passed, report.render()
        (outcome,) = report.outcomes
        assert outcome.rows_match
        assert outcome.resilience["midquery_switches"] >= 1
        data = report.to_dict()
        assert data["reopt"]["mode"] == "always"
        assert data["skew"] == [0.02, 0.6]

    def test_faults_during_reopt_reports_stay_byte_identical(self):
        first = run_chaos(
            "transient-and-drop",
            query_numbers=(3,),
            reopt="always",
            skew=(0.02, 0.6),
        )
        second = run_chaos(
            "transient-and-drop",
            query_numbers=(3,),
            reopt="always",
            skew=(0.02, 0.6),
        )
        assert first.passed, first.render()
        assert first.to_json() == second.to_json()

    def test_reopt_off_report_has_null_fields(self):
        report = run_chaos("none", query_numbers=(1,))
        data = report.to_dict()
        assert data["reopt"] is None
        assert data["skew"] is None


class TestChaosCli:
    def test_json_report_and_exit_zero(self, capsys):
        code = main(
            ["chaos", "--profile", "transient-io", "--queries", "1", "--json"]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["passed"] is True

    def test_table_rendering(self, capsys):
        code = main(["chaos", "--profile", "memory-drop", "--queries", "1"])
        assert code == 0
        output = capsys.readouterr().out
        assert "PASS" in output
        assert "degradations=1" in output

    def test_output_file(self, capsys, tmp_path):
        path = tmp_path / "report.json"
        code = main(
            [
                "chaos",
                "--profile",
                "transient-io",
                "--queries",
                "1",
                "--output",
                str(path),
            ]
        )
        assert code == 0
        data = json.loads(path.read_text())
        assert data["passed"] is True

    def test_unknown_profile_exits_2(self, capsys):
        assert main(["chaos", "--profile", "nope"]) == 2
        assert "nope" in capsys.readouterr().out

    def test_bad_query_numbers_exit_2(self, capsys):
        assert main(["chaos", "--queries", "9"]) == 2
        assert main(["chaos", "--queries", "x"]) == 2

    def test_reopt_and_skew_flags(self, capsys):
        code = main(
            [
                "chaos",
                "--profile",
                "none",
                "--queries",
                "3",
                "--reopt",
                "always",
                "--skew",
                "0.02:0.6",
                "--json",
            ]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["passed"] is True
        assert data["reopt"]["mode"] == "always"
        assert data["skew"] == [0.02, 0.6]
        (query,) = data["queries"]
        assert query["resilience"]["midquery_switches"] >= 1

    def test_bad_skew_exits_2(self, capsys):
        assert main(["chaos", "--skew", "nope"]) == 2
        assert main(["chaos", "--skew", "0.1:0.2:0.3"]) == 2
        assert "DECLARED:ACTUAL" in capsys.readouterr().out


class TestServiceChaos:
    """Shard-fault scenarios: byte-identical rows, exact conservation."""

    @pytest.mark.parametrize("scenario", SERVICE_SCENARIOS)
    def test_scenarios_pass(self, scenario):
        report = run_service_chaos(
            scenario, seed=0, requests=24, shapes=5, inject_at=8
        )
        assert report.passed
        assert all(row["match"] for row in report.outcomes)
        assert report.conserved
        assert report.conservation["failed"] == 0
        assert report.supervision["restarts"] == report.expected_restarts

    def test_kill_shard_fails_over_until_restart(self):
        report = run_service_chaos(
            "kill-shard", seed=0, requests=24, shapes=5, inject_at=8
        )
        assert report.conservation["failed_over"] > 0
        states = [tuple(item) for item in report.transitions]
        assert (report.target_shard, "healthy", "down") in states
        assert (report.target_shard, "down", "restarting") in states
        assert (report.target_shard, "restarting", "healthy") in states

    def test_hang_shard_escalates_through_suspect(self):
        report = run_service_chaos(
            "hang-shard", seed=0, requests=24, shapes=5, inject_at=8
        )
        assert report.conservation["failed_over"] == 1
        states = [tuple(item) for item in report.transitions]
        assert (report.target_shard, "healthy", "suspect") in states
        assert (report.target_shard, "suspect", "down") in states

    def test_slow_shard_recovers_without_restart(self):
        report = run_service_chaos(
            "slow-shard", seed=0, requests=24, shapes=5, inject_at=8
        )
        assert report.conservation["failed_over"] == 0
        assert report.supervision["restarts"] == 0
        states = [tuple(item) for item in report.transitions]
        assert (report.target_shard, "healthy", "suspect") in states
        assert (report.target_shard, "suspect", "healthy") in states

    @pytest.mark.parametrize("scenario", ("kill-shard", "hang-shard"))
    def test_same_seed_same_bytes(self, scenario):
        first = run_service_chaos(
            scenario, seed=1, requests=24, shapes=5, inject_at=8
        )
        second = run_service_chaos(
            scenario, seed=1, requests=24, shapes=5, inject_at=8
        )
        assert first.to_json() == second.to_json()

    def test_report_json_roundtrips(self):
        report = run_service_chaos(
            "kill-shard", seed=0, requests=24, shapes=5, inject_at=8
        )
        data = json.loads(report.to_json())
        assert data["passed"] is True
        assert data["conserved"] is True
        assert len(data["requests"]) == 24
        assert data["expected_restarts"] == 1

    def test_unknown_scenario_is_typed(self):
        with pytest.raises(ValueError):
            run_service_chaos("melt-shard")

    def test_bad_indexes_are_typed(self):
        with pytest.raises(ValueError):
            run_service_chaos("kill-shard", requests=10, inject_at=9, heal_at=9)

    def test_rows_sequence_digest_is_order_sensitive(self):
        class Record:
            def __init__(self, value):
                self.value = value

            def as_dict(self):
                return {"v": self.value}

        forward = rows_sequence_digest([Record(1), Record(2)])
        backward = rows_sequence_digest([Record(2), Record(1)])
        assert forward != backward


class TestServiceChaosCli:
    def test_kill_shard_flag(self, capsys):
        code = main(
            [
                "chaos",
                "--kill-shard",
                "--requests",
                "18",
                "--inject-at",
                "6",
                "--json",
            ]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["scenario"] == "kill-shard"
        assert data["passed"] is True

    def test_slow_shard_table_render(self, capsys):
        code = main(
            ["chaos", "--slow-shard", "--requests", "18", "--inject-at", "6"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "service chaos 'slow-shard'" in out
        assert "PASS" in out

    def test_scenario_flags_are_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            main(["chaos", "--kill-shard", "--hang-shard"])

    def test_output_file(self, capsys, tmp_path):
        path = tmp_path / "service-chaos.json"
        code = main(
            [
                "chaos",
                "--hang-shard",
                "--requests",
                "18",
                "--inject-at",
                "6",
                "--output",
                str(path),
            ]
        )
        assert code == 0
        capsys.readouterr()
        data = json.loads(path.read_text())
        assert data["scenario"] == "hang-shard"
        assert data["passed"] is True

    def test_bad_indexes_exit_2(self, capsys):
        code = main(
            ["chaos", "--kill-shard", "--requests", "10", "--inject-at", "40"]
        )
        assert code == 2
        assert "inject_at" in capsys.readouterr().out
