"""Performance regression guards.

Loose wall-clock ceilings (10x typical) that catch accidental
exponential blow-ups — e.g. an unmemoized DAG walk or a rule-closure
regression — without flaking on machine noise.
"""

import time

import pytest

from repro.executor import AccessModule, resolve_dynamic_plan
from repro.optimizer import optimize_dynamic, optimize_static
from repro.workloads import paper_workload, random_bindings


@pytest.fixture(scope="module")
def query5():
    return paper_workload(5, seed=0)


class TestOptimizationScale:
    def test_query5_dynamic_optimization_under_two_seconds(self, query5):
        started = time.perf_counter()
        result = optimize_dynamic(query5.catalog, query5.query)
        elapsed = time.perf_counter() - started
        assert elapsed < 2.0, "q5 dynamic optimization took %.2fs" % elapsed
        assert result.node_count() > 500  # sanity: the full plan space

    def test_query5_static_optimization_under_one_second(self, query5):
        started = time.perf_counter()
        optimize_static(query5.catalog, query5.query)
        assert time.perf_counter() - started < 1.0

    def test_query5_startup_resolution_under_half_second(self, query5):
        dynamic = optimize_dynamic(query5.catalog, query5.query)
        bindings = random_bindings(query5, seed=0)
        started = time.perf_counter()
        resolve_dynamic_plan(
            dynamic.plan, query5.catalog, query5.query.parameter_space,
            bindings,
        )
        assert time.perf_counter() - started < 0.5

    def test_query5_plan_metrics_linear_time(self, query5):
        dynamic = optimize_dynamic(query5.catalog, query5.query)
        started = time.perf_counter()
        # tree_node_count is astronomically large but must be computed
        # by DP over the DAG, not by expansion.
        assert dynamic.plan.tree_node_count() > 10 ** 6
        dynamic.plan.node_count()
        dynamic.plan.signature()
        assert time.perf_counter() - started < 0.5

    def test_query5_module_round_trip_under_half_second(self, query5):
        dynamic = optimize_dynamic(query5.catalog, query5.query)
        started = time.perf_counter()
        module = AccessModule.from_plan(dynamic.plan, "q5")
        module.materialize()
        assert time.perf_counter() - started < 0.5
        # Module stays proportional to the DAG (the paper's argument
        # for why dynamic-plan modules are practical).
        assert module.byte_size < dynamic.node_count() * 1000
