"""The persistent plan store: compile once, activate across restarts."""

import pytest

from repro.common.errors import ExecutionError, InfeasiblePlanError
from repro.executor import PlanStore, execute_plan
from repro.optimizer import optimize_dynamic
from repro.workloads import paper_workload, random_bindings


@pytest.fixture()
def store(tmp_path):
    return PlanStore(tmp_path / "plans")


class TestStoreAndLoad:
    def test_compile_persists_module(self, store, workload2):
        result = store.compile(workload2.catalog, workload2.query)
        assert store.contains(workload2.query.name)
        module = store.load(workload2.query.name)
        assert module.node_count == result.node_count()
        assert (
            module.materialize().signature() == result.plan.signature()
        )

    def test_names_listing(self, store, workload1, workload2):
        store.compile(workload1.catalog, workload1.query)
        store.compile(workload2.catalog, workload2.query)
        assert store.names() == sorted(
            [workload1.query.name, workload2.query.name]
        )

    def test_missing_plan_raises(self, store):
        with pytest.raises(ExecutionError):
            store.load("nope")

    def test_remove(self, store, workload1):
        store.compile(workload1.catalog, workload1.query)
        store.remove(workload1.query.name)
        assert not store.contains(workload1.query.name)
        store.remove(workload1.query.name)  # idempotent

    def test_unsafe_names_sanitized(self, store, workload1):
        result = optimize_dynamic(workload1.catalog, workload1.query)
        store.store(result.plan, "weird/name with spaces!")
        assert store.contains("weird/name with spaces!")
        loaded = store.load("weird/name with spaces!")
        assert loaded.node_count == result.node_count()


class TestActivationAcrossRestart:
    def test_activate_resolves_and_runs(self, tmp_path, workload2,
                                        database2):
        # "Process one": compile and persist.
        PlanStore(tmp_path / "plans").compile(
            workload2.catalog, workload2.query
        )
        # "Process two": a fresh store over the same directory.
        store = PlanStore(tmp_path / "plans")
        bindings = random_bindings(workload2, seed=6)
        chosen, report = store.activate(
            workload2.query.name,
            workload2.catalog,
            workload2.query.parameter_space,
            bindings,
        )
        assert chosen.choose_plan_count() == 0
        assert report.decisions > 0
        executed = execute_plan(
            chosen, database2, bindings, workload2.query.parameter_space
        )
        assert executed.row_count >= 0

    def test_activation_validates_against_current_catalog(self, tmp_path):
        workload = paper_workload(1, seed=0)
        store = PlanStore(tmp_path / "plans")
        store.compile(workload.catalog, workload.query)
        # Catalog drift between compile and activation.
        workload.catalog.drop_index("R1", "a")
        bindings = random_bindings(workload, seed=0)
        chosen, _ = store.activate(
            workload.query.name,
            workload.catalog,
            workload.query.parameter_space,
            bindings,
        )
        operators = [n.operator_name() for n in chosen.walk_unique()]
        assert "Filter-B-tree-Scan" not in operators

    def test_static_plan_becomes_infeasible(self, tmp_path):
        from repro.optimizer import optimize_static

        workload = paper_workload(1, seed=0)
        store = PlanStore(tmp_path / "plans")
        result = optimize_static(workload.catalog, workload.query)
        store.store(result.plan, "static-q1")
        workload.catalog.drop_index("R1", "a")
        bindings = random_bindings(workload, seed=0)
        with pytest.raises(InfeasiblePlanError):
            store.activate(
                "static-q1",
                workload.catalog,
                workload.query.parameter_space,
                bindings,
            )
