"""The experiment harness: every figure's paper-claimed *shape* must
hold in the reproduction (small N for test speed; the benchmarks run
the full configuration)."""

import pytest

from repro.experiments import (
    ExperimentSettings,
    figure3_scenarios,
    figure4_execution_times,
    figure5_optimization_times,
    figure6_plan_sizes,
    figure7_startup_times,
    figure8_runtime_vs_dynamic,
    render_figure,
    render_report,
    run_all_experiments,
    table1_algebra,
)
from repro.experiments.figures import ExperimentContext, SERIES_SEL


@pytest.fixture(scope="module")
def context():
    # Queries 1-3 with N=12 keep the suite fast while preserving shape.
    settings = ExperimentSettings(invocations=12, query_numbers=(1, 2, 3))
    return ExperimentContext(settings)


class TestTable1:
    def test_algebra_matches_paper(self):
        table = table1_algebra()
        assert table["Get-Set"] == ["File-Scan", "B-tree-Scan"]
        assert table["Select"] == ["Filter", "Filter-B-tree-Scan"]
        assert table["Join"] == ["Hash-Join", "Merge-Join", "Index-Join"]
        assert table["Plan Robustness (enforcer)"] == ["Choose-Plan"]


class TestFigure3:
    def test_dynamic_wins_overall(self, context):
        figure = figure3_scenarios(context, query_number=3)
        static_total = figure.value_for("static", "query3")
        dynamic_total = figure.value_for("dynamic plans", "query3")
        assert dynamic_total < static_total

    def test_g_equals_d_note_present(self, context):
        figure = figure3_scenarios(context, query_number=3)
        assert any("g_i = d_i" in note for note in figure.notes)


class TestFigure4:
    def test_dynamic_beats_static_everywhere(self, context):
        figure = figure4_execution_times(context)
        for point in figure.points("dynamic, %s" % SERIES_SEL):
            static_value = figure.value_for(
                "static, %s" % SERIES_SEL, point["query"]
            )
            assert point["value"] < static_value

    def test_gap_grows_with_query_complexity(self, context):
        figure = figure4_execution_times(context)
        ratios = [
            point["ratio"]
            for point in figure.points("dynamic, %s" % SERIES_SEL)
        ]
        # The most complex query's advantage exceeds the simplest's is
        # not guaranteed pointwise at tiny N, but the largest ratio
        # must be substantial (paper: up to 24x).
        assert max(ratios) > 3.0

    def test_all_queries_present(self, context):
        figure = figure4_execution_times(context)
        queries = {p["query"] for p in figure.points("static, %s" % SERIES_SEL)}
        assert queries == {"query1", "query2", "query3"}


class TestFigure5:
    def test_dynamic_optimization_slower_but_bounded(self, context):
        # Sub-millisecond optimizations of queries 1-2 are dominated by
        # wall-clock noise, so the shape is asserted on the largest
        # query only: dynamic costs more than static but within the
        # paper's small factor (3, with noise headroom).
        figure = figure5_optimization_times(context)
        largest = figure.points("dynamic, %s" % SERIES_SEL)[-1]
        static_value = figure.value_for(
            "static, %s" % SERIES_SEL, largest["query"]
        )
        assert largest["value"] >= static_value * 0.5
        assert largest["ratio"] < 10.0


class TestFigure6:
    def test_dynamic_plans_much_larger(self, context):
        figure = figure6_plan_sizes(context)
        for point in figure.points("dynamic, %s" % SERIES_SEL):
            static_nodes = figure.value_for(
                "static, %s" % SERIES_SEL, point["query"]
            )
            assert point["value"] > static_nodes

    def test_sizes_grow_with_complexity(self, context):
        figure = figure6_plan_sizes(context)
        sizes = [
            point["value"]
            for point in figure.points("dynamic, %s" % SERIES_SEL)
        ]
        assert sizes == sorted(sizes)
        assert sizes[-1] > 10 * sizes[0]


class TestFigure7:
    def test_startup_grows_with_plan_size(self, context):
        size_figure = figure6_plan_sizes(context)
        startup_figure = figure7_startup_times(context)
        sizes = [
            point["value"]
            for point in size_figure.points("dynamic, %s" % SERIES_SEL)
        ]
        startups = [
            point["value"]
            for point in startup_figure.points("dynamic, %s" % SERIES_SEL)
        ]
        assert sizes == sorted(sizes)
        assert startups[0] < startups[-1]

    def test_decision_counts_recorded(self, context):
        figure = figure7_startup_times(context)
        for point in figure.points("dynamic, %s" % SERIES_SEL):
            assert point["decisions"] >= 1
            assert point["cost_evaluations"] >= point["decisions"]


class TestFigure8:
    def test_startup_work_far_below_optimization_work(self, context):
        # The deterministic core of Figure 8: a start-up decision pass
        # re-evaluates each DAG node's cost function at most once,
        # while a full run-time optimization evaluates costs for every
        # candidate it enumerates — several times more.  (The wall-
        # clock comparison itself is asserted at full scale in
        # bench_fig8.py; at unit-test scale it is noise-dominated.)
        bundle = context.bundle(3, False)
        report = bundle.dynamic_scenario.last_report
        optimizer_evaluations = (
            bundle.static.extra["optimizer_statistics"]["cost_evaluations"]
        )
        assert report.cost_evaluations < optimizer_evaluations
        assert report.cost_evaluations <= bundle.dynamic_scenario.plan.node_count()

    def test_breakevens_recorded(self, context):
        figure = figure8_runtime_vs_dynamic(context)
        q3 = [
            point
            for point in figure.points("dynamic, %s" % SERIES_SEL)
            if point["query"] == "query3"
        ][0]
        assert q3["breakeven_vs_static"] == 1  # paper: consistently 1
        assert q3["breakeven_vs_runtime"] is None or q3[
            "breakeven_vs_runtime"
        ] >= 1


class TestRendering:
    def test_render_figure_contains_series_and_claim(self, context):
        figure = figure4_execution_times(context)
        text = render_figure(figure)
        assert "FIGURE4" in text
        assert "paper:" in text
        assert "query3" in text

    def test_render_report_full(self):
        settings = ExperimentSettings(invocations=3, query_numbers=(1,))
        figures, table1, settings = run_all_experiments(settings)
        text = render_report(figures, table1, settings)
        assert "TABLE 1" in text
        assert "FIGURE8" in text
        assert "N=3" in text
