"""PartialOrder, machine units, RNG derivation, and error hierarchy."""

import pytest

from repro.common.errors import (
    BindingError,
    CatalogError,
    ExecutionError,
    IncomparableCostError,
    OptimizationError,
    PlanError,
    ReproError,
)
from repro.common.ordering import PartialOrder
from repro.common.rng import derive_seed, make_rng
from repro.common.units import (
    CATALOG_VALIDATION_SECONDS,
    IO_TIME_PER_PAGE,
    PLAN_NODE_BYTES,
    RECORDS_PER_PAGE,
    SEQ_IO_TIME_PER_PAGE,
    access_module_read_seconds,
    pages_for_records,
)


class TestPartialOrder:
    def test_flipped(self):
        assert PartialOrder.LESS.flipped() is PartialOrder.GREATER
        assert PartialOrder.GREATER.flipped() is PartialOrder.LESS
        assert PartialOrder.EQUAL.flipped() is PartialOrder.EQUAL
        assert PartialOrder.INCOMPARABLE.flipped() is PartialOrder.INCOMPARABLE

    def test_is_comparable(self):
        assert PartialOrder.LESS.is_comparable
        assert PartialOrder.EQUAL.is_comparable
        assert not PartialOrder.INCOMPARABLE.is_comparable

    def test_le_ge(self):
        assert PartialOrder.LESS.is_le
        assert PartialOrder.EQUAL.is_le
        assert not PartialOrder.GREATER.is_le
        assert PartialOrder.GREATER.is_ge
        assert not PartialOrder.INCOMPARABLE.is_ge


class TestUnits:
    def test_four_records_per_page(self):
        # 512-byte records in 2,048-byte pages (paper Section 6).
        assert RECORDS_PER_PAGE == 4

    def test_pages_for_records(self):
        assert pages_for_records(0) == 0
        assert pages_for_records(1) == 1
        assert pages_for_records(4) == 1
        assert pages_for_records(5) == 2
        assert pages_for_records(1000) == 250

    def test_pages_never_negative(self):
        assert pages_for_records(-5) == 0

    def test_access_module_read_rate(self):
        # Paper: about 16,000 nodes per second at 128 B/node, 2 MB/s.
        seconds = access_module_read_seconds(16384)
        assert seconds == pytest.approx(1.0)

    def test_random_io_slower_than_sequential(self):
        assert IO_TIME_PER_PAGE > SEQ_IO_TIME_PER_PAGE

    def test_catalog_validation_matches_paper(self):
        assert CATALOG_VALIDATION_SECONDS == pytest.approx(0.1)

    def test_plan_node_bytes(self):
        assert PLAN_NODE_BYTES == 128


class TestRng:
    def test_derive_seed_deterministic(self):
        assert derive_seed(0, "a", "b") == derive_seed(0, "a", "b")

    def test_derive_seed_label_sensitivity(self):
        assert derive_seed(0, "a") != derive_seed(0, "b")
        assert derive_seed(0, "a") != derive_seed(1, "a")

    def test_label_path_not_concatenation_ambiguous(self):
        assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")

    def test_make_rng_streams_independent(self):
        rng_a = make_rng(0, "x")
        rng_b = make_rng(0, "y")
        assert [rng_a.random() for _ in range(3)] != [
            rng_b.random() for _ in range(3)
        ]

    def test_make_rng_reproducible(self):
        assert make_rng(5, "z").random() == make_rng(5, "z").random()


class TestErrors:
    def test_hierarchy_roots_at_repro_error(self):
        for exc in (
            CatalogError,
            OptimizationError,
            PlanError,
            ExecutionError,
        ):
            assert issubclass(exc, ReproError)

    def test_binding_error_is_execution_error(self):
        assert issubclass(BindingError, ExecutionError)

    def test_incomparable_cost_is_optimization_error(self):
        assert issubclass(IncomparableCostError, OptimizationError)

    def test_catch_all(self):
        with pytest.raises(ReproError):
            raise CatalogError("boom")
