"""Parameters, parameter spaces, bindings, and valuations."""

import pytest

from repro.algebra.expressions import Comparison, ComparisonOp, SelectionPredicate, UserVariable
from repro.common.errors import ExecutionError
from repro.common.intervals import Interval
from repro.cost.parameters import (
    Bindings,
    MEMORY_PARAMETER,
    Parameter,
    ParameterSpace,
    Valuation,
)


class TestParameter:
    def test_selectivity_defaults(self):
        parameter = Parameter.selectivity("sel_R")
        assert parameter.bounds == Interval(0, 1)
        assert parameter.expected == 0.05
        assert parameter.uncertain

    def test_memory_defaults_match_paper(self):
        parameter = Parameter.memory()
        assert parameter.bounds == Interval(16, 112)
        assert parameter.expected == 64
        assert not parameter.uncertain

    def test_memory_uncertain_variant(self):
        assert Parameter.memory(uncertain=True).uncertain

    def test_expected_outside_bounds_rejected(self):
        with pytest.raises(ValueError):
            Parameter("p", (0, 1), 2.0)


class TestParameterSpace:
    def test_memory_always_present(self):
        space = ParameterSpace()
        assert MEMORY_PARAMETER in space
        assert space.uncertain_count() == 0

    def test_uncertain_names_sorted(self):
        space = ParameterSpace(
            [Parameter.selectivity("sel_B"), Parameter.selectivity("sel_A")]
        )
        assert space.uncertain_names() == ["sel_A", "sel_B"]
        assert space.uncertain_count() == 2

    def test_unknown_parameter_raises(self):
        with pytest.raises(ExecutionError):
            ParameterSpace().get("nope")

    def test_add_replaces(self):
        space = ParameterSpace()
        space.add(Parameter.memory(uncertain=True))
        assert space.get(MEMORY_PARAMETER).uncertain
        assert space.uncertain_count() == 1


class TestBindings:
    def test_parameter_roundtrip(self):
        bindings = Bindings().bind("sel_R", 0.3)
        assert bindings.has_parameter("sel_R")
        assert bindings.parameter("sel_R") == 0.3
        assert bindings.parameter_names() == ["sel_R"]

    def test_missing_parameter_raises(self):
        with pytest.raises(ExecutionError):
            Bindings().parameter("sel_R")

    def test_variable_roundtrip(self):
        bindings = Bindings().bind_variable("v", 12)
        assert bindings.has_variable("v")
        assert bindings.variable("v") == 12

    def test_missing_variable_raises(self):
        with pytest.raises(ExecutionError):
            Bindings().variable("v")

    def test_constructor_accepts_dicts(self):
        bindings = Bindings({"p": 1.0}, {"v": 2})
        assert bindings.parameter("p") == 1.0
        assert bindings.variable("v") == 2


class TestValuation:
    def _space(self):
        return ParameterSpace([Parameter.selectivity("sel_R")])

    def _predicate(self):
        return SelectionPredicate(
            Comparison("R.a", ComparisonOp.LT, UserVariable("v")),
            selectivity_parameter="sel_R",
        )

    def test_expected_valuation_is_point(self):
        valuation = Valuation.expected(self._space())
        assert valuation.is_point_valued
        assert valuation.value_of("sel_R") == Interval.point(0.05)
        assert valuation.memory_pages() == Interval.point(64)

    def test_bounds_valuation_uses_full_interval(self):
        valuation = Valuation.bounds(self._space())
        assert not valuation.is_point_valued
        assert valuation.value_of("sel_R") == Interval(0, 1)

    def test_bounds_valuation_keeps_known_parameters_as_points(self):
        # Memory is not uncertain by default, so even the bounds
        # valuation treats it as its expected point.
        valuation = Valuation.bounds(self._space())
        assert valuation.memory_pages() == Interval.point(64)

    def test_bounds_valuation_with_uncertain_memory(self):
        space = self._space()
        space.add(Parameter.memory(uncertain=True))
        valuation = Valuation.bounds(space)
        assert valuation.memory_pages() == Interval(16, 112)

    def test_runtime_valuation_uses_bindings(self):
        bindings = Bindings().bind("sel_R", 0.7)
        valuation = Valuation.runtime(self._space(), bindings)
        assert valuation.value_of("sel_R") == Interval.point(0.7)
        assert valuation.is_point_valued

    def test_runtime_valuation_falls_back_to_expected(self):
        valuation = Valuation.runtime(self._space(), Bindings())
        assert valuation.value_of("sel_R") == Interval.point(0.05)

    def test_runtime_valuation_requires_bindings(self):
        with pytest.raises(ExecutionError):
            Valuation(self._space(), Valuation._MODE_RUNTIME)

    def test_selectivity_of_known_predicate(self):
        predicate = SelectionPredicate(
            Comparison("R.a", ComparisonOp.LT, 5), known_selectivity=0.25
        )
        for valuation in (
            Valuation.expected(self._space()),
            Valuation.bounds(self._space()),
        ):
            assert valuation.selectivity(predicate) == Interval.point(0.25)

    def test_selectivity_of_uncertain_predicate(self):
        predicate = self._predicate()
        assert Valuation.bounds(self._space()).selectivity(predicate) == Interval(0, 1)
        assert Valuation.expected(self._space()).selectivity(
            predicate
        ) == Interval.point(0.05)

    def test_selectivity_of_predicate_outside_space(self):
        # A predicate whose parameter is not registered still works
        # through its own compile-time description.
        predicate = SelectionPredicate(
            Comparison("S.a", ComparisonOp.LT, UserVariable("w")),
            selectivity_parameter="sel_S",
            selectivity_bounds=(0.1, 0.9),
            expected_selectivity=0.2,
        )
        space = self._space()
        assert Valuation.bounds(space).selectivity(predicate) == Interval(0.1, 0.9)
        assert Valuation.expected(space).selectivity(
            predicate
        ) == Interval.point(0.2)
        bindings = Bindings().bind("sel_S", 0.5)
        assert Valuation.runtime(space, bindings).selectivity(
            predicate
        ) == Interval.point(0.5)
