"""Documentation coverage: every public item carries a docstring.

A release-quality library documents its public surface; this meta-test
walks every ``repro`` module and asserts that public modules, classes,
functions, and methods have docstrings.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def _public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.isclass(member) or inspect.isfunction(member):
            if getattr(member, "__module__", None) == module.__name__:
                yield name, member


MODULES = list(_iter_modules())


@pytest.mark.parametrize(
    "module", MODULES, ids=[module.__name__ for module in MODULES]
)
def test_module_has_docstring(module):
    assert module.__doc__, "module %s lacks a docstring" % module.__name__


@pytest.mark.parametrize(
    "module", MODULES, ids=[module.__name__ for module in MODULES]
)
def test_public_items_have_docstrings(module):
    missing = []
    for name, member in _public_members(module):
        if not inspect.getdoc(member):
            missing.append("%s.%s" % (module.__name__, name))
        if inspect.isclass(member):
            for attr_name, attr in vars(member).items():
                if attr_name.startswith("_"):
                    continue
                if inspect.isfunction(attr) and not inspect.getdoc(attr):
                    missing.append(
                        "%s.%s.%s" % (module.__name__, name, attr_name)
                    )
    assert not missing, "undocumented public items: %s" % ", ".join(missing)


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), "repro.__all__ lists missing %r" % name


def test_subpackage_all_exports_resolve():
    for module in MODULES:
        exported = getattr(module, "__all__", None)
        if exported is None:
            continue
        for name in exported:
            assert hasattr(module, name), (
                "%s.__all__ lists missing %r" % (module.__name__, name)
            )
