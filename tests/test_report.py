"""Report rendering: tables, CSV export, ASCII charts."""

import pytest

from repro.experiments.report import (
    figure_to_csv,
    render_ascii_chart,
    render_figure,
    render_table1,
)
from repro.experiments.results import FigureResult


@pytest.fixture()
def figure():
    result = FigureResult(
        "figureX", "Test figure", "x", "y", "claim text"
    )
    result.add_point("static", "q1", 1, 10.0)
    result.add_point("static", "q2", 2, 100.0)
    result.add_point("dynamic", "q1", 1, 1.0, ratio=10.0)
    result.add_point("dynamic", "q2", 2, 5.0, ratio=20.0)
    result.add_note("a note")
    return result


class TestFigureResult:
    def test_value_for(self, figure):
        assert figure.value_for("static", "q2") == 100.0
        with pytest.raises(KeyError):
            figure.value_for("static", "zzz")

    def test_points_keep_extras(self, figure):
        assert figure.points("dynamic")[1]["ratio"] == 20.0


class TestRenderFigure:
    def test_contains_all_rows_and_series(self, figure):
        text = render_figure(figure)
        assert "FIGUREX" in text
        assert "claim text" in text
        assert "q1" in text and "q2" in text
        assert "static" in text and "dynamic" in text
        assert "a note" in text

    def test_small_values_keep_precision(self, figure):
        figure.add_point("static", "q3", 3, 0.00042)
        text = render_figure(figure)
        assert "0.00042" in text


class TestTable1Rendering:
    def test_render(self):
        text = render_table1({"Get-Set": ["File-Scan"]})
        assert "TABLE 1" in text
        assert "File-Scan" in text


class TestCsvExport:
    def test_header_and_rows(self, figure):
        csv = figure_to_csv(figure)
        lines = csv.strip().split("\n")
        assert lines[0] == "query,uncertain_variables,series,value"
        assert len(lines) == 5
        assert any("q2,2,static,100.0" in line for line in lines)

    def test_commas_in_series_names_escaped(self):
        result = FigureResult("f", "t", "x", "y", "c")
        result.add_point("a, b", "q1", 1, 1.0)
        csv = figure_to_csv(result)
        assert "a; b" in csv


class TestAsciiChart:
    def test_chart_renders_all_points(self, figure):
        chart = render_ascii_chart(figure)
        assert "log scale" in chart
        assert chart.count("|") == 4
        assert "q2 static" in chart

    def test_larger_values_longer_bars(self, figure):
        chart = render_ascii_chart(figure)
        lines = {
            line.split("|")[0].strip(): len(line.split("|")[1])
            for line in chart.splitlines()[1:]
        }
        assert lines["q2 static"] > lines["q1 dynamic"]

    def test_linear_scale(self, figure):
        chart = render_ascii_chart(figure, log_scale=False)
        assert "linear" in chart

    def test_empty_figure(self):
        empty = FigureResult("f", "t", "x", "y", "c")
        assert render_ascii_chart(empty) == "(no data)"

    def test_zero_values_handled(self):
        result = FigureResult("f", "t", "x", "y", "c")
        result.add_point("s", "q1", 1, 0.0)
        result.add_point("s", "q2", 2, 5.0)
        chart = render_ascii_chart(result)
        assert "0" in chart
