"""Property-based tests of the search engine's dominance pruning.

``SearchEngine._prune`` is the heart of dynamic-plan optimization: it
must keep exactly the *potentially optimal* candidates.  We drive it
with synthetic candidate sets and assert the defining properties:

* the kept set is an antichain (pairwise incomparable under the
  paper's interval comparison, up to retained equal-cost ties);
* every dropped candidate is dominated by some kept candidate;
* the minimum envelope of the kept set equals that of the input set
  (nothing potentially optimal was lost);
* static mode reduces to the classic single winner.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.intervals import Interval
from repro.common.ordering import PartialOrder
from repro.cost.model import CostResult
from repro.optimizer import OptimizerConfig, SearchEngine
from repro.optimizer.search import SearchStatistics


class _FakePlan:
    """Stands in for a physical plan during pruning tests."""

    def __init__(self, index):
        self.index = index

    def __repr__(self):
        return "plan%d" % self.index


def make_engine(config):
    engine = SearchEngine(catalog=None, config=config)
    engine.stats = SearchStatistics()
    return engine


def candidates_from(intervals):
    return [
        (_FakePlan(index), CostResult(interval, Interval.point(1.0)))
        for index, interval in enumerate(intervals)
    ]


@st.composite
def interval_lists(draw):
    count = draw(st.integers(1, 10))
    intervals = []
    for _ in range(count):
        a = draw(st.floats(0, 100, allow_nan=False))
        b = draw(st.floats(0, 100, allow_nan=False))
        intervals.append(Interval(min(a, b), max(a, b)))
    return intervals


class TestDynamicPruning:
    @settings(max_examples=80, deadline=None)
    @given(intervals=interval_lists())
    def test_kept_set_is_antichain(self, intervals):
        engine = make_engine(OptimizerConfig.dynamic())
        kept = engine._prune(candidates_from(intervals))
        for i, (_, result_a) in enumerate(kept):
            for j, (_, result_b) in enumerate(kept):
                if i == j:
                    continue
                relation = result_a.cost.compare(result_b.cost)
                # EQUAL ties are retained by the paper's prototype.
                assert relation in (
                    PartialOrder.INCOMPARABLE,
                    PartialOrder.EQUAL,
                )

    @settings(max_examples=80, deadline=None)
    @given(intervals=interval_lists())
    def test_dropped_candidates_are_dominated(self, intervals):
        engine = make_engine(OptimizerConfig.dynamic())
        candidates = candidates_from(intervals)
        kept = engine._prune(candidates)
        kept_ids = {id(plan) for plan, _ in kept}
        for plan, result in candidates:
            if id(plan) in kept_ids:
                continue
            assert any(
                kept_result.cost.compare(result.cost)
                in (PartialOrder.LESS, PartialOrder.EQUAL)
                for _, kept_result in kept
            ), "dropped %r (%r) without a dominator" % (plan, result.cost)

    @settings(max_examples=80, deadline=None)
    @given(intervals=interval_lists())
    def test_min_envelope_preserved(self, intervals):
        engine = make_engine(OptimizerConfig.dynamic())
        kept = engine._prune(candidates_from(intervals))
        assert kept
        input_envelope = Interval.envelope_min(intervals)
        kept_envelope = Interval.envelope_min(
            [result.cost for _, result in kept]
        )
        assert kept_envelope.lower == pytest.approx(input_envelope.lower)
        assert kept_envelope.upper == pytest.approx(input_envelope.upper)

    @settings(max_examples=50, deadline=None)
    @given(intervals=interval_lists())
    def test_pruning_idempotent(self, intervals):
        engine = make_engine(OptimizerConfig.dynamic())
        once = engine._prune(candidates_from(intervals))
        twice = engine._prune(once)
        assert [id(plan) for plan, _ in once] == [
            id(plan) for plan, _ in twice
        ]

    def test_equal_ties_kept_by_default(self):
        engine = make_engine(OptimizerConfig.dynamic())
        kept = engine._prune(
            candidates_from([Interval.point(5), Interval.point(5)])
        )
        assert len(kept) == 2

    def test_equal_ties_dropped_when_configured(self):
        engine = make_engine(
            OptimizerConfig.dynamic(keep_equal_cost_plans=False)
        )
        kept = engine._prune(
            candidates_from([Interval.point(5), Interval.point(5)])
        )
        assert len(kept) == 1


class TestStaticPruning:
    @settings(max_examples=60, deadline=None)
    @given(points=st.lists(st.floats(0, 100, allow_nan=False),
                           min_size=1, max_size=10))
    def test_static_mode_keeps_single_cheapest(self, points):
        engine = make_engine(OptimizerConfig.static())
        intervals = [Interval.point(value) for value in points]
        kept = engine._prune(candidates_from(intervals))
        entry = engine._finalize(kept)
        assert entry is not None
        assert entry.cost.lower == pytest.approx(min(points))
        assert len(entry.alternatives) == 1


class TestExhaustivePruning:
    @settings(max_examples=40, deadline=None)
    @given(intervals=interval_lists())
    def test_exhaustive_mode_keeps_all_distinct_costs(self, intervals):
        engine = make_engine(OptimizerConfig.exhaustive())
        kept = engine._prune(candidates_from(intervals))
        # Only exactly-equal point costs may collapse; everything else
        # is incomparable by definition in exhaustive mode.
        distinct = {
            (interval.lower, interval.upper) for interval in intervals
        }
        assert len(kept) >= len(distinct)


class TestMaxAlternativesCap:
    def test_cap_applied_after_pruning(self):
        engine = make_engine(OptimizerConfig.dynamic(max_alternatives=2))
        intervals = [Interval(i, i + 10) for i in range(6)]
        kept = engine._prune(candidates_from(intervals))
        assert len(kept) == 2
