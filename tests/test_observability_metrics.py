"""The metrics registry: instruments, exposition, thread safety.

The registry promises *exact* counters under concurrency — every
``inc``/``observe`` holds the instrument's lock, so parallel updates
can never be lost the way unlocked ``+=`` read-modify-write races lose
them.  The hammer tests drive instruments and a full
:class:`~repro.service.service.QueryService` from eight threads and
require per-thread deltas to sum exactly to the registry totals.
"""

import json
import threading

import pytest

from repro.observability import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.service import QueryService, ServiceRequest
from repro.storage import Database
from repro.workloads import paper_workload
from repro.workloads.service import service_request_bindings

THREADS = 8


class TestInstruments:
    def test_counter_accumulates(self):
        counter = Counter("requests_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counter_rejects_negative(self):
        counter = Counter("requests_total")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("inflight")
        gauge.inc()
        gauge.inc()
        gauge.dec()
        assert gauge.value == 1.0
        gauge.set(7.0)
        assert gauge.value == 7.0

    def test_histogram_buckets_are_cumulative(self):
        histogram = Histogram("latency", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 4
        assert snapshot["sum"] == pytest.approx(55.55)
        # Cumulative: each bucket counts everything at or below it.
        assert snapshot["buckets"] == {
            "0.1": 1,
            "1": 2,
            "10": 3,
            "+Inf": 4,
        }

    def test_histogram_mean(self):
        histogram = Histogram("latency", buckets=(1.0,))
        assert histogram.mean == 0.0
        histogram.observe(2.0)
        histogram.observe(4.0)
        assert histogram.mean == pytest.approx(3.0)

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            Counter("bad name")
        with pytest.raises(ValueError):
            Counter("0starts_with_digit")


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("requests_total", "help text")
        second = registry.counter("requests_total")
        assert first is second
        assert len(registry) == 1

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_json_roundtrips(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc(3)
        registry.gauge("b").set(-1.5)
        registry.histogram("c_seconds", buckets=(1.0,)).observe(0.5)
        data = json.loads(registry.to_json())
        assert data["a_total"]["value"] == 3.0
        assert data["b"]["value"] == -1.5
        assert data["c_seconds"]["count"] == 1

    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "things").inc(2)
        registry.gauge("b", "level").set(4)
        registry.histogram("c_seconds", "lat", buckets=(0.5, 1.0)).observe(
            0.75
        )
        text = registry.to_prometheus()
        assert "# HELP a_total things" in text
        assert "# TYPE a_total counter" in text
        assert "a_total 2" in text
        assert "# TYPE b gauge" in text
        assert "# TYPE c_seconds histogram" in text
        assert 'c_seconds_bucket{le="0.5"} 0' in text
        assert 'c_seconds_bucket{le="1"} 1' in text
        assert 'c_seconds_bucket{le="+Inf"} 1' in text
        assert "c_seconds_sum 0.75" in text
        assert "c_seconds_count 1" in text
        # Exposition format requires a trailing newline.
        assert text.endswith("\n")


class TestConcurrency:
    def test_parallel_instrument_updates_are_exact(self):
        """No lost updates: 8 threads x 5000 increments lands exactly."""
        registry = MetricsRegistry()
        counter = registry.counter("hits_total")
        gauge = registry.gauge("level")
        histogram = registry.histogram("obs", buckets=(0.5,))
        increments = 5000
        barrier = threading.Barrier(THREADS)

        def worker():
            barrier.wait()
            for _ in range(increments):
                counter.inc()
                gauge.inc()
                histogram.observe(1.0)

        threads = [
            threading.Thread(target=worker) for _ in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        expected = THREADS * increments
        assert counter.value == expected
        assert gauge.value == expected
        snapshot = histogram.snapshot()
        assert snapshot["count"] == expected
        assert snapshot["sum"] == expected

    @pytest.mark.slow
    def test_service_load_deltas_sum_to_totals(self):
        """8-thread service load: per-thread deltas equal the registry.

        Each pool thread serves its own slice of requests and tallies
        what it saw (requests served, rows returned); the registry's
        counters must equal the tallies exactly — the concurrency
        contract of the metrics layer under real contention.
        """
        workload = paper_workload(2, seed=0)
        registry = MetricsRegistry()
        service = QueryService(
            Database(workload.catalog),
            execute=False,
            max_workers=THREADS,
            metrics=registry,
        )
        per_query = 12
        with service:
            results = service.run_batch(
                ServiceRequest(
                    workload.query,
                    service_request_bindings(
                        workload, seed=3, run_index=index
                    ),
                )
                for index in range(THREADS * per_query)
            )

        total = THREADS * per_query
        snapshot = registry.snapshot()
        assert snapshot["service_requests_total"]["value"] == total
        assert snapshot["plan_cache_lookups_total"]["value"] == total
        assert (
            snapshot["plan_cache_hits_total"]["value"]
            + snapshot["plan_cache_misses_total"]["value"]
            == total
        )
        assert snapshot["service_startup_seconds"]["count"] == total
        assert snapshot["service_inflight_requests"]["value"] == 0

        # The registry agrees with the service's own accounting.
        stats = service.stats()
        assert stats.requests == total
        cache = service.cache.stats.snapshot()
        assert snapshot["plan_cache_hits_total"]["value"] == cache["hits"]
        assert (
            snapshot["plan_cache_misses_total"]["value"] == cache["misses"]
        )
        reopt = sum(1 for result in results if result.reoptimized)
        assert (
            snapshot["service_reoptimizations_total"]["value"] == reopt
        )
