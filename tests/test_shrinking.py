"""Plan shrinking: the self-replacing access module of Section 4."""

import pytest

from repro.executor import ShrinkingAccessModule, resolve_dynamic_plan
from repro.optimizer import optimize_dynamic
from repro.scenarios import predicted_execution_seconds
from repro.workloads import binding_series, random_bindings


@pytest.fixture()
def shrinking_module(workload2):
    dynamic = optimize_dynamic(workload2.catalog, workload2.query)
    return ShrinkingAccessModule(
        dynamic.plan,
        workload2.catalog,
        workload2.query.parameter_space,
        query_name="q2",
        shrink_after=5,
    )


class TestUsageTracking:
    def test_activation_returns_resolved_plan(self, shrinking_module,
                                              workload2):
        bindings = random_bindings(workload2, seed=0)
        chosen, report = shrinking_module.activate(bindings)
        assert chosen.choose_plan_count() == 0
        assert report.decisions > 0
        assert shrinking_module.total_invocations == 1

    def test_shrink_triggered_after_threshold(self, shrinking_module,
                                              workload2):
        for bindings in binding_series(workload2, count=5, seed=1):
            shrinking_module.activate(bindings)
        assert shrinking_module.shrink_count == 1
        assert shrinking_module.invocations_since_shrink == 0

    def test_shrinking_reduces_or_preserves_size(self, shrinking_module,
                                                 workload2):
        before = shrinking_module.node_count
        for bindings in binding_series(workload2, count=5, seed=1):
            shrinking_module.activate(bindings)
        assert shrinking_module.node_count <= before

    def test_identical_bindings_shrink_to_near_static(self, workload2):
        dynamic = optimize_dynamic(workload2.catalog, workload2.query)
        module = ShrinkingAccessModule(
            dynamic.plan, workload2.catalog,
            workload2.query.parameter_space, shrink_after=3,
        )
        bindings = random_bindings(workload2, seed=7)
        for _ in range(3):
            module.activate(bindings)
        # Only one alternative ever used per choose-plan: all
        # choose-plan operators collapse.
        assert module.module.materialize().choose_plan_count() == 0


class TestShrunkPlanQuality:
    def test_shrunk_plan_still_optimal_for_seen_bindings(self, workload2):
        dynamic = optimize_dynamic(workload2.catalog, workload2.query)
        module = ShrinkingAccessModule(
            dynamic.plan, workload2.catalog,
            workload2.query.parameter_space, shrink_after=6,
        )
        series = binding_series(workload2, count=6, seed=2)
        for bindings in series:
            module.activate(bindings)
        # After shrinking, re-running the same bindings must reach the
        # same execution costs as the full dynamic plan.
        for bindings in series:
            chosen, _ = module.activate(bindings)
            full_chosen, _ = resolve_dynamic_plan(
                dynamic.plan, workload2.catalog,
                workload2.query.parameter_space, bindings,
            )
            assert predicted_execution_seconds(
                chosen, workload2.catalog,
                workload2.query.parameter_space, bindings,
            ) == pytest.approx(
                predicted_execution_seconds(
                    full_chosen, workload2.catalog,
                    workload2.query.parameter_space, bindings,
                ),
                rel=1e-9,
            )

    def test_shrunk_plan_may_be_suboptimal_for_unseen_bindings(self, workload1):
        # The paper flags this as the heuristic's inherent risk: a
        # removed alternative may have been optimal for future runs.
        dynamic = optimize_dynamic(workload1.catalog, workload1.query)
        module = ShrinkingAccessModule(
            dynamic.plan, workload1.catalog,
            workload1.query.parameter_space, shrink_after=2,
        )
        domain = workload1.catalog.domain_size("R1", "a")
        low = random_bindings(workload1, seed=0)
        low.bind("sel_R1", 0.01).bind_variable("v_R1", 0.01 * domain)
        module.activate(low)
        module.activate(low)  # triggers shrink: only index scan kept
        high = random_bindings(workload1, seed=0)
        high.bind("sel_R1", 0.95).bind_variable("v_R1", 0.95 * domain)
        chosen, _ = module.activate(high)
        shrunk_cost = predicted_execution_seconds(
            chosen, workload1.catalog,
            workload1.query.parameter_space, high,
        )
        optimal_chosen, _ = resolve_dynamic_plan(
            dynamic.plan, workload1.catalog,
            workload1.query.parameter_space, high,
        )
        optimal_cost = predicted_execution_seconds(
            optimal_chosen, workload1.catalog,
            workload1.query.parameter_space, high,
        )
        assert shrunk_cost > optimal_cost

    def test_shrunk_module_smaller_activation_io(self, workload2):
        dynamic = optimize_dynamic(workload2.catalog, workload2.query)
        module = ShrinkingAccessModule(
            dynamic.plan, workload2.catalog,
            workload2.query.parameter_space, shrink_after=4,
        )
        io_before = module.module.read_seconds()
        bindings = random_bindings(workload2, seed=3)
        for _ in range(4):
            module.activate(bindings)
        assert module.module.read_seconds() < io_before
