"""The paper's central guarantee: g_i = d_i.

A dynamic plan, resolved at start-up time against any run-time
bindings, must execute the *same-cost* plan a full run-time
optimization would have produced (Section 3, "Guarantees of
Optimality").  We verify this over many random bindings for several
query sizes and topologies, plus the exhaustive-plan variant.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.executor import resolve_dynamic_plan
from repro.optimizer import (
    optimize_dynamic,
    optimize_exhaustive,
    optimize_runtime,
)
from repro.scenarios import predicted_execution_seconds
from repro.workloads import (
    binding_series,
    make_join_workload,
    random_bindings,
)


def _chosen_cost(dynamic_result, workload, bindings):
    chosen, _report = resolve_dynamic_plan(
        dynamic_result.plan,
        workload.catalog,
        workload.query.parameter_space,
        bindings,
    )
    return predicted_execution_seconds(
        chosen, workload.catalog, workload.query.parameter_space, bindings
    )


def _optimal_cost(workload, bindings):
    result = optimize_runtime(workload.catalog, workload.query, bindings)
    return predicted_execution_seconds(
        result.plan, workload.catalog, workload.query.parameter_space, bindings
    )


def _assert_guarantee(workload, count=12, seed=11):
    dynamic = optimize_dynamic(workload.catalog, workload.query)
    for bindings in binding_series(workload, count=count, seed=seed):
        chosen = _chosen_cost(dynamic, workload, bindings)
        optimal = _optimal_cost(workload, bindings)
        assert chosen == pytest.approx(optimal, rel=1e-9), (
            "dynamic plan chose cost %r but run-time optimization achieves %r"
            % (chosen, optimal)
        )


class TestOptimalityGuarantee:
    def test_query1(self, workload1):
        _assert_guarantee(workload1, count=20)

    def test_query2(self, workload2):
        _assert_guarantee(workload2, count=15)

    def test_query3(self, workload3):
        _assert_guarantee(workload3, count=8)

    def test_query2_with_memory_uncertainty(self, workload2_mem):
        _assert_guarantee(workload2_mem, count=10)

    def test_star_topology(self, star_workload):
        _assert_guarantee(star_workload, count=6)

    def test_cycle_topology(self):
        _assert_guarantee(make_join_workload(4, topology="cycle"), count=5)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_query2_hypothesis_bindings(self, workload2, seed):
        dynamic = optimize_dynamic(workload2.catalog, workload2.query)
        bindings = random_bindings(workload2, seed=seed)
        chosen = _chosen_cost(dynamic, workload2, bindings)
        optimal = _optimal_cost(workload2, bindings)
        assert chosen == pytest.approx(optimal, rel=1e-9)


class TestExhaustivePlanOptimality:
    """The exhaustive plan includes absolutely all plans, so it too
    must achieve the run-time optimum (and never beat it)."""

    def test_exhaustive_matches_runtime_optimum(self, workload2):
        exhaustive = optimize_exhaustive(workload2.catalog, workload2.query)
        for bindings in binding_series(workload2, count=8, seed=3):
            chosen = _chosen_cost(exhaustive, workload2, bindings)
            optimal = _optimal_cost(workload2, bindings)
            assert chosen == pytest.approx(optimal, rel=1e-9)

    def test_dynamic_never_beats_exhaustive(self, workload2):
        # Sanity: pruning only removes plans that are never optimal.
        dynamic = optimize_dynamic(workload2.catalog, workload2.query)
        exhaustive = optimize_exhaustive(workload2.catalog, workload2.query)
        for bindings in binding_series(workload2, count=8, seed=4):
            dynamic_cost = _chosen_cost(dynamic, workload2, bindings)
            exhaustive_cost = _chosen_cost(exhaustive, workload2, bindings)
            assert dynamic_cost == pytest.approx(exhaustive_cost, rel=1e-9)


class TestStaticPlanSuboptimality:
    """Static plans must be no better than dynamic plans anywhere, and
    strictly worse somewhere (otherwise the whole exercise is moot)."""

    def test_static_never_beats_dynamic(self, workload2):
        from repro.optimizer import optimize_static

        static = optimize_static(workload2.catalog, workload2.query)
        dynamic = optimize_dynamic(workload2.catalog, workload2.query)
        strictly_worse = 0
        for bindings in binding_series(workload2, count=15, seed=5):
            static_cost = predicted_execution_seconds(
                static.plan,
                workload2.catalog,
                workload2.query.parameter_space,
                bindings,
            )
            dynamic_cost = _chosen_cost(dynamic, workload2, bindings)
            assert static_cost >= dynamic_cost - 1e-9
            if static_cost > dynamic_cost * 1.05:
                strictly_worse += 1
        assert strictly_worse > 0


class TestDynamicPlanContainsRuntimeChoice:
    """Stronger structural check: the plan picked by run-time
    optimization is (cost-)equivalent to an alternative reachable in
    the dynamic plan, for every binding."""

    def test_runtime_plan_cost_reachable(self, workload1):
        dynamic = optimize_dynamic(workload1.catalog, workload1.query)
        for bindings in binding_series(workload1, count=25, seed=6):
            runtime = optimize_runtime(
                workload1.catalog, workload1.query, bindings
            )
            chosen, _ = resolve_dynamic_plan(
                dynamic.plan,
                workload1.catalog,
                workload1.query.parameter_space,
                bindings,
            )
            runtime_cost = predicted_execution_seconds(
                runtime.plan,
                workload1.catalog,
                workload1.query.parameter_space,
                bindings,
            )
            chosen_cost = predicted_execution_seconds(
                chosen,
                workload1.catalog,
                workload1.query.parameter_space,
                bindings,
            )
            assert chosen_cost == pytest.approx(runtime_cost, rel=1e-9)
