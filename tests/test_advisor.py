"""The compilation-strategy advisor (the paper's open characterization
of "those cases where dynamic plans apply")."""

import pytest

from repro.scenarios import recommend_strategy
from repro.workloads import make_join_workload


class TestRecommendations:
    def test_repeated_uncertain_query_gets_dynamic(self, workload3):
        recommendation = recommend_strategy(
            workload3.catalog, workload3.query, expected_invocations=100
        )
        assert recommendation.strategy == "dynamic"

    def test_single_shot_query_gets_runtime_optimization(self, workload3):
        recommendation = recommend_strategy(
            workload3.catalog, workload3.query, expected_invocations=1
        )
        assert recommendation.strategy == "run-time optimization"

    def test_certain_query_gets_static(self):
        workload = make_join_workload(3, uncertain_selections=0)
        recommendation = recommend_strategy(
            workload.catalog, workload.query, expected_invocations=100
        )
        assert recommendation.strategy == "static"

    def test_more_invocations_never_hurt_dynamic(self, workload2):
        few = recommend_strategy(
            workload2.catalog, workload2.query, expected_invocations=2
        )
        many = recommend_strategy(
            workload2.catalog, workload2.query, expected_invocations=500
        )
        gap_few = few.totals["dynamic"] - few.totals["static"]
        gap_many = many.totals["dynamic"] - many.totals["static"]
        # Dynamic's relative position improves with invocation count.
        assert gap_many < gap_few


class TestRecommendationContents:
    def test_totals_and_components_present(self, workload2):
        recommendation = recommend_strategy(
            workload2.catalog, workload2.query, expected_invocations=10
        )
        assert set(recommendation.totals) == {
            "static", "dynamic", "run-time optimization",
        }
        for key in ("a", "b", "c", "e", "f", "g"):
            assert recommendation.components[key] >= 0
        assert (
            recommendation.components["dynamic_nodes"]
            > recommendation.components["static_nodes"]
        )

    def test_totals_follow_figure3_formulas(self, workload2):
        recommendation = recommend_strategy(
            workload2.catalog, workload2.query, expected_invocations=7
        )
        parts = recommendation.components
        assert recommendation.totals["static"] == pytest.approx(
            parts["a"] + 7 * (parts["b"] + parts["c"])
        )
        assert recommendation.totals["dynamic"] == pytest.approx(
            parts["e"] + 7 * (parts["f"] + parts["g"])
        )
        assert recommendation.totals["run-time optimization"] == pytest.approx(
            7 * (parts["a"] + parts["g"])
        )

    def test_rationale_mentions_recommendation(self, workload2):
        recommendation = recommend_strategy(
            workload2.catalog, workload2.query, expected_invocations=10
        )
        text = recommendation.rationale()
        assert recommendation.strategy in text
        assert "10" in text

    def test_invocations_floored_at_one(self, workload1):
        recommendation = recommend_strategy(
            workload1.catalog, workload1.query, expected_invocations=0
        )
        assert recommendation.invocations == 1


class TestAdvisorAgreesWithMeasurement:
    def test_dynamic_recommendation_confirmed_by_scenarios(self, workload3):
        """When the advisor says 'dynamic' at N=50, actually running the
        scenarios over 50 random bindings must agree.

        The confirmation uses ``cpu_scale=1`` so the comparison rests
        on the modelled quantities (activation I/O + predicted
        execution) rather than jittery measured CPU; the scaled
        comparison is exercised at benchmark scale in bench_fig8.py.
        """
        from repro.scenarios import (
            DynamicPlanScenario,
            StaticPlanScenario,
        )
        from repro.workloads import binding_series

        recommendation = recommend_strategy(
            workload3.catalog, workload3.query, expected_invocations=50
        )
        assert recommendation.strategy == "dynamic"
        series = binding_series(workload3, count=50, seed=77)
        static = StaticPlanScenario(workload3).run_series(series)
        dynamic = DynamicPlanScenario(workload3).run_series(series)
        assert (
            dynamic.average_run_time_effort < static.average_run_time_effort
        )
