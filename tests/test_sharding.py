"""The sharded serving tier: routing, differential equivalence,
admission control, and exact statistics.

The contract under test is the module docstring of
:mod:`repro.service.sharding`: sharding changes *where* a request is
served, never *what* it observes.  The differential suite drives the
same invocation sequence through a single-lock ``QueryService`` and a
``ShardedQueryService`` over identically populated databases and
requires identical rows, identical I/O accounting, and identical
start-up decisions for all five paper queries in every execution mode.
The eviction tests pit the per-shard LRU caches against a reference
simulation and require exact hit/miss/evict counts, and the admission
tests require overload to surface as typed
:class:`~repro.common.errors.ServiceOverloadError` fast-rejections
that are counted — never as hangs or silent drops.
"""

import json
import threading
import time

import pytest

from repro.__main__ import main
from repro.catalog.synthetic import populate_database
from repro.common.errors import ServiceOverloadError
from repro.observability import MetricsRegistry
from repro.optimizer.query import canonical_signature
from repro.service import (
    QueryService,
    ServiceRequest,
    ShardedQueryService,
    shard_index_for,
)
from repro.storage import Database
from repro.workloads import paper_workload
from repro.workloads.bindings import random_bindings
from repro.workloads.traffic import (
    HeavyTrafficSpec,
    TrafficRequest,
    build_traffic_queries,
    to_service_requests,
)

THREADS = 8

EXECUTION_MODES = ("row", "batch", "compiled")


def small_traffic(requests=120, shapes=12, seed=0, tenants=2):
    """A small materialized traffic stream for gateway tests."""
    spec = HeavyTrafficSpec(
        requests=requests,
        query_shapes=shapes,
        tenants=tenants,
        seed=seed,
    )
    return to_service_requests(spec)


def round_robin_requests(spec, rounds):
    """``rounds`` passes over every shape in rank order, materialized.

    Unlike the Zipf stream this touches *every* shape every round, so
    LRU behaviour per shard is fully determined by the shard's
    capacity and the set of shapes routed to it.
    """
    catalog, queries = build_traffic_queries(spec)
    traffic = []
    for round_index in range(rounds):
        for shape in range(spec.query_shapes):
            index = round_index * spec.query_shapes + shape
            traffic.append(
                TrafficRequest(
                    index,
                    shape,
                    "tenant-0",
                    float(index),
                    0.1 + 0.8 * shape / spec.query_shapes,
                )
            )
    return to_service_requests(spec, traffic=traffic, catalog=catalog,
                               queries=queries)


class TestRouting:
    def test_shard_index_is_deterministic_and_in_range(self):
        spec = HeavyTrafficSpec(requests=0, query_shapes=16)
        _, queries = build_traffic_queries(spec)
        for query in queries:
            signature = canonical_signature(query)
            index = shard_index_for(signature, 8)
            assert 0 <= index < 8
            # Pure function of the signature: stable across calls.
            assert shard_index_for(signature, 8) == index
        # Distinct signatures spread over more than one shard.
        indexes = {
            shard_index_for(canonical_signature(query), 8)
            for query in queries
        }
        assert len(indexes) > 1

    def test_route_is_memoized_per_query_object(self):
        catalog, queries, _ = small_traffic(requests=0, shapes=4)
        with ShardedQueryService(
            Database(catalog), shards=4, execute=False
        ) as gateway:
            first = gateway.route(queries[0])
            assert gateway.route(queries[0]) == first
            assert id(queries[0]) in gateway._route_memo
            assert gateway.shard_for(queries[0]) is first[1]

    def test_every_signature_lands_on_exactly_one_shard(self):
        catalog, queries, requests = small_traffic(requests=150, shapes=12)
        with ShardedQueryService(
            Database(catalog), shards=4, capacity=32, execute=False
        ) as gateway:
            gateway.run_batch(requests)
            # Each shard's cache holds exactly the signatures that hash
            # to it; the union is exactly the set of served shapes.
            served_shapes = {request.query.name for request in requests}
            expected = [0] * len(gateway.shards)
            for query in queries:
                if query.name in served_shapes:
                    signature = canonical_signature(query)
                    expected[shard_index_for(signature, len(gateway.shards))] += 1
            per_shard = [len(shard.service.cache) for shard in gateway.shards]
            assert per_shard == expected
            assert sum(per_shard) == len(served_shapes)


class TestDifferential:
    """Sharded and single-lock serving must be observationally equal."""

    @pytest.mark.parametrize("mode", EXECUTION_MODES)
    def test_paper_queries_identical_rows_io_and_decisions(self, mode):
        for query_number in range(1, 6):
            workload = paper_workload(query_number)
            single_db = Database(workload.catalog)
            sharded_db = Database(workload.catalog)
            populate_database(single_db, seed=0)
            populate_database(sharded_db, seed=0)
            requests = [
                ServiceRequest(
                    workload.query,
                    random_bindings(workload, seed=17, run_index=run),
                )
                for run in range(3)
            ]
            # One worker each side: with a wider pool, same-signature
            # requests race the first compile and the hit/miss split
            # becomes timing-dependent on both tiers.
            with QueryService(
                single_db, max_workers=1, execute=True, execution_mode=mode
            ) as single, ShardedQueryService(
                sharded_db, shards=3, execute=True, execution_mode=mode
            ) as sharded:
                single_results = single.run_batch(requests)
                sharded_results = sharded.run_batch(requests)

            for ours, theirs in zip(single_results, sharded_results):
                label = "query %d mode %s" % (query_number, mode)
                assert ours.digest == theirs.digest, label
                assert ours.cache_hit == theirs.cache_hit, label
                assert ours.reoptimized == theirs.reoptimized, label
                # Identical start-up decisions, not just identical
                # row counts: the memoized fast path must choose the
                # very same static plan the single service chooses.
                assert repr(ours.chosen) == repr(theirs.chosen), label
                assert (
                    ours.startup_report.decisions
                    == theirs.startup_report.decisions
                ), label
                # Identical rows in identical order, identical I/O.
                assert [repr(record) for record in ours.execution.records] == [
                    repr(record) for record in theirs.execution.records
                ], label
                assert (
                    ours.execution.io_snapshot == theirs.execution.io_snapshot
                ), label

    def test_traffic_stream_identical_results_startup_only(self):
        catalog, _, requests = small_traffic(requests=200, shapes=16)
        with QueryService(
            Database(catalog), capacity=32, max_workers=1, execute=False
        ) as single, ShardedQueryService(
            Database(catalog), shards=4, capacity=32, execute=False
        ) as sharded:
            single_results = single.run_batch(requests)
            sharded_results = sharded.run_batch(requests)
            single_stats = single.stats()
            sharded_stats = sharded.stats()
        for ours, theirs in zip(single_results, sharded_results):
            assert ours.digest == theirs.digest
            assert ours.cache_hit == theirs.cache_hit
            assert repr(ours.chosen) == repr(theirs.chosen)
        # Cache accounting is partition-invariant: the same lookups,
        # hits, and misses, just split across shards.
        for key in ("lookups", "hits", "misses"):
            assert single_stats.cache[key] == sharded_stats.total.cache[key]


class TestAdmissionControl:
    def test_shard_queue_full_fast_rejects_typed(self):
        catalog, queries, _ = small_traffic(requests=0, shapes=2)
        metrics = MetricsRegistry()
        with ShardedQueryService(
            Database(catalog),
            shards=2,
            max_pending=1,
            execute=False,
            metrics=metrics,
        ) as gateway:
            query = queries[0]
            shard = gateway.shard_for(query)
            shard.try_admit()  # occupy the single queue slot
            _, _, requests = small_traffic(requests=1, shapes=2)
            with pytest.raises(ServiceOverloadError) as excinfo:
                gateway.run(query, requests[0].bindings)
            error = excinfo.value
            assert error.reason == "shard_queue_full"
            assert error.shard == shard.index
            assert error.pending == 1
            assert error.limit == 1
            assert gateway.overload_counts() == {
                "shard_queue_full": 1,
                "tenant_quota": 0,
            }
            assert (
                metrics.get("service_overload_shard_queue_full_total").value
                == 1
            )
            assert (
                metrics.get("service_overload_rejections_total").value == 1
            )
            # Releasing the slot un-wedges the shard: same request
            # is now served, and no requests were silently dropped.
            shard.release()
            result = gateway.run(query, requests[0].bindings)
            assert result.digest
            stats = gateway.stats()
            assert stats.requests == 1
            assert stats.rejections == 1

    def test_tenant_quota_rejects_and_rolls_back_shard_slot(self):
        catalog, queries, _ = small_traffic(requests=1, shapes=1)
        _, _, requests = small_traffic(requests=1, shapes=1)
        with ShardedQueryService(
            Database(catalog),
            shards=2,
            tenant_quota=4,
            tenant_quotas={"blocked": 0},
            execute=False,
        ) as gateway:
            query = queries[0]
            shard = gateway.shard_for(query)
            with pytest.raises(ServiceOverloadError) as excinfo:
                gateway.run(query, requests[0].bindings, tenant="blocked")
            error = excinfo.value
            assert error.reason == "tenant_quota"
            assert error.tenant == "blocked"
            assert error.limit == 0
            # All-or-nothing admission: the shard slot reserved before
            # the quota check was returned.
            assert shard.pending == 0
            assert gateway.overload_counts()["tenant_quota"] == 1
            # Unattributed requests are never quota limited, and other
            # tenants run under the default quota.
            gateway.run(query, requests[0].bindings, tenant=None)
            gateway.run(query, requests[0].bindings, tenant="fine")
            assert gateway.tenant_inflight("fine") == 0  # released
            assert gateway.stats().requests == 2

    def test_overload_conservation_under_flood(self):
        """served + rejected == submitted, with a deliberately slow
        optimizer keeping the single shard busy during the flood."""
        from repro.optimizer.optimizer import optimize_dynamic

        def slow_optimize(catalog, query, **kwargs):
            time.sleep(0.05)
            return optimize_dynamic(catalog, query, **kwargs)

        catalog, queries, requests = small_traffic(requests=40, shapes=1)
        attempts = len(requests)
        with ShardedQueryService(
            Database(catalog),
            shards=1,
            max_pending=4,
            execute=False,
            optimize=slow_optimize,
        ) as gateway:
            futures = []
            rejected = 0
            for request in requests:
                try:
                    futures.append(
                        gateway.submit(request.query, request.bindings)
                    )
                except ServiceOverloadError as error:
                    assert error.reason == "shard_queue_full"
                    rejected += 1
            results = [future.result() for future in futures]
            stats = gateway.stats()
            assert gateway.shards[0].pending == 0
        # The flood outran a worker that was busy optimizing: some
        # requests were admitted, some shed, none lost.
        assert rejected >= 1
        assert len(results) >= 1
        assert len(results) + rejected == attempts
        assert stats.total.requests == len(results)
        assert stats.rejections == rejected
        assert stats.overload["shard_queue_full"] == rejected


class TestExactStatistics:
    def test_aggregate_equals_per_shard_sums(self):
        metrics = MetricsRegistry()
        catalog, _, requests = small_traffic(requests=160, shapes=12)
        with ShardedQueryService(
            Database(catalog),
            shards=4,
            capacity=32,
            execute=False,
            metrics=metrics,
        ) as gateway:
            gateway.run_batch(requests)
            stats = gateway.stats()
            cache_sizes = [len(s.service.cache) for s in gateway.shards]
        assert stats.total.requests == len(requests)
        assert stats.total.requests == sum(
            part.requests for part in stats.per_shard
        )
        for key in ("lookups", "hits", "misses", "evictions"):
            assert stats.total.cache[key] == sum(
                part.cache[key] for part in stats.per_shard
            )
        # Internally consistent snapshots: per shard and in aggregate,
        # hits + misses == lookups and one latency sample per request.
        for part in list(stats.per_shard) + [stats.total]:
            assert part.cache["hits"] + part.cache["misses"] == (
                part.cache["lookups"]
            )
            assert len(part.startup_samples) == part.requests
        assert stats.rejections == 0
        # Per-shard gauges are registered and quiesce to the truth.
        for shard in range(4):
            assert metrics.get("service_shard%d_pending" % shard).value == 0
            assert (
                metrics.get("service_shard%d_cache_entries" % shard).value
                == cache_sizes[shard]
            )

    def test_percentiles_recomputed_over_union_of_samples(self):
        from repro.common.stats import percentile

        catalog, _, requests = small_traffic(requests=80, shapes=8)
        with ShardedQueryService(
            Database(catalog), shards=4, execute=False
        ) as gateway:
            gateway.run_batch(requests)
            stats = gateway.stats()
        merged = sorted(
            sample
            for part in stats.per_shard
            for sample in part.startup_samples
        )
        assert len(merged) == len(requests)
        assert stats.total.startup_p50 == percentile(merged, 0.50)
        assert stats.total.startup_p95 == percentile(merged, 0.95)


class TestEvictionAccounting:
    def test_lru_eviction_matches_reference_simulation(self):
        """Exact per-shard hit/miss/evict counts vs a reference LRU.

        ``run_batch`` serves each shard's chunk serially in request
        order, so per-shard cache behaviour is fully determined — a
        ten-line LRU simulation predicts every counter exactly.
        """
        capacity = 3
        spec = HeavyTrafficSpec(requests=0, query_shapes=24, seed=5)
        catalog, queries, requests = round_robin_requests(spec, rounds=3)
        shard_count = 4
        with ShardedQueryService(
            Database(catalog),
            shards=shard_count,
            capacity=capacity,
            execute=False,
        ) as gateway:
            gateway.run_batch(requests)
            snapshots = [
                shard.service.cache.stats_snapshot()
                for shard in gateway.shards
            ]
            stats = gateway.stats()

        # Reference simulation over each shard's serial sub-sequence.
        expected = [
            {"lookups": 0, "hits": 0, "misses": 0, "evictions": 0}
            for _ in range(shard_count)
        ]
        lru = [[] for _ in range(shard_count)]  # most recent last
        for request in requests:
            signature = canonical_signature(request.query)
            index = shard_index_for(signature, shard_count)
            counters, cached = expected[index], lru[index]
            counters["lookups"] += 1
            if signature in cached:
                counters["hits"] += 1
                cached.remove(signature)
                cached.append(signature)
            else:
                counters["misses"] += 1
                cached.append(signature)
                if len(cached) > capacity:
                    cached.pop(0)
                    counters["evictions"] += 1

        for index, snapshot in enumerate(snapshots):
            for key in ("lookups", "hits", "misses", "evictions"):
                assert snapshot[key] == expected[index][key], (
                    "shard %d %s" % (index, key)
                )
            assert snapshot["entries"] == len(lru[index])
            assert snapshot["entries"] <= capacity
        # 24 shapes over 4 shards: some shard holds > capacity shapes
        # (pigeonhole), so the round-robin stream must have evicted.
        assert stats.total.cache["evictions"] >= 1
        assert stats.total.cache["lookups"] == len(requests)

    @pytest.mark.slow
    def test_concurrent_submit_eviction_conservation(self):
        """8 submitter threads, eviction churn, zero lost counts.

        Shard workers are single threads, so every miss inserts an
        entry and ``evictions == misses - live entries`` holds exactly
        per shard no matter how the submitting threads interleave.
        """
        capacity = 2
        shard_count = 4
        catalog, _, requests = small_traffic(
            requests=THREADS * 40, shapes=16, seed=9
        )
        barrier = threading.Barrier(THREADS)
        errors = []
        futures_per_thread = [[] for _ in range(THREADS)]

        with ShardedQueryService(
            Database(catalog),
            shards=shard_count,
            capacity=capacity,
            max_pending=10_000,
            execute=False,
        ) as gateway:

            def worker(thread_index):
                barrier.wait()
                try:
                    for request in requests[thread_index::THREADS]:
                        futures_per_thread[thread_index].append(
                            gateway.submit(request.query, request.bindings)
                        )
                except Exception as error:  # pragma: no cover
                    errors.append(error)

            threads = [
                threading.Thread(target=worker, args=(index,))
                for index in range(THREADS)
            ]
            for thread in threads:
                thread.start()
            # While the hammer runs, snapshots must stay internally
            # consistent — the one-lock-acquisition contract.
            for _ in range(20):
                snapshot = gateway.stats()
                for part in list(snapshot.per_shard) + [snapshot.total]:
                    assert part.cache["hits"] + part.cache["misses"] == (
                        part.cache["lookups"]
                    )
                    assert len(part.startup_samples) == part.requests
            for thread in threads:
                thread.join()
            results = [
                future.result()
                for futures in futures_per_thread
                for future in futures
            ]
            snapshots = [
                shard.service.cache.stats_snapshot()
                for shard in gateway.shards
            ]
            stats = gateway.stats()

        assert errors == []
        assert len(results) == len(requests)
        assert stats.total.requests == len(requests)
        assert stats.rejections == 0
        total_lookups = 0
        for snapshot in snapshots:
            assert snapshot["hits"] + snapshot["misses"] == snapshot["lookups"]
            assert snapshot["entries"] <= capacity
            assert snapshot["evictions"] == (
                snapshot["misses"] - snapshot["entries"]
            )
            total_lookups += snapshot["lookups"]
        assert total_lookups == len(requests)
        assert stats.total.cache["evictions"] >= 1


class TestServeBatchCliSharded:
    def test_shards_tenants_and_qps_report(self, tmp_path, capsys):
        report_path = tmp_path / "qps.json"
        code = main(
            [
                "serve-batch",
                "--invocations", "24",
                "--no-execute",
                "--shards", "3",
                "--tenants", "2",
                "--qps-report", str(report_path),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "sharded gateway: 3 shards" in output
        summary = json.loads(report_path.read_text())
        assert summary["invocations"] == 24
        assert summary["shards"] == 3
        assert summary["tenants"] == 2
        assert sum(summary["per_shard_requests"]) == 24
        assert summary["overload"] == {
            "shard_queue_full": 0,
            "tenant_quota": 0,
        }
        assert set(summary["latency_us"]) == {"p50", "p95", "p99", "mean"}
        assert summary["latency_us"]["p50"] >= 0.0

    def test_spec_file_carries_shards_and_tenants(self, tmp_path, capsys):
        spec_path = tmp_path / "mix.json"
        spec_path.write_text(
            json.dumps(
                {
                    "invocations": 12,
                    "threads": 4,
                    "execute": False,
                    "shards": 2,
                    "tenants": 3,
                    "queries": [
                        {"relations": 1, "weight": 2},
                        {"relations": 2, "weight": 1},
                    ],
                }
            )
        )
        assert main(["serve-batch", str(spec_path)]) == 0
        output = capsys.readouterr().out
        assert "sharded gateway: 2 shards" in output
