"""The LRU buffer pool and the [MaL89] buffer-aware cost refinement."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra.physical import FileScan, Filter, FilterBTreeScan
from repro.cost.formulas import CostModel, lru_page_faults
from repro.cost.parameters import Bindings, Valuation
from repro.executor import execute_plan
from repro.storage import BufferPool
from repro.workloads import random_bindings


class TestBufferPool:
    def test_miss_then_hit(self):
        pool = BufferPool(4)
        assert pool.access(("R", 0)) is False
        assert pool.access(("R", 0)) is True
        assert pool.hits == 1 and pool.misses == 1

    def test_lru_eviction_order(self):
        pool = BufferPool(2)
        pool.access(("R", 0))
        pool.access(("R", 1))
        pool.access(("R", 0))  # touch 0, so 1 is the LRU victim
        pool.access(("R", 2))  # evicts 1
        assert pool.contains(("R", 0))
        assert not pool.contains(("R", 1))
        assert pool.contains(("R", 2))
        assert pool.evictions == 1

    def test_capacity_respected(self):
        pool = BufferPool(3)
        for page in range(10):
            pool.access(("R", page))
        assert pool.resident_pages == 3

    def test_hit_rate(self):
        pool = BufferPool(10)
        pool.access(("R", 0))
        pool.access(("R", 0))
        pool.access(("R", 0))
        assert pool.hit_rate == pytest.approx(2 / 3)
        pool.clear()
        assert pool.hit_rate == 0.0
        assert pool.resident_pages == 0

    def test_minimum_capacity(self):
        with pytest.raises(ValueError):
            BufferPool(0)


class TestLruFaultFormula:
    def test_zero_records(self):
        assert lru_page_faults(0, 100, 10) == 0.0

    def test_everything_fits(self):
        # Buffer larger than the file: only distinct pages fault.
        faults = lru_page_faults(1000, 50, 64)
        assert faults <= 50

    def test_naive_upper_bound(self):
        # Never more faults than accesses.
        for k in (1, 10, 100, 1000):
            assert lru_page_faults(k, 250, 16) <= k + 1e-9

    def test_monotone_in_records(self):
        previous = 0.0
        for k in (1, 10, 100, 500, 2000):
            faults = lru_page_faults(k, 250, 16)
            assert faults >= previous - 1e-9
            previous = faults

    def test_antimonotone_in_buffer(self):
        previous = float("inf")
        for buffer_pages in (4, 16, 64, 128, 250):
            faults = lru_page_faults(500, 250, buffer_pages)
            assert faults <= previous + 1e-9
            previous = faults

    @settings(max_examples=60, deadline=None)
    @given(
        k=st.integers(0, 5000),
        pages=st.integers(1, 500),
        buffer_pages=st.integers(1, 500),
    )
    def test_bounds_property(self, k, pages, buffer_pages):
        faults = lru_page_faults(k, pages, buffer_pages)
        # Never negative, never more than one fault per access, and at
        # least one fault for the first access to a non-empty file.
        assert 0.0 <= faults <= k + 1e-9
        if k > 0:
            assert faults >= 1.0 - 1e-9


class TestBufferAwareCostModel:
    def test_buffer_aware_never_costs_more(self, workload1):
        space = workload1.query.parameter_space
        bindings = Bindings().bind("sel_R1", 0.8)
        plan = FilterBTreeScan(
            "R1", "a", workload1.query.selection_for("R1")
        )
        naive = CostModel(
            workload1.catalog, Valuation.runtime(space, bindings)
        ).evaluate(plan).cost.lower
        aware = CostModel(
            workload1.catalog,
            Valuation.runtime(space, bindings),
            buffer_aware=True,
        ).evaluate(plan).cost.lower
        assert aware <= naive + 1e-9

    def test_buffer_awareness_matters_at_high_selectivity(self, workload1):
        # At selectivity near 1 the naive model charges one fault per
        # record (550 here) while the pages number only ~138.
        space = workload1.query.parameter_space
        bindings = Bindings().bind("sel_R1", 1.0)
        plan = FilterBTreeScan(
            "R1", "a", workload1.query.selection_for("R1")
        )
        naive = CostModel(
            workload1.catalog, Valuation.runtime(space, bindings)
        ).evaluate(plan).cost.lower
        aware = CostModel(
            workload1.catalog,
            Valuation.runtime(space, bindings),
            buffer_aware=True,
        ).evaluate(plan).cost.lower
        assert aware < naive * 0.75

    def test_prediction_tracks_buffered_execution(self, workload1,
                                                  database1):
        """The refined model must predict the pooled execution's page
        reads better than the naive model does."""
        from repro.common.units import IO_TIME_PER_PAGE

        predicate = workload1.query.selection_for("R1")
        space = workload1.query.parameter_space
        domain = workload1.catalog.domain_size("R1", "a")
        selectivity = 0.9
        bindings = random_bindings(workload1, seed=2)
        bindings.bind("sel_R1", selectivity)
        bindings.bind_variable("v_R1", selectivity * domain)
        plan = FilterBTreeScan("R1", "a", predicate)

        executed = execute_plan(
            plan, database1, bindings, space, use_buffer_pool=True
        )
        actual_fault_seconds = (
            executed.io_snapshot["pages_read"] * IO_TIME_PER_PAGE
        )
        naive = CostModel(
            workload1.catalog, Valuation.runtime(space, bindings)
        ).evaluate(plan).cost.lower
        aware = CostModel(
            workload1.catalog,
            Valuation.runtime(space, bindings),
            buffer_aware=True,
        ).evaluate(plan).cost.lower
        naive_error = abs(naive - actual_fault_seconds)
        aware_error = abs(aware - actual_fault_seconds)
        assert aware_error < naive_error

    def test_buffered_execution_reads_fewer_pages(self, workload1,
                                                  database1):
        predicate = workload1.query.selection_for("R1")
        space = workload1.query.parameter_space
        domain = workload1.catalog.domain_size("R1", "a")
        bindings = random_bindings(workload1, seed=2)
        bindings.bind("sel_R1", 0.9)
        bindings.bind_variable("v_R1", 0.9 * domain)
        plan = FilterBTreeScan("R1", "a", predicate)
        without_pool = execute_plan(plan, database1, bindings, space)
        with_pool = execute_plan(
            plan, database1, bindings, space, use_buffer_pool=True
        )
        assert (
            with_pool.io_snapshot["pages_read"]
            < without_pool.io_snapshot["pages_read"]
        )
        assert with_pool.row_count == without_pool.row_count

    def test_file_scan_unaffected(self, workload1):
        space = workload1.query.parameter_space
        bindings = Bindings().bind("sel_R1", 0.5)
        plan = Filter(FileScan("R1"), workload1.query.selection_for("R1"))
        naive = CostModel(
            workload1.catalog, Valuation.runtime(space, bindings)
        ).evaluate(plan).cost
        aware = CostModel(
            workload1.catalog,
            Valuation.runtime(space, bindings),
            buffer_aware=True,
        ).evaluate(plan).cost
        assert naive == aware
