"""Smoke tests: every shipped example runs to completion.

Examples are deliverables; these tests keep them green as the library
evolves.  Each example is executed in-process (fast, importable) with
its ``main()`` entry.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(path.stem for path in EXAMPLES_DIR.glob("*.py"))


def load_example(name):
    spec = importlib.util.spec_from_file_location(
        "example_%s" % name, EXAMPLES_DIR / ("%s.py" % name)
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_all_examples_discovered(self):
        assert len(EXAMPLES) >= 6
        assert "quickstart" in EXAMPLES

    @pytest.mark.parametrize("name", EXAMPLES)
    def test_example_runs(self, name, capsys):
        module = load_example(name)
        assert module.__doc__, "example %s lacks a docstring" % name
        module.main()
        output = capsys.readouterr().out
        assert output.strip(), "example %s printed nothing" % name

    def test_quickstart_shows_decision_flip(self, capsys):
        load_example("quickstart").main()
        output = capsys.readouterr().out
        assert "Filter-B-tree-Scan" in output
        assert "Filter" in output

    def test_embedded_query_shows_build_sides(self, capsys):
        load_example("embedded_query").main()
        output = capsys.readouterr().out
        assert "Hash-Join" in output

    def test_adaptive_example_reports_recovery(self, capsys):
        load_example("adaptive_execution").main()
        output = capsys.readouterr().out
        assert "recovered" in output
