"""Property-based tests over randomly generated queries.

Hypothesis builds random workloads (topology, relation count, seeds)
and checks the library's core invariants on each:

* the optimality guarantee g_i = d_i,
* compile-time interval containment of all runtime costs,
* dominance pruning soundness (dynamic matches exhaustive),
* access-module round-trip identity.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cost.formulas import CostModel
from repro.cost.parameters import Valuation
from repro.executor import AccessModule, resolve_dynamic_plan
from repro.optimizer import optimize_dynamic, optimize_runtime
from repro.scenarios import predicted_execution_seconds
from repro.workloads import make_join_workload, random_bindings


@st.composite
def workloads(draw):
    topology = draw(st.sampled_from(["chain", "star", "cycle"]))
    relation_count = draw(st.integers(min_value=1, max_value=4))
    if topology == "cycle" and relation_count < 3:
        relation_count = 3
    seed = draw(st.integers(0, 50))
    memory_uncertain = draw(st.booleans())
    return make_join_workload(
        relation_count,
        topology=topology,
        memory_uncertain=memory_uncertain,
        seed=seed,
    )


class TestRandomQueryInvariants:
    @settings(max_examples=12, deadline=None)
    @given(workload=workloads(), binding_seed=st.integers(0, 1000))
    def test_optimality_guarantee(self, workload, binding_seed):
        dynamic = optimize_dynamic(workload.catalog, workload.query)
        bindings = random_bindings(workload, seed=binding_seed)
        chosen, _ = resolve_dynamic_plan(
            dynamic.plan, workload.catalog,
            workload.query.parameter_space, bindings,
        )
        chosen_cost = predicted_execution_seconds(
            chosen, workload.catalog, workload.query.parameter_space, bindings
        )
        optimum = optimize_runtime(workload.catalog, workload.query, bindings)
        optimal_cost = predicted_execution_seconds(
            optimum.plan, workload.catalog,
            workload.query.parameter_space, bindings,
        )
        assert chosen_cost == pytest.approx(optimal_cost, rel=1e-9)

    @settings(max_examples=12, deadline=None)
    @given(workload=workloads(), binding_seed=st.integers(0, 1000))
    def test_interval_containment_of_runtime_costs(self, workload,
                                                   binding_seed):
        dynamic = optimize_dynamic(workload.catalog, workload.query)
        compile_model = CostModel(
            workload.catalog, Valuation.bounds(workload.query.parameter_space)
        )
        bindings = random_bindings(workload, seed=binding_seed)
        runtime_model = CostModel(
            workload.catalog,
            Valuation.runtime(workload.query.parameter_space, bindings),
        )
        for node in dynamic.plan.walk_unique():
            compile_cost = compile_model.evaluate(node).cost
            runtime_cost = runtime_model.evaluate(node).cost
            tolerance = 1e-9 + compile_cost.upper * 1e-9
            assert compile_cost.lower - tolerance <= runtime_cost.lower
            assert runtime_cost.upper <= compile_cost.upper + tolerance

    @settings(max_examples=10, deadline=None)
    @given(workload=workloads())
    def test_access_module_round_trip(self, workload):
        dynamic = optimize_dynamic(workload.catalog, workload.query)
        module = AccessModule.from_plan(dynamic.plan, workload.name)
        rebuilt = module.materialize()
        assert rebuilt.signature() == dynamic.plan.signature()
        assert rebuilt.node_count() == dynamic.plan.node_count()

    @settings(max_examples=8, deadline=None)
    @given(workload=workloads(), binding_seed=st.integers(0, 1000))
    def test_dynamic_cost_interval_contains_chosen_cost(self, workload,
                                                        binding_seed):
        dynamic = optimize_dynamic(workload.catalog, workload.query)
        bindings = random_bindings(workload, seed=binding_seed)
        chosen, _ = resolve_dynamic_plan(
            dynamic.plan, workload.catalog,
            workload.query.parameter_space, bindings,
        )
        chosen_cost = predicted_execution_seconds(
            chosen, workload.catalog, workload.query.parameter_space, bindings
        )
        # The dynamic plan's compile-time interval brackets every
        # chosen execution cost (up to the decision overhead included
        # in the interval but not in pure execution).
        assert chosen_cost <= dynamic.cost.upper + 1e-9
