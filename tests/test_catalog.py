"""Schemas, statistics, catalog registry, and the synthetic generator."""

import pytest

from repro.catalog import (
    Attribute,
    AttributeStatistics,
    AttributeType,
    Catalog,
    IndexInfo,
    RelationStatistics,
    Schema,
    build_synthetic_catalog,
    default_relation_specs,
    generate_rows,
    populate_database,
)
from repro.catalog.synthetic import (
    CARDINALITY_RANGE,
    DOMAIN_FACTOR_RANGE,
    JOIN_DOMAIN_FACTOR,
)
from repro.common.errors import CatalogError
from repro.storage import Database


def simple_schema(name="R"):
    return Schema(name, [Attribute("a"), Attribute("b")])


def simple_stats(name="R", cardinality=100):
    return RelationStatistics(
        name,
        cardinality,
        [AttributeStatistics("a", 50), AttributeStatistics("b", 40)],
    )


class TestSchema:
    def test_position_and_lookup(self):
        schema = simple_schema()
        assert schema.position_of("a") == 0
        assert schema.position_of("R.b") == 1
        assert schema.attribute("b").name == "b"

    def test_qualified_names(self):
        assert simple_schema().qualified_names() == ("R.a", "R.b")

    def test_contains(self):
        schema = simple_schema()
        assert "a" in schema
        assert "R.b" in schema
        assert "c" not in schema

    def test_unknown_attribute_raises(self):
        with pytest.raises(CatalogError):
            simple_schema().position_of("zzz")

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(CatalogError):
            Schema("R", [Attribute("a"), Attribute("a")])

    def test_qualified_attribute_name_rejected(self):
        with pytest.raises(CatalogError):
            Attribute("R.a")

    def test_empty_attribute_name_rejected(self):
        with pytest.raises(CatalogError):
            Attribute("")

    def test_len_and_iter(self):
        schema = simple_schema()
        assert len(schema) == 2
        assert [attribute.name for attribute in schema] == ["a", "b"]

    def test_attribute_equality(self):
        assert Attribute("a") == Attribute("a", AttributeType.INTEGER)
        assert Attribute("a") != Attribute("a", AttributeType.STRING)


class TestStatistics:
    def test_pages(self):
        assert simple_stats(cardinality=100).pages == 25
        assert simple_stats(cardinality=0).pages == 0

    def test_attribute_lookup_accepts_qualified(self):
        stats = simple_stats()
        assert stats.attribute("R.a").domain_size == 50
        assert stats.has_attribute("R.b")
        assert not stats.has_attribute("zzz")

    def test_unknown_attribute_raises(self):
        with pytest.raises(CatalogError):
            simple_stats().attribute("missing")

    def test_negative_cardinality_rejected(self):
        with pytest.raises(CatalogError):
            RelationStatistics("R", -1)

    def test_nonpositive_domain_rejected(self):
        with pytest.raises(CatalogError):
            AttributeStatistics("a", 0)

    def test_default_value_range(self):
        stats = AttributeStatistics("a", 10)
        assert stats.min_value == 0
        assert stats.max_value == 9


class TestCatalog:
    def test_register_and_lookup(self):
        catalog = Catalog()
        catalog.add_relation(simple_schema(), simple_stats())
        assert catalog.has_relation("R")
        assert catalog.cardinality("R") == 100
        assert catalog.domain_size("R", "a") == 50
        assert catalog.relation_names() == ["R"]

    def test_duplicate_relation_rejected(self):
        catalog = Catalog()
        catalog.add_relation(simple_schema(), simple_stats())
        with pytest.raises(CatalogError):
            catalog.add_relation(simple_schema(), simple_stats())

    def test_schema_statistics_name_mismatch_rejected(self):
        catalog = Catalog()
        with pytest.raises(CatalogError):
            catalog.add_relation(simple_schema("R"), simple_stats("S"))

    def test_unknown_relation_raises(self):
        with pytest.raises(CatalogError):
            Catalog().schema("nope")

    def test_index_registration(self):
        catalog = Catalog()
        catalog.add_relation(simple_schema(), simple_stats())
        catalog.add_index(IndexInfo("R", "a"))
        assert catalog.index_on("R", "a") is not None
        assert catalog.index_on("R", "R.a") is not None
        assert catalog.index_on("R", "b") is None
        assert len(catalog.indexes_for("R")) == 1

    def test_index_on_unknown_relation_rejected(self):
        with pytest.raises(CatalogError):
            Catalog().add_index(IndexInfo("R", "a"))

    def test_index_on_unknown_attribute_rejected(self):
        catalog = Catalog()
        catalog.add_relation(simple_schema(), simple_stats())
        with pytest.raises(CatalogError):
            catalog.add_index(IndexInfo("R", "zzz"))

    def test_drop_index(self):
        # Mirrors "indexes are created and destroyed" from Section 1.
        catalog = Catalog()
        catalog.add_relation(simple_schema(), simple_stats())
        catalog.add_index(IndexInfo("R", "a"))
        catalog.drop_index("R", "a")
        assert catalog.index_on("R", "a") is None
        with pytest.raises(CatalogError):
            catalog.drop_index("R", "a")


class TestSyntheticGenerator:
    def test_cardinalities_span_paper_range(self):
        specs = default_relation_specs(10, seed=0)
        cards = [spec.cardinality for spec in specs]
        assert min(cards) == CARDINALITY_RANGE[0]
        assert max(cards) == CARDINALITY_RANGE[1]
        assert cards == sorted(cards)

    def test_single_relation_uses_mid_cardinality(self):
        (spec,) = default_relation_specs(1)
        assert CARDINALITY_RANGE[0] < spec.cardinality < CARDINALITY_RANGE[1]

    def test_join_attribute_domains_use_calibrated_factor(self):
        specs = default_relation_specs(4, seed=0)
        for spec in specs:
            for attr in ("b", "c"):
                expected = max(1, int(round(spec.cardinality * JOIN_DOMAIN_FACTOR)))
                assert spec.domain_sizes[attr] == expected

    def test_selection_attribute_domains_within_paper_range(self):
        specs = default_relation_specs(6, seed=1)
        low, high = DOMAIN_FACTOR_RANGE
        for spec in specs:
            factor = spec.domain_sizes["a"] / spec.cardinality
            assert low - 0.01 <= factor <= high + 0.01

    def test_catalog_has_indexes_on_all_attributes(self):
        specs = default_relation_specs(2, seed=0)
        catalog = build_synthetic_catalog(specs, seed=0)
        for spec in specs:
            for attr in ("a", "b", "c"):
                index = catalog.index_on(spec.name, attr)
                assert index is not None
                assert not index.clustered  # paper: unclustered B-trees

    def test_generated_rows_match_cardinality_and_domains(self):
        specs = default_relation_specs(1, seed=0)
        catalog = build_synthetic_catalog(specs, seed=0)
        rows = list(generate_rows(catalog, "R1", seed=0))
        stats = catalog.statistics("R1")
        assert len(rows) == stats.cardinality
        for attr in ("a", "b", "c"):
            domain = stats.attribute(attr).domain_size
            values = [row[attr] for row in rows]
            assert all(0 <= value < domain for value in values)

    def test_generation_deterministic(self):
        specs = default_relation_specs(1, seed=0)
        catalog = build_synthetic_catalog(specs, seed=0)
        rows_a = list(generate_rows(catalog, "R1", seed=5))
        rows_b = list(generate_rows(catalog, "R1", seed=5))
        assert rows_a == rows_b

    def test_populate_database_builds_indexes(self):
        specs = default_relation_specs(1, seed=0)
        catalog = build_synthetic_catalog(specs, seed=0)
        database = Database(catalog)
        populate_database(database, seed=0)
        heap = database.heap("R1")
        assert heap.record_count == catalog.cardinality("R1")
        btree = database.btree("R1", "a")
        assert btree.entry_count == catalog.cardinality("R1")
        btree.check_invariants()
