"""Shared fixtures: workloads, catalogs, and populated databases.

Session-scoped fixtures are safe because workloads, catalogs, plans,
and databases are treated as immutable by the tests (executions only
mutate I/O counters, which tests snapshot-delta).
"""

import os

import pytest

from repro.catalog import populate_database
from repro.storage import Database
from repro.workloads import make_join_workload, paper_workload

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "goldens")


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/goldens/*.txt from current output instead "
        "of asserting against it",
    )


@pytest.fixture
def golden(request):
    """Compare text against a golden file (or rewrite it).

    Usage: ``golden("explain_q2.txt", rendered_text)``.  With
    ``--update-goldens`` the file is rewritten and the test passes;
    otherwise the text must match the stored golden byte for byte.
    """
    update = request.config.getoption("--update-goldens")

    def check(name, text):
        path = os.path.join(GOLDEN_DIR, name)
        if update:
            os.makedirs(GOLDEN_DIR, exist_ok=True)
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
            return
        if not os.path.exists(path):
            raise AssertionError(
                "golden file %s missing; run pytest --update-goldens"
                % name
            )
        with open(path, "r", encoding="utf-8") as handle:
            expected = handle.read()
        assert text == expected, (
            "output differs from goldens/%s; if the change is "
            "intentional, run pytest --update-goldens" % name
        )

    return check


@pytest.fixture(scope="session")
def workload1():
    """Paper query 1: one relation, one unbound predicate."""
    return paper_workload(1, seed=0)


@pytest.fixture(scope="session")
def workload2():
    """Paper query 2: two-way join, two unbound predicates."""
    return paper_workload(2, seed=0)


@pytest.fixture(scope="session")
def workload3():
    """Paper query 3: four-way join."""
    return paper_workload(3, seed=0)


@pytest.fixture(scope="session")
def workload2_mem():
    """Query 2 with uncertain memory."""
    return paper_workload(2, memory_uncertain=True, seed=0)


@pytest.fixture(scope="session")
def star_workload():
    """A 4-way star-topology join."""
    return make_join_workload(4, topology="star", seed=3)


@pytest.fixture(scope="session")
def database2(workload2):
    """Stored data for query 2's catalog."""
    database = Database(workload2.catalog)
    populate_database(database, seed=0)
    return database


@pytest.fixture(scope="session")
def database1(workload1):
    """Stored data for query 1's catalog."""
    database = Database(workload1.catalog)
    populate_database(database, seed=0)
    return database


@pytest.fixture(scope="session")
def database3(workload3):
    """Stored data for query 3's catalog."""
    database = Database(workload3.catalog)
    populate_database(database, seed=0)
    return database
