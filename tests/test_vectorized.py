"""Differential tests: batch execution must equal row execution.

The vectorized engine re-implements every physical operator, so the
highest-risk bug is a silent semantic divergence — different rows,
different simulated I/O, or different start-up decisions than the
record-at-a-time Volcano path.  These tests execute every paper query
in both modes from identically populated databases, across static and
dynamic plans and with tracing on and off, and require byte-identical
result rows, identical ``IOStatistics`` totals, and identical
choose-plan decisions.

Batch-boundary edge cases run separately: empty input, a result
smaller than one batch, batch size 1 (degenerating to row-at-a-time
granularity), and a final partial batch.
"""

import pytest

from repro.catalog import populate_database
from repro.common.errors import ExecutionError
from repro.executor.engine import (
    DEFAULT_BATCH_SIZE,
    EXECUTION_MODES,
    ExecutionContext,
    execute_plan,
)
from repro.executor.vectorized import build_batch_iterator
from repro.observability import Tracer
from repro.optimizer.optimizer import optimize_dynamic, optimize_static
from repro.storage.database import Database
from repro.workloads import binding_series, paper_workload

PAPER_QUERIES = (1, 2, 3, 4, 5)
PLAN_KINDS = ("static", "dynamic")


def _optimize(workload, kind):
    if kind == "static":
        return optimize_static(workload.catalog, workload.query).plan
    return optimize_dynamic(workload.catalog, workload.query).plan


def _run(workload, plan, bindings, mode, tracer=None, batch_size=None):
    database = Database(workload.catalog)
    populate_database(database, seed=11)
    return execute_plan(
        plan,
        database,
        bindings,
        workload.query.parameter_space,
        tracer=tracer,
        execution_mode=mode,
        batch_size=batch_size,
    )


@pytest.mark.parametrize("traced", (False, True), ids=("untraced", "traced"))
@pytest.mark.parametrize("kind", PLAN_KINDS)
@pytest.mark.parametrize("number", PAPER_QUERIES)
def test_batch_matches_row(number, kind, traced):
    workload = paper_workload(number)
    plan = _optimize(workload, kind)
    for bindings in binding_series(workload, count=2, seed=5):
        row = _run(
            workload, plan, bindings, "row",
            tracer=Tracer() if traced else None,
        )
        batch = _run(
            workload, plan, bindings, "batch",
            tracer=Tracer() if traced else None,
        )

        assert batch.records == row.records
        assert batch.io_snapshot == row.io_snapshot
        assert batch.decisions == row.decisions


@pytest.mark.parametrize("kind", PLAN_KINDS)
@pytest.mark.parametrize("number", PAPER_QUERIES)
def test_batch_trace_reports_exact_rows(number, kind):
    """Batch spans advance by batch length: cardinalities stay exact."""
    workload = paper_workload(number)
    plan = _optimize(workload, kind)
    bindings = binding_series(workload, count=1, seed=5)[0]
    row = _run(workload, plan, bindings, "row", tracer=Tracer())
    batch = _run(workload, plan, bindings, "batch", tracer=Tracer())

    assert len(batch.trace.roots) == 1
    root = batch.trace.roots[0]
    assert root.rows == batch.row_count
    assert root.pages_read == batch.io_snapshot["pages_read"]
    assert root.records_processed == batch.io_snapshot["records_processed"]

    # Span-by-span, the batch trace reports the same per-operator rows
    # as the row trace (same tree shape, same cardinalities).
    row_spans = [(s.operator, s.rows) for s, _ in row.trace.walk()]
    batch_spans = [(s.operator, s.rows) for s, _ in batch.trace.walk()]
    assert batch_spans == row_spans


# ----------------------------------------------------------------------
# Batch-boundary edge cases
# ----------------------------------------------------------------------


def _edge_workload():
    """Query 2 (two-way join) — small enough to sweep batch sizes."""
    return paper_workload(2)


@pytest.mark.parametrize("batch_size", (1, 2, 3, 7, 64, 1024))
def test_batch_size_sweep_preserves_results(batch_size):
    """Any batch size — including 1 — yields the row-mode results.

    Covers the partial-final-batch case: the result cardinalities are
    not multiples of most of these sizes, so the last batch is short.
    """
    workload = _edge_workload()
    plan = _optimize(workload, "dynamic")
    bindings = binding_series(workload, count=1, seed=5)[0]
    row = _run(workload, plan, bindings, "row")
    batch = _run(workload, plan, bindings, "batch", batch_size=batch_size)
    assert batch.records == row.records
    assert batch.io_snapshot == row.io_snapshot
    assert batch.decisions == row.decisions


def test_empty_input_produces_no_batches():
    """A selection no record satisfies flows empty batches end to end."""
    workload = _edge_workload()
    plan = _optimize(workload, "static")
    bindings = binding_series(workload, count=1, seed=5)[0]
    # Rebind every selection variable below any stored value, so every
    # scan's filter rejects all records.
    for name in list(bindings._variables):
        bindings.bind_variable(name, -1)
    for name in bindings.parameter_names():
        if name.startswith("sel_"):
            bindings.bind(name, 0.0)
    row = _run(workload, plan, bindings, "row")
    batch = _run(workload, plan, bindings, "batch")
    assert row.records == []
    assert batch.records == []
    assert batch.io_snapshot == row.io_snapshot


def test_result_smaller_than_one_batch():
    """The whole result fits inside a single (default-size) batch."""
    workload = _edge_workload()
    plan = _optimize(workload, "static")
    bindings = binding_series(workload, count=1, seed=5)[0]
    batch = _run(workload, plan, bindings, "batch")
    assert 0 < batch.row_count < DEFAULT_BATCH_SIZE


def test_batch_iterator_emits_multiple_nonempty_batches():
    """A small batch size splits the result into several full batches.

    ``batch_size`` is a target, not a hard cap — operators with
    fan-out (a join emitting a duplicate block) may overshoot rather
    than split mid-unit — but no operator may emit an *empty* batch,
    and a size far below the result cardinality must produce more than
    one batch whose concatenation is the row-mode result.
    """
    workload = _edge_workload()
    plan = _optimize(workload, "static")
    bindings = binding_series(workload, count=1, seed=5)[0]
    row = _run(workload, plan, bindings, "row")
    database = Database(workload.catalog)
    populate_database(database, seed=11)
    context = ExecutionContext(
        database,
        bindings,
        workload.query.parameter_space,
        execution_mode="batch",
        batch_size=4,
    )
    batches = list(build_batch_iterator(plan, context).batches())
    assert len(batches) > 1
    assert all(batch for batch in batches)  # no empty batches emitted
    flattened = [record for batch in batches for record in batch]
    assert flattened == row.records


# ----------------------------------------------------------------------
# Mode plumbing
# ----------------------------------------------------------------------


def test_invalid_execution_mode_rejected():
    workload = _edge_workload()
    database = Database(workload.catalog)
    with pytest.raises(ExecutionError):
        ExecutionContext(database, execution_mode="columnar")
    assert EXECUTION_MODES == ("row", "batch", "compiled")


def test_invalid_batch_size_rejected():
    workload = _edge_workload()
    database = Database(workload.catalog)
    with pytest.raises(ExecutionError):
        ExecutionContext(database, execution_mode="batch", batch_size=0)


def test_context_defaults():
    workload = _edge_workload()
    database = Database(workload.catalog)
    context = ExecutionContext(database)
    assert context.execution_mode == "row"
    assert context.batch_size == DEFAULT_BATCH_SIZE


def test_service_execution_mode_default_and_override():
    """The service default applies; per-request mode overrides it."""
    from repro.service import QueryService, ServiceRequest

    workload = _edge_workload()
    database = Database(workload.catalog)
    populate_database(database, seed=11)
    bindings = binding_series(workload, count=1, seed=5)[0]
    with QueryService(
        database, max_workers=1, execution_mode="batch"
    ) as service:
        default_result = service.run(workload.query, bindings)
        row_result = service.run(
            workload.query, bindings, execution_mode="row"
        )
        batched = service.run_batch(
            [
                ServiceRequest(
                    workload.query, bindings, execution_mode="row"
                )
            ]
        )
    assert default_result.execution is not None
    assert default_result.execution.records == row_result.execution.records
    assert batched[0].execution.records == row_result.execution.records


def test_service_rejects_invalid_mode():
    from repro.service import QueryService

    workload = _edge_workload()
    with pytest.raises(ExecutionError):
        QueryService(Database(workload.catalog), execution_mode="columnar")


def test_workload_spec_execution_mode_roundtrip():
    from repro.workloads.service import ServiceWorkloadSpec

    spec = ServiceWorkloadSpec.from_dict(
        {
            "queries": [{"relations": 2}],
            "invocations": 4,
            "execution_mode": "batch",
        }
    )
    assert spec.execution_mode == "batch"
    assert spec.replace(execution_mode="row").execution_mode == "row"
    with pytest.raises(Exception):
        spec.replace(execution_mode="columnar")
