"""The search engine: static mode, dynamic mode, pruning, enforcers."""

import pytest

from repro.algebra.physical import (
    ChoosePlan,
    FilterBTreeScan,
    HashJoin,
    IndexJoin,
    MergeJoin,
    Sort,
)
from repro.cost.formulas import CostModel
from repro.cost.parameters import Valuation
from repro.optimizer import (
    OptimizerConfig,
    OptimizerMode,
    optimize_dynamic,
    optimize_exhaustive,
    optimize_static,
)


class TestStaticMode:
    def test_single_plan_no_choose_operators(self, workload2):
        result = optimize_static(workload2.catalog, workload2.query)
        assert result.plan.choose_plan_count() == 0
        assert result.cost.is_point

    def test_query1_picks_index_scan_at_default_selectivity(self, workload1):
        # The motivating example: at the traditional 0.05 default the
        # index scan looks cheapest, which is what makes static plans
        # fragile at large selectivities.
        result = optimize_static(workload1.catalog, workload1.query)
        operators = [n.operator_name() for n in result.plan.walk_unique()]
        assert "Filter-B-tree-Scan" in operators

    def test_static_config_validation(self, workload1):
        with pytest.raises(ValueError):
            optimize_static(
                workload1.catalog,
                workload1.query,
                OptimizerConfig.dynamic(),
            )

    def test_statistics_populated(self, workload2):
        result = optimize_static(workload2.catalog, workload2.query)
        stats = result.statistics
        assert stats.groups_created > 0
        assert stats.mexprs_total > 0
        assert stats.candidates_considered > 0
        assert stats.cost_evaluations > 0
        assert stats.optimization_seconds > 0

    def test_logical_alternatives_count(self, workload2):
        result = optimize_static(workload2.catalog, workload2.query)
        assert result.logical_alternatives() == 2  # paper: query 2 has 2


class TestDynamicMode:
    def test_root_is_choose_plan(self, workload2):
        result = optimize_dynamic(workload2.catalog, workload2.query)
        assert isinstance(result.plan, ChoosePlan)
        assert result.choose_plan_count() >= 1

    def test_cost_is_interval(self, workload2):
        result = optimize_dynamic(workload2.catalog, workload2.query)
        assert not result.cost.is_point
        assert result.cost.lower >= 0

    def test_dynamic_plan_larger_than_static(self, workload2):
        dynamic = optimize_dynamic(workload2.catalog, workload2.query)
        static = optimize_static(workload2.catalog, workload2.query)
        assert dynamic.node_count() > static.node_count()

    def test_query1_contains_both_scan_alternatives(self, workload1):
        # Figure 1(b): file scan and index scan linked by choose-plan.
        result = optimize_dynamic(workload1.catalog, workload1.query)
        operators = [n.operator_name() for n in result.plan.walk_unique()]
        assert "File-Scan" in operators
        assert "Filter-B-tree-Scan" in operators
        assert "Choose-Plan" in operators

    def test_query2_contains_both_build_sides(self, workload2):
        # Figure 2: hash joins with both build sides in one dynamic plan.
        result = optimize_dynamic(workload2.catalog, workload2.query)
        hash_joins = [
            node
            for node in result.plan.walk_unique()
            if isinstance(node, HashJoin)
        ]
        assert len(hash_joins) >= 2
        builds = set()
        for join in hash_joins:
            relations = frozenset(
                getattr(n, "relation_name", None)
                for n in join.build.walk_unique()
                if getattr(n, "relation_name", None)
            )
            builds.add(relations)
        assert len(builds) >= 2  # both relations appear as build side

    def test_dynamic_plan_is_dag_with_sharing(self, workload3):
        result = optimize_dynamic(workload3.catalog, workload3.query)
        assert result.plan.tree_node_count() > result.plan.node_count()

    def test_choose_plan_cost_below_alternatives(self, workload2):
        result = optimize_dynamic(workload2.catalog, workload2.query)
        model = CostModel(
            workload2.catalog, Valuation.bounds(workload2.query.parameter_space)
        )
        root = result.plan
        root_cost = model.evaluate(root).cost
        overhead = model.choose_plan_overhead
        for alternative in root.alternatives:
            alt_cost = model.evaluate(alternative).cost
            assert root_cost.lower <= alt_cost.lower + overhead + 1e-9
            assert root_cost.upper <= alt_cost.upper + overhead + 1e-9


class TestExhaustiveMode:
    def test_exhaustive_contains_dynamic(self, workload2):
        exhaustive = optimize_exhaustive(workload2.catalog, workload2.query)
        dynamic = optimize_dynamic(workload2.catalog, workload2.query)
        assert exhaustive.node_count() >= dynamic.node_count()

    def test_exhaustive_mode_flag(self):
        config = OptimizerConfig.exhaustive()
        assert config.is_exhaustive
        assert config.mode is OptimizerMode.EXHAUSTIVE


class TestBranchAndBound:
    def test_pruning_does_not_change_dynamic_plan_cost(self, workload3):
        with_bnb = optimize_dynamic(
            workload3.catalog, workload3.query,
            OptimizerConfig.dynamic(branch_and_bound=True),
        )
        without_bnb = optimize_dynamic(
            workload3.catalog, workload3.query,
            OptimizerConfig.dynamic(branch_and_bound=False),
        )
        # Branch-and-bound "is not a heuristic": identical results.
        assert with_bnb.cost == without_bnb.cost
        assert with_bnb.plan.signature() == without_bnb.plan.signature()

    def test_pruning_does_not_change_static_plan(self, workload3):
        with_bnb = optimize_static(
            workload3.catalog, workload3.query,
            OptimizerConfig.static(branch_and_bound=True),
        )
        without_bnb = optimize_static(
            workload3.catalog, workload3.query,
            OptimizerConfig.static(branch_and_bound=False),
        )
        assert with_bnb.cost == without_bnb.cost
        assert with_bnb.plan.signature() == without_bnb.plan.signature()

    def test_static_pruning_is_more_effective_than_interval_pruning(
        self, workload3
    ):
        static = optimize_static(workload3.catalog, workload3.query)
        dynamic = optimize_dynamic(workload3.catalog, workload3.query)
        # Weakened pruning: dynamic keeps strictly more candidates.
        static_kept = (
            static.statistics.candidates_considered
            - static.statistics.pruned_by_bound
            - static.statistics.pruned_by_dominance
        )
        dynamic_kept = (
            dynamic.statistics.candidates_considered
            - dynamic.statistics.pruned_by_bound
            - dynamic.statistics.pruned_by_dominance
        )
        assert dynamic_kept > static_kept


class TestAlgorithmToggles:
    def test_disable_merge_join(self, workload2):
        config = OptimizerConfig.dynamic(consider_merge_join=False)
        result = optimize_dynamic(workload2.catalog, workload2.query, config)
        assert not any(
            isinstance(node, MergeJoin) for node in result.plan.walk_unique()
        )

    def test_disable_index_join(self, workload2):
        config = OptimizerConfig.dynamic(consider_index_join=False)
        result = optimize_dynamic(workload2.catalog, workload2.query, config)
        assert not any(
            isinstance(node, IndexJoin) for node in result.plan.walk_unique()
        )

    def test_disable_btree_scan(self, workload2):
        config = OptimizerConfig.dynamic(consider_btree_scan=False)
        result = optimize_dynamic(workload2.catalog, workload2.query, config)
        assert not any(
            isinstance(node, FilterBTreeScan)
            for node in result.plan.walk_unique()
        )

    def test_max_alternatives_caps_plan_size(self, workload3):
        capped = optimize_dynamic(
            workload3.catalog, workload3.query,
            OptimizerConfig.dynamic(max_alternatives=2),
        )
        full = optimize_dynamic(workload3.catalog, workload3.query)
        assert capped.node_count() <= full.node_count()
        for node in capped.plan.walk_unique():
            if isinstance(node, ChoosePlan):
                assert len(node.alternatives) <= 2


class TestMultipointHeuristic:
    def test_heuristic_shrinks_or_preserves_plan(self, workload2):
        baseline = optimize_dynamic(workload2.catalog, workload2.query)
        pruned = optimize_dynamic(
            workload2.catalog, workload2.query,
            OptimizerConfig.dynamic(
                multipoint_heuristic=True, multipoint_samples=7
            ),
        )
        assert pruned.node_count() <= baseline.node_count()

    def test_heuristic_counts_pruning(self, workload3):
        result = optimize_dynamic(
            workload3.catalog, workload3.query,
            OptimizerConfig.dynamic(
                multipoint_heuristic=True, multipoint_samples=5
            ),
        )
        # On a 4-way join something is always multipoint-prunable.
        assert result.statistics.pruned_by_multipoint >= 0


class TestSortEnforcer:
    def test_merge_join_inputs_sorted(self, workload2):
        result = optimize_dynamic(workload2.catalog, workload2.query)
        model = CostModel(
            workload2.catalog, Valuation.bounds(workload2.query.parameter_space)
        )
        for node in result.plan.walk_unique():
            if isinstance(node, MergeJoin):
                primary = node.predicate
                left_orders = model.evaluate(node.left).sort_orders
                right_orders = model.evaluate(node.right).sort_orders
                assert (
                    primary.left_attribute in left_orders
                    or primary.right_attribute in left_orders
                )
                assert (
                    primary.left_attribute in right_orders
                    or primary.right_attribute in right_orders
                )

    def test_sort_nodes_appear_in_dynamic_plans(self, workload2):
        result = optimize_dynamic(workload2.catalog, workload2.query)
        assert any(
            isinstance(node, Sort) for node in result.plan.walk_unique()
        )
