"""Projection: the remaining Table 1 logical operator, end to end."""

import pytest

from repro.algebra import GetSet, Join, JoinPredicate, LogicalProject, Select
from repro.algebra.physical import Project as PhysicalProject
from repro.common.errors import OptimizationError, PlanError
from repro.executor import AccessModule, execute_plan, resolve_dynamic_plan
from repro.frontend import parse_query
from repro.optimizer import QuerySpec, optimize_dynamic, optimize_static
from repro.workloads import random_bindings
from repro.workloads.queries import make_selection_predicate


@pytest.fixture(scope="module")
def projected_query(workload2):
    return QuerySpec(
        list(workload2.query.relations),
        dict(workload2.query.selections),
        list(workload2.query.join_predicates),
        name="projected",
        projection=("R1.a", "R2.c"),
    )


class TestLogicalProject:
    def test_requires_attributes(self):
        with pytest.raises(OptimizationError):
            LogicalProject(GetSet("R"), [])

    def test_from_logical_top_level(self):
        expression = LogicalProject(
            Join(
                Select(GetSet("R1"), make_selection_predicate("R1")),
                GetSet("R2"),
                JoinPredicate("R1.b", "R2.c"),
            ),
            ["R1.a"],
        )
        spec = QuerySpec.from_logical(expression)
        assert spec.projection == ("R1.a",)

    def test_nested_projection_rejected(self):
        expression = Join(
            LogicalProject(GetSet("R1"), ["R1.a"]),
            GetSet("R2"),
            JoinPredicate("R1.b", "R2.c"),
        )
        with pytest.raises(OptimizationError):
            QuerySpec.from_logical(expression)


class TestPhysicalProject:
    def test_requires_attributes(self):
        from repro.algebra.physical import FileScan

        with pytest.raises(PlanError):
            PhysicalProject(FileScan("R"), [])

    def test_optimizer_places_project_on_top(self, workload2,
                                              projected_query):
        for optimize in (optimize_static, optimize_dynamic):
            result = optimize(workload2.catalog, projected_query)
            assert isinstance(result.plan, PhysicalProject)
            assert result.plan.attributes == ("R1.a", "R2.c")

    def test_projection_adds_no_alternatives(self, workload2,
                                             projected_query):
        projected = optimize_dynamic(workload2.catalog, projected_query)
        plain = optimize_dynamic(workload2.catalog, workload2.query)
        assert projected.node_count() == plain.node_count() + 1
        assert projected.choose_plan_count() == plain.choose_plan_count()

    def test_serialization_round_trip(self, workload2, projected_query):
        result = optimize_dynamic(workload2.catalog, projected_query)
        module = AccessModule.from_plan(result.plan, "projected")
        rebuilt = module.materialize()
        assert rebuilt.signature() == result.plan.signature()

    def test_resolution_keeps_projection(self, workload2, projected_query):
        result = optimize_dynamic(workload2.catalog, projected_query)
        bindings = random_bindings(workload2, seed=3)
        chosen, _ = resolve_dynamic_plan(
            result.plan, workload2.catalog,
            projected_query.parameter_space, bindings,
        )
        assert isinstance(chosen, PhysicalProject)
        assert chosen.choose_plan_count() == 0


class TestProjectedExecution:
    def test_records_contain_only_projected_fields(self, workload2,
                                                   database2,
                                                   projected_query):
        result = optimize_dynamic(workload2.catalog, projected_query)
        bindings = random_bindings(workload2, seed=3)
        executed = execute_plan(
            result.plan, database2, bindings, projected_query.parameter_space
        )
        assert executed.row_count > 0
        for record in executed.records:
            assert sorted(record.keys()) == ["R1.a", "R2.c"]

    def test_row_count_matches_unprojected(self, workload2, database2,
                                           projected_query):
        bindings = random_bindings(workload2, seed=3)
        projected = optimize_dynamic(workload2.catalog, projected_query)
        plain = optimize_dynamic(workload2.catalog, workload2.query)
        projected_rows = execute_plan(
            projected.plan, database2, bindings,
            projected_query.parameter_space,
        ).row_count
        plain_rows = execute_plan(
            plain.plan, database2, bindings, workload2.query.parameter_space
        ).row_count
        assert projected_rows == plain_rows


class TestSqlProjection:
    def test_select_list_parsed(self, workload2):
        spec = parse_query(
            "SELECT R1.a, R2.c FROM R1, R2 WHERE R1.b = R2.c",
            workload2.catalog,
        )
        assert spec.projection == ("R1.a", "R2.c")

    def test_sql_projected_execution(self, workload2, database2):
        spec = parse_query(
            "SELECT R2.a FROM R1, R2 WHERE R1.a < :v AND R1.b = R2.c",
            workload2.catalog,
        )
        result = optimize_static(workload2.catalog, spec)
        from repro.cost.parameters import Bindings

        domain = workload2.catalog.domain_size("R1", "a")
        bindings = Bindings().bind("sel_R1", 0.4).bind_variable(
            "v", 0.4 * domain
        )
        executed = execute_plan(
            result.plan, database2, bindings, spec.parameter_space
        )
        for record in executed.records:
            assert sorted(record.keys()) == ["R2.a"]
