"""One grand tour: every major subsystem in a single scenario.

SQL with host variables → advisor → dynamic compilation → persistent
plan store → catalog drift → validated activation → execution →
adaptive execution — on a star-topology join, checked against the
reference evaluator at every step.
"""

import pytest

from repro import (
    Database,
    execute_plan,
    parse_query,
    populate_database,
)
from repro.cost.parameters import Bindings
from repro.executor import PlanStore, execute_adaptively
from repro.scenarios import recommend_strategy
from repro.workloads import make_join_workload

from tests._reference import reference_rows, row_multiset


@pytest.fixture(scope="module")
def world():
    workload = make_join_workload(4, topology="star", seed=11)
    database = Database(workload.catalog)
    populate_database(database, seed=11)
    return workload, database


SQL = (
    "SELECT R2.a, R3.a FROM R1, R2, R3, R4 "
    "WHERE R1.a < :v_R1 AND R1.b = R2.c AND R1.b = R3.c "
    "AND R1.b = R4.c AND R3.a < :v_R3"
)


def make_bindings(workload, sel_r1, sel_r3):
    bindings = Bindings()
    for relation, selectivity in (("R1", sel_r1), ("R3", sel_r3)):
        domain = workload.catalog.domain_size(relation, "a")
        bindings.bind("sel_%s" % relation, selectivity)
        bindings.bind_variable("v_%s" % relation, selectivity * domain)
    return bindings


class TestGrandTour:
    def test_full_lifecycle(self, world, tmp_path):
        workload, database = world
        catalog = workload.catalog

        # 1. Parse the embedded query.
        query = parse_query(SQL, catalog, name="tour")
        assert query.uncertain_variable_count() == 2
        assert query.projection == ("R2.a", "R3.a")

        # 2. The advisor recommends dynamic plans for a repeated query.
        recommendation = recommend_strategy(
            catalog, query, expected_invocations=200
        )
        assert recommendation.strategy == "dynamic"

        # 3. Compile into the persistent store.
        store = PlanStore(tmp_path / "plans")
        compiled = store.compile(catalog, query)
        assert compiled.choose_plan_count() >= 1

        # 4. Catalog drift: an index disappears between compile and run.
        catalog.drop_index("R2", "a")

        # 5. Activate across the "restart": validated, resolved, run.
        reference_query = parse_query(SQL, catalog, name="tour-ref")
        keys = ["R2.a", "R3.a"]
        for sel_r1, sel_r3 in ((0.05, 0.9), (0.8, 0.1)):
            bindings = make_bindings(workload, sel_r1, sel_r3)
            chosen, report = store.activate(
                "tour", catalog, query.parameter_space, bindings
            )
            assert chosen.choose_plan_count() == 0
            executed = execute_plan(
                chosen, database, bindings, query.parameter_space
            )
            # Reference evaluation works on the unprojected query spec.
            class _RefWorkload:
                pass

            ref = _RefWorkload()
            ref.query = reference_query
            ref.catalog = catalog
            expected = [
                record.project(keys)
                for record in reference_rows(ref, database, bindings)
            ]
            assert row_multiset(executed.records, keys) == row_multiset(
                expected, keys
            )

        # 6. Adaptive execution agrees with plain execution.
        bindings = make_bindings(workload, 0.4, 0.6)
        plan = store.load("tour").materialize()
        from repro.executor import validate_plan

        plan = validate_plan(plan, catalog)
        adaptive_result, adaptive_report = execute_adaptively(
            plan, database, bindings, query.parameter_space
        )
        plain_chosen, _ = store.activate(
            "tour", catalog, query.parameter_space, bindings
        )
        plain_result = execute_plan(
            plain_chosen, database, bindings, query.parameter_space
        )
        assert row_multiset(adaptive_result.records, keys) == row_multiset(
            plain_result.records, keys
        )
        assert adaptive_report.decisions >= 1
