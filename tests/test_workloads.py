"""Workload definitions and run-time binding generation."""

import pytest

from repro.common.errors import OptimizationError
from repro.cost.parameters import MEMORY_PARAMETER
from repro.workloads import (
    PAPER_QUERY_SIZES,
    binding_series,
    make_join_workload,
    paper_workload,
    random_bindings,
)
from repro.workloads.queries import (
    make_join_predicates,
    selection_parameter_name,
    selection_variable_name,
)


class TestPaperQueries:
    def test_sizes_match_paper(self):
        assert PAPER_QUERY_SIZES == {1: 1, 2: 2, 3: 4, 4: 6, 5: 10}

    @pytest.mark.parametrize("number", [1, 2, 3, 4, 5])
    def test_every_relation_has_uncertain_selection(self, number):
        workload = paper_workload(number)
        query = workload.query
        assert len(query.relations) == PAPER_QUERY_SIZES[number]
        for relation in query.relations:
            predicate = query.selection_for(relation)
            assert predicate is not None and predicate.is_uncertain
        assert query.uncertain_variable_count() == PAPER_QUERY_SIZES[number]

    def test_invalid_query_number(self):
        with pytest.raises(OptimizationError):
            paper_workload(6)

    def test_memory_uncertain_adds_variable(self):
        plain = paper_workload(2)
        with_memory = paper_workload(2, memory_uncertain=True)
        assert (
            with_memory.query.uncertain_variable_count()
            == plain.query.uncertain_variable_count() + 1
        )
        assert with_memory.name.endswith("+mem")

    def test_chain_join_structure(self):
        workload = paper_workload(3)
        predicates = workload.query.join_predicates
        assert len(predicates) == 3  # 4 relations, chain
        assert predicates[0].left_attribute == "R1.b"
        assert predicates[0].right_attribute == "R2.c"

    def test_indexes_on_selection_and_join_attributes(self):
        workload = paper_workload(2)
        for relation in workload.query.relations:
            for attribute in ("a", "b", "c"):
                assert workload.catalog.index_on(relation, attribute)


class TestTopologies:
    def test_star_predicates(self):
        predicates = make_join_predicates(["R1", "R2", "R3"], "star")
        assert all(p.left_attribute.startswith("R1.") for p in predicates)
        assert len(predicates) == 2

    def test_cycle_predicates(self):
        predicates = make_join_predicates(["R1", "R2", "R3"], "cycle")
        assert len(predicates) == 3

    def test_unknown_topology(self):
        with pytest.raises(OptimizationError):
            make_join_predicates(["R1", "R2"], "hypercube")

    def test_single_relation_no_predicates(self):
        assert make_join_predicates(["R1"], "chain") == []

    def test_make_join_workload_names(self):
        assert make_join_workload(3, topology="star").name == "3-way-star"


class TestNaming:
    def test_parameter_and_variable_conventions(self):
        assert selection_parameter_name("R1") == "sel_R1"
        assert selection_variable_name("R1") == "v_R1"


class TestRandomBindings:
    def test_all_uncertain_parameters_bound(self, workload2):
        bindings = random_bindings(workload2, seed=0)
        for name in workload2.query.parameter_space.uncertain_names():
            assert bindings.has_parameter(name)
            assert 0.0 <= bindings.parameter(name) <= 1.0

    def test_user_variables_track_selectivity(self, workload2):
        bindings = random_bindings(workload2, seed=0)
        for relation in workload2.query.relations:
            selectivity = bindings.parameter(
                selection_parameter_name(relation)
            )
            variable = bindings.variable(selection_variable_name(relation))
            domain = workload2.catalog.domain_size(relation, "a")
            assert variable == pytest.approx(selectivity * domain)

    def test_memory_bound_only_when_uncertain(self, workload2, workload2_mem):
        plain = random_bindings(workload2, seed=0)
        with_memory = random_bindings(workload2_mem, seed=0)
        assert not plain.has_parameter(MEMORY_PARAMETER)
        assert with_memory.has_parameter(MEMORY_PARAMETER)
        assert 16 <= with_memory.parameter(MEMORY_PARAMETER) <= 112

    def test_deterministic_per_seed_and_index(self, workload2):
        a = random_bindings(workload2, seed=5, run_index=3)
        b = random_bindings(workload2, seed=5, run_index=3)
        c = random_bindings(workload2, seed=5, run_index=4)
        assert a.parameter("sel_R1") == b.parameter("sel_R1")
        assert a.parameter("sel_R1") != c.parameter("sel_R1")

    def test_binding_series_length_and_variety(self, workload2):
        series = binding_series(workload2, count=20, seed=0)
        assert len(series) == 20
        values = {bindings.parameter("sel_R1") for bindings in series}
        assert len(values) == 20

    def test_user_variable_selectivity_approximates_actual(self, workload2,
                                                           database2):
        # The selection attribute is uniform on [0, domain): the
        # fraction of records with a < s*domain should be close to s.
        bindings = random_bindings(workload2, seed=1)
        bindings.bind("sel_R1", 0.5).bind_variable(
            "v_R1", 0.5 * workload2.catalog.domain_size("R1", "a")
        )
        predicate = workload2.query.selection_for("R1")
        records = database2.heap("R1").all_records()
        matching = sum(
            1 for record in records if predicate.evaluate(record, bindings)
        )
        actual = matching / len(records)
        assert abs(actual - 0.5) < 0.15
