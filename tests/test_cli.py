"""The ``python -m repro`` command-line interface."""


from repro.__main__ import main


class TestCli:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        output = capsys.readouterr().out
        assert "Choose-Plan" in output
        assert "chose" in output

    def test_default_command_is_demo(self, capsys):
        assert main([]) == 0
        assert "demo" in capsys.readouterr().out

    def test_experiments_small(self, capsys):
        assert main(["experiments", "2"]) == 0
        output = capsys.readouterr().out
        assert "TABLE 1" in output
        assert "FIGURE8" in output

    def test_sql(self, capsys):
        code = main(
            ["sql", "SELECT * FROM R1, R2 WHERE R1.a < :v AND R1.b = R2.c"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "static plan" in output
        assert "dynamic plan" in output

    def test_sql_without_query(self, capsys):
        assert main(["sql"]) == 2

    def test_unknown_command(self, capsys):
        assert main(["bogus"]) == 2
        assert "Commands" in capsys.readouterr().out


class TestRunnerCsv:
    def test_csv_export(self, tmp_path, capsys):
        from repro.experiments.runner import main as runner_main

        assert runner_main(["2", "--csv", str(tmp_path)]) == 0
        csvs = sorted(path.name for path in tmp_path.glob("*.csv"))
        assert csvs == [
            "figure3.csv", "figure4.csv", "figure5.csv",
            "figure6.csv", "figure7.csv", "figure8.csv",
        ]
        header = (tmp_path / "figure4.csv").read_text().splitlines()[0]
        assert header == "query,uncertain_variables,series,value"

    def test_csv_requires_directory(self, capsys):
        from repro.experiments.runner import main as runner_main

        assert runner_main(["2", "--csv"]) == 2
