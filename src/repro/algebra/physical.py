"""The physical algebra: executable plan operators (paper Table 1).

Physical plans are directed acyclic graphs (DAGs), *not* trees: the
paper stresses that alternative plans linked by choose-plan operators
share common subplans, which keeps both the access-module size and
the start-up cost evaluation sub-exponential.  Sharing happens simply
by letting several parents reference the same node object; node
counting and serialization (``repro.executor.access_module``) are
id-aware.

After optimization each node carries annotations:

* ``cost`` — compile-time cost :class:`~repro.common.intervals.Interval`;
* ``cardinality`` — output cardinality interval;
* ``sort_order`` — qualified attribute the output is sorted on, or ``None``.
"""

from repro.common.errors import PlanError


class PhysicalPlan:
    """Base class for physical operators."""

    #: Class-level default annotations so unannotated plans are usable.
    cost = None
    cardinality = None
    sort_order = None

    def inputs(self):
        """Input plans, left to right."""
        raise NotImplementedError

    def operator_name(self):
        """Human-readable operator name matching the paper's Table 1."""
        return type(self).__name__

    def annotate(self, cost=None, cardinality=None, sort_order=None):
        """Attach optimizer annotations; returns self for chaining."""
        if cost is not None:
            self.cost = cost
        if cardinality is not None:
            self.cardinality = cardinality
        self.sort_order = sort_order
        return self

    def walk_unique(self):
        """Yield each distinct node of the DAG exactly once (pre-order)."""
        seen = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            yield node
            stack.extend(reversed(node.inputs()))

    def node_count(self):
        """Number of distinct operator nodes in the DAG.

        This is the paper's plan-size metric (Figure 6): "a count of
        operator nodes in the directed acyclic graph".
        """
        return sum(1 for _ in self.walk_unique())

    def tree_node_count(self, _memo=None):
        """Node count if the DAG were expanded to a tree (no sharing).

        Used by the DAG-vs-tree ablation benchmark to show how much
        sharing saves.  Computed by dynamic programming over the DAG —
        the count itself grows exponentially with plan depth, but the
        computation stays linear in the number of distinct nodes.
        """
        if _memo is None:
            _memo = {}
        cached = _memo.get(id(self))
        if cached is not None:
            return cached
        total = 1
        for child in self.inputs():
            total += child.tree_node_count(_memo)
        _memo[id(self)] = total
        return total

    def choose_plan_count(self):
        """Number of choose-plan operators in the DAG."""
        return sum(
            1 for node in self.walk_unique() if isinstance(node, ChoosePlan)
        )

    def signature(self, _memo=None):
        """Structural identity of the plan, stable across processes."""
        if _memo is None:
            _memo = {}
        cached = _memo.get(id(self))
        if cached is not None:
            return cached
        result = (
            self.operator_name(),
            self._local_signature(),
            tuple(child.signature(_memo) for child in self.inputs()),
        )
        _memo[id(self)] = result
        return result

    def _local_signature(self):
        """Node-local parameters contributing to the signature."""
        return ()

    def __repr__(self):
        return "%s(%s)" % (
            self.operator_name(),
            ", ".join(repr(child) for child in self.inputs()),
        )


# ----------------------------------------------------------------------
# Data retrieval
# ----------------------------------------------------------------------


class FileScan(PhysicalPlan):
    """Sequential scan of a stored relation (Get-Set → File-Scan)."""

    def __init__(self, relation_name):
        self.relation_name = relation_name

    def inputs(self):
        return ()

    def operator_name(self):
        return "File-Scan"

    def _local_signature(self):
        return (self.relation_name,)

    def __repr__(self):
        return "File-Scan(%s)" % self.relation_name


class BTreeScan(PhysicalPlan):
    """Full scan through a B-tree in key order (Get-Set → B-tree-Scan).

    Delivers its output sorted on the indexed attribute; unclustered,
    so every record costs a heap-page fetch.
    """

    def __init__(self, relation_name, attribute):
        self.relation_name = relation_name
        self.attribute = attribute

    def inputs(self):
        return ()

    def operator_name(self):
        return "B-tree-Scan"

    def _local_signature(self):
        return (self.relation_name, self.attribute)

    def __repr__(self):
        return "B-tree-Scan(%s.%s)" % (self.relation_name, self.attribute)


# ----------------------------------------------------------------------
# Selection
# ----------------------------------------------------------------------


class Filter(PhysicalPlan):
    """Apply a predicate to an input stream (Select → Filter)."""

    def __init__(self, input, predicate):
        self.input = input
        self.predicate = predicate

    def inputs(self):
        return (self.input,)

    def operator_name(self):
        return "Filter"

    def _local_signature(self):
        return (repr(self.predicate),)

    def __repr__(self):
        return "Filter(%r, %r)" % (self.predicate.comparison, self.input)


class FilterBTreeScan(PhysicalPlan):
    """Sargable index scan (Select → Filter-B-tree-Scan).

    Uses the B-tree on the predicate's attribute to visit only
    qualifying keys, then fetches each matching record from the heap —
    the plan that wins at low selectivity and loses badly at high
    selectivity (the paper's motivating example).  Output is sorted on
    the indexed attribute.
    """

    def __init__(self, relation_name, attribute, predicate):
        self.relation_name = relation_name
        self.attribute = attribute
        self.predicate = predicate

    def inputs(self):
        return ()

    def operator_name(self):
        return "Filter-B-tree-Scan"

    def _local_signature(self):
        return (self.relation_name, self.attribute, repr(self.predicate))

    def __repr__(self):
        return "Filter-B-tree-Scan(%s.%s, %r)" % (
            self.relation_name,
            self.attribute,
            self.predicate.comparison,
        )


# ----------------------------------------------------------------------
# Joins
# ----------------------------------------------------------------------


class _JoinBase(PhysicalPlan):
    """Shared plumbing for the two-input join algorithms."""

    def __init__(self, left, right, predicates):
        if isinstance(predicates, (list, tuple)):
            self.predicates = tuple(predicates)
        else:
            self.predicates = (predicates,)
        if not self.predicates:
            raise PlanError("a join needs at least one predicate")
        self.left = left
        self.right = right

    def inputs(self):
        return (self.left, self.right)

    @property
    def predicate(self):
        """The primary (first) join predicate."""
        return self.predicates[0]

    def _local_signature(self):
        return tuple(sorted(repr(p) for p in self.predicates))


class HashJoin(_JoinBase):
    """Hash join; the **left** input is the build side (paper §2).

    Performs much better when the smaller input builds the hash table,
    which is exactly the decision the paper's Figure 2 delays until
    start-up time.
    """

    def operator_name(self):
        return "Hash-Join"

    @property
    def build(self):
        """The build input (left by convention)."""
        return self.left

    @property
    def probe(self):
        """The probe input (right by convention)."""
        return self.right

    def __repr__(self):
        return "Hash-Join(build=%r, probe=%r)" % (self.left, self.right)


class MergeJoin(_JoinBase):
    """Merge join; both inputs must be sorted on the join attributes."""

    def operator_name(self):
        return "Merge-Join"

    def __repr__(self):
        return "Merge-Join(%r, %r)" % (self.left, self.right)


class IndexJoin(PhysicalPlan):
    """Index nested-loop join: probe the inner relation's B-tree per
    outer record (paper: Index-Join).

    The inner input is a base relation with a B-tree on its join
    attribute; ``residual_predicate`` (optional) re-applies the inner
    relation's selection after each fetch, letting Index-Join implement
    ``outer ⋈ σ(inner)`` without materializing the selection.
    """

    def __init__(
        self,
        outer,
        inner_relation,
        inner_attribute,
        predicates,
        residual_predicate=None,
    ):
        if isinstance(predicates, (list, tuple)):
            self.predicates = tuple(predicates)
        else:
            self.predicates = (predicates,)
        if not self.predicates:
            raise PlanError("an index join needs at least one predicate")
        self.outer = outer
        self.inner_relation = inner_relation
        self.inner_attribute = inner_attribute
        self.residual_predicate = residual_predicate

    def inputs(self):
        return (self.outer,)

    @property
    def predicate(self):
        """The primary join predicate."""
        return self.predicates[0]

    def operator_name(self):
        return "Index-Join"

    def _local_signature(self):
        return (
            self.inner_relation,
            self.inner_attribute,
            tuple(sorted(repr(p) for p in self.predicates)),
            repr(self.residual_predicate),
        )

    def __repr__(self):
        return "Index-Join(%r, %s.%s)" % (
            self.outer,
            self.inner_relation,
            self.inner_attribute,
        )


# ----------------------------------------------------------------------
# Enforcers
# ----------------------------------------------------------------------


class Sort(PhysicalPlan):
    """Sort enforcer: orders its input on one attribute."""

    def __init__(self, input, attribute):
        self.input = input
        self.attribute = attribute

    def inputs(self):
        return (self.input,)

    def operator_name(self):
        return "Sort"

    def _local_signature(self):
        return (self.attribute,)

    def __repr__(self):
        return "Sort(%s, %r)" % (self.attribute, self.input)


class Project(PhysicalPlan):
    """Attribute projection (Table 1: the Project logical operator).

    Pure per-record CPU work; applied above the chosen plan, never
    inside the search (it creates no alternatives).
    """

    def __init__(self, input, attributes):
        self.input = input
        self.attributes = tuple(attributes)
        if not self.attributes:
            raise PlanError("a projection needs at least one attribute")

    def inputs(self):
        return (self.input,)

    def operator_name(self):
        return "Project"

    def _local_signature(self):
        return self.attributes

    def __repr__(self):
        return "Project(%s, %r)" % (", ".join(self.attributes), self.input)


class Materialized(PhysicalPlan):
    """A temporary result produced at run time (paper Section 7).

    Created only by the adaptive executor when a choose-plan decision
    procedure "evaluates subplans into temporary results"; replays the
    stored records and reports their *observed* cardinality.  Never
    appears in compile-time plans or access modules.
    """

    def __init__(self, records, original):
        self.records = list(records)
        self.original = original

    def inputs(self):
        return ()

    def operator_name(self):
        return "Materialized"

    @property
    def observed_cardinality(self):
        """Actual record count of the temporary."""
        return len(self.records)

    def _local_signature(self):
        return ("materialized", self.original.signature())

    def __repr__(self):
        return "Materialized(%d records of %r)" % (
            len(self.records),
            self.original.operator_name(),
        )


class ChoosePlan(PhysicalPlan):
    """Plan-robustness enforcer: the choose-plan operator.

    Links two or more equivalent alternative plans; at start-up time
    its decision procedure re-evaluates the alternatives' cost
    functions under the instantiated bindings and runs the cheapest
    (paper Section 4).
    """

    def __init__(self, alternatives):
        alternatives = tuple(alternatives)
        if len(alternatives) < 2:
            raise PlanError(
                "a choose-plan operator needs at least two alternatives"
            )
        self.alternatives = alternatives

    def inputs(self):
        return self.alternatives

    def operator_name(self):
        return "Choose-Plan"

    def __repr__(self):
        return "Choose-Plan[%d alternatives]" % len(self.alternatives)
