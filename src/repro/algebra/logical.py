"""The logical algebra: Get-Set, Select, Join (paper Table 1).

Logical expressions are immutable trees with structural equality, so
the optimizer's memo can deduplicate expressions produced by
different rule applications (e.g. the two associativity orders of the
same join set).
"""

from repro.common.errors import OptimizationError


class LogicalExpression:
    """Base class for logical operators."""

    __slots__ = ("_hash",)

    def children(self):
        """Input expressions, left to right."""
        raise NotImplementedError

    def relations(self):
        """Frozenset of base relation names below this expression."""
        raise NotImplementedError

    def uncertain_parameters(self):
        """Sorted names of uncertain selectivity parameters below here."""
        names = set()
        self._collect_uncertain(names)
        return sorted(names)

    def _collect_uncertain(self, names):
        for child in self.children():
            child._collect_uncertain(names)

    def walk(self):
        """Yield this expression and all descendants, pre-order."""
        yield self
        for child in self.children():
            for expression in child.walk():
                yield expression


class GetSet(LogicalExpression):
    """Retrieve a stored relation (paper: Get-Set)."""

    __slots__ = ("relation_name",)

    def __init__(self, relation_name):
        self.relation_name = relation_name

    def children(self):
        return ()

    def relations(self):
        return frozenset((self.relation_name,))

    def __eq__(self, other):
        return isinstance(other, GetSet) and self.relation_name == other.relation_name

    def __hash__(self):
        return hash(("GetSet", self.relation_name))

    def __repr__(self):
        return "GetSet(%s)" % self.relation_name


class Select(LogicalExpression):
    """Apply a selection predicate (paper: Select)."""

    __slots__ = ("input", "predicate")

    def __init__(self, input, predicate):
        self.input = input
        self.predicate = predicate

    def children(self):
        return (self.input,)

    def relations(self):
        return self.input.relations()

    def _collect_uncertain(self, names):
        if self.predicate.is_uncertain:
            names.add(self.predicate.selectivity_parameter)
        LogicalExpression._collect_uncertain(self, names)

    def __eq__(self, other):
        if not isinstance(other, Select):
            return NotImplemented
        return self.input == other.input and self.predicate == other.predicate

    def __hash__(self):
        return hash(("Select", self.input, self.predicate))

    def __repr__(self):
        return "Select(%r, %r)" % (self.input, self.predicate)


class Project(LogicalExpression):
    """Keep only the named attributes (paper Table 1: Select, Project).

    Projection is decoration in this algebra: it introduces no plan
    alternatives, so the optimizer applies it once, on top of the
    winning plan for its input.
    """

    __slots__ = ("input", "attributes")

    def __init__(self, input, attributes):
        self.input = input
        self.attributes = tuple(attributes)
        if not self.attributes:
            raise OptimizationError("a projection needs at least one attribute")

    def children(self):
        return (self.input,)

    def relations(self):
        return self.input.relations()

    def __eq__(self, other):
        if not isinstance(other, Project):
            return NotImplemented
        return self.input == other.input and self.attributes == other.attributes

    def __hash__(self):
        return hash(("Project", self.input, self.attributes))

    def __repr__(self):
        return "Project(%r, %r)" % (list(self.attributes), self.input)


class Join(LogicalExpression):
    """Equi-join of two expressions (paper: Join)."""

    __slots__ = ("left", "right", "predicates")

    def __init__(self, left, right, predicates):
        if not predicates:
            raise OptimizationError(
                "cross products are not part of the experimental algebra; "
                "a Join needs at least one predicate"
            )
        if isinstance(predicates, (list, tuple)):
            self.predicates = tuple(predicates)
        else:
            self.predicates = (predicates,)
        self.left = left
        self.right = right

    def children(self):
        return (self.left, self.right)

    def relations(self):
        return self.left.relations() | self.right.relations()

    @property
    def predicate(self):
        """The first join predicate (most joins have exactly one)."""
        return self.predicates[0]

    def __eq__(self, other):
        if not isinstance(other, Join):
            return NotImplemented
        return (
            self.left == other.left
            and self.right == other.right
            and set(self.predicates) == set(other.predicates)
        )

    def __hash__(self):
        return hash(("Join", self.left, self.right, frozenset(self.predicates)))

    def __repr__(self):
        return "Join(%r, %r, %r)" % (self.left, self.right, list(self.predicates))
