"""Logical and physical algebras (Table 1 of the paper).

Logical operators describe queries as optimizer input; physical
operators describe the algorithms of the execution engine.  The
mapping between them is defined by the implementation rules in
:mod:`repro.optimizer.rules`:

====================  ==================================
Logical operator      Physical algorithms
====================  ==================================
Get-Set               File-Scan, B-tree-Scan
Select                Filter, Filter-B-tree-Scan
Join                  Hash-Join, Merge-Join, Index-Join
(sort order)          Sort                    (enforcer)
(plan robustness)     Choose-Plan             (enforcer)
====================  ==================================
"""

from repro.algebra.expressions import (
    Comparison,
    ComparisonOp,
    JoinPredicate,
    Literal,
    SelectionPredicate,
    UserVariable,
)
from repro.algebra.logical import GetSet, Join, LogicalExpression, Select
from repro.algebra.logical import Project as LogicalProject
from repro.algebra.physical import (
    BTreeScan,
    ChoosePlan,
    FileScan,
    Filter,
    FilterBTreeScan,
    HashJoin,
    IndexJoin,
    MergeJoin,
    PhysicalPlan,
    Project,
    Sort,
)
from repro.algebra.printer import count_plan_nodes, plan_to_text

__all__ = [
    "BTreeScan",
    "ChoosePlan",
    "Comparison",
    "ComparisonOp",
    "FileScan",
    "Filter",
    "FilterBTreeScan",
    "GetSet",
    "HashJoin",
    "IndexJoin",
    "Join",
    "JoinPredicate",
    "Literal",
    "LogicalExpression",
    "LogicalProject",
    "Project",
    "MergeJoin",
    "PhysicalPlan",
    "Select",
    "SelectionPredicate",
    "Sort",
    "UserVariable",
    "count_plan_nodes",
    "plan_to_text",
]
