"""Predicates, literals, and user variables.

A *user variable* is a host-language variable embedded in a query
("unbound predicate", paper Sections 1–2).  Its value — and hence the
selectivity of the predicate containing it — is unknown at compile
time and only supplied at start-up time.  Each selection predicate
therefore carries a *selectivity parameter*: a named uncertain
quantity with compile-time bounds, an expected value used by the
traditional (static) optimizer, and a run-time binding.
"""

import enum

from repro.common.errors import ExecutionError
from repro.common.intervals import Interval


class ComparisonOp(enum.Enum):
    """Comparison operators usable in predicates."""

    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def evaluate(self, left, right):
        """Apply the operator to two concrete values."""
        if self is ComparisonOp.EQ:
            return left == right
        if self is ComparisonOp.NE:
            return left != right
        if self is ComparisonOp.LT:
            return left < right
        if self is ComparisonOp.LE:
            return left <= right
        if self is ComparisonOp.GT:
            return left > right
        return left >= right


class Literal:
    """A constant operand."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def resolve(self, bindings):
        """Literals resolve to themselves regardless of bindings."""
        return self.value

    @property
    def is_bound(self):
        """Literals are always bound."""
        return True

    def __eq__(self, other):
        return isinstance(other, Literal) and self.value == other.value

    def __hash__(self):
        return hash(("literal", self.value))

    def __repr__(self):
        return "Literal(%r)" % (self.value,)


class UserVariable:
    """A host variable bound only at start-up time."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def resolve(self, bindings):
        """Value of the variable under ``bindings``; raises when absent."""
        if bindings is None or not bindings.has_variable(self.name):
            raise ExecutionError(
                "user variable %r is unbound; dynamic plans need bindings "
                "at start-up time" % self.name
            )
        return bindings.variable(self.name)

    @property
    def is_bound(self):
        """User variables are never bound at compile time."""
        return False

    def __eq__(self, other):
        return isinstance(other, UserVariable) and self.name == other.name

    def __hash__(self):
        return hash(("uservar", self.name))

    def __repr__(self):
        return "UserVariable(%r)" % self.name


class Comparison:
    """``attribute op operand`` where operand is a literal or variable."""

    __slots__ = ("attribute", "op", "operand")

    def __init__(self, attribute, op, operand):
        self.attribute = attribute
        self.op = op
        if not isinstance(operand, (Literal, UserVariable)):
            operand = Literal(operand)
        self.operand = operand

    def evaluate(self, record, bindings=None):
        """True when the record satisfies the comparison."""
        return self.op.evaluate(
            record[self.attribute], self.operand.resolve(bindings)
        )

    @property
    def is_bound(self):
        """True when the operand needs no run-time binding."""
        return self.operand.is_bound

    def __eq__(self, other):
        if not isinstance(other, Comparison):
            return NotImplemented
        return (
            self.attribute == other.attribute
            and self.op == other.op
            and self.operand == other.operand
        )

    def __hash__(self):
        return hash((self.attribute, self.op, self.operand))

    def __repr__(self):
        return "%s %s %r" % (self.attribute, self.op.value, self.operand)


class SelectionPredicate:
    """A selection predicate with an explicit selectivity parameter.

    ``selectivity_parameter`` names the uncertain quantity.  When it is
    ``None`` the selectivity is fully known at compile time and equals
    ``known_selectivity``.  When it is set, compile-time knowledge is
    the interval ``selectivity_bounds`` (default ``[0, 1]``) with
    ``expected_selectivity`` (default 0.05, the small default a
    traditional optimizer would assume — paper Section 6) used for
    static optimization; the run-time binding supplies the true value.
    """

    __slots__ = (
        "comparison",
        "selectivity_parameter",
        "known_selectivity",
        "selectivity_bounds",
        "expected_selectivity",
    )

    #: Default selectivity assumed by traditional optimizers (paper §6).
    DEFAULT_EXPECTED_SELECTIVITY = 0.05

    def __init__(
        self,
        comparison,
        selectivity_parameter=None,
        known_selectivity=None,
        selectivity_bounds=(0.0, 1.0),
        expected_selectivity=DEFAULT_EXPECTED_SELECTIVITY,
    ):
        self.comparison = comparison
        self.selectivity_parameter = selectivity_parameter
        if selectivity_parameter is None and known_selectivity is None:
            raise ValueError(
                "a predicate needs either a known selectivity or a "
                "selectivity parameter"
            )
        self.known_selectivity = known_selectivity
        self.selectivity_bounds = Interval(*selectivity_bounds)
        self.expected_selectivity = expected_selectivity

    @property
    def attribute(self):
        """The (qualified) attribute the comparison restricts."""
        return self.comparison.attribute

    @property
    def is_uncertain(self):
        """True when the selectivity is a run-time parameter."""
        return self.selectivity_parameter is not None

    def evaluate(self, record, bindings=None):
        """Apply the underlying comparison to a record."""
        return self.comparison.evaluate(record, bindings)

    def __eq__(self, other):
        if not isinstance(other, SelectionPredicate):
            return NotImplemented
        return (
            self.comparison == other.comparison
            and self.selectivity_parameter == other.selectivity_parameter
            and self.known_selectivity == other.known_selectivity
            and self.selectivity_bounds == other.selectivity_bounds
            and self.expected_selectivity == other.expected_selectivity
        )

    def __hash__(self):
        return hash(
            (
                self.comparison,
                self.selectivity_parameter,
                self.known_selectivity,
                self.selectivity_bounds,
                self.expected_selectivity,
            )
        )

    def __repr__(self):
        if self.is_uncertain:
            return "SelectionPredicate(%r, param=%s)" % (
                self.comparison,
                self.selectivity_parameter,
            )
        return "SelectionPredicate(%r, sel=%s)" % (
            self.comparison,
            self.known_selectivity,
        )


class JoinPredicate:
    """Equi-join predicate ``left_attribute = right_attribute``.

    Join selectivity is *not* stored here: per the paper it is computed
    from catalog statistics (one over the larger join-attribute domain
    size) and is considered known at compile time.
    """

    __slots__ = ("left_attribute", "right_attribute")

    def __init__(self, left_attribute, right_attribute):
        self.left_attribute = left_attribute
        self.right_attribute = right_attribute

    def evaluate(self, left_record, right_record):
        """True when the two records agree on the join attributes."""
        return left_record[self.left_attribute] == right_record[self.right_attribute]

    def attribute_for(self, relation_name):
        """The side of the predicate belonging to ``relation_name``."""
        if self.left_attribute.startswith(relation_name + "."):
            return self.left_attribute
        if self.right_attribute.startswith(relation_name + "."):
            return self.right_attribute
        return None

    def flipped(self):
        """The same predicate with sides exchanged."""
        return JoinPredicate(self.right_attribute, self.left_attribute)

    def __eq__(self, other):
        if not isinstance(other, JoinPredicate):
            return NotImplemented
        return {self.left_attribute, self.right_attribute} == {
            other.left_attribute,
            other.right_attribute,
        }

    def __hash__(self):
        return hash(frozenset((self.left_attribute, self.right_attribute)))

    def __repr__(self):
        return "JoinPredicate(%s = %s)" % (self.left_attribute, self.right_attribute)
