"""Pretty-printing of physical plan DAGs.

Shared nodes are printed once and referenced by label afterwards, so
the textual rendering stays proportional to the DAG size, like the
access module itself.
"""

from repro.algebra.physical import ChoosePlan


def count_plan_nodes(plan):
    """Operator nodes in the plan DAG (the Figure 6 metric)."""
    return plan.node_count()


def plan_to_text(plan, show_cost=True):
    """Render a plan DAG as an indented multi-line string."""
    labels = {}
    lines = []
    _render(plan, 0, labels, lines, show_cost)
    return "\n".join(lines)


def _render(node, depth, labels, lines, show_cost):
    indent = "  " * depth
    existing = labels.get(id(node))
    if existing is not None:
        lines.append("%s@%d (shared)" % (indent, existing))
        return
    label = len(labels) + 1
    labels[id(node)] = label

    description = _describe(node)
    if show_cost and node.cost is not None:
        description += "  cost=%r" % node.cost
    lines.append("%s@%d %s" % (indent, label, description))
    for child in node.inputs():
        _render(child, depth + 1, labels, lines, show_cost)


def _describe(node):
    name = node.operator_name()
    if isinstance(node, ChoosePlan):
        return "%s (%d alternatives)" % (name, len(node.alternatives))
    local = getattr(node, "relation_name", None)
    if local is not None:
        attribute = getattr(node, "attribute", None)
        if attribute is not None:
            return "%s %s.%s" % (name, local, attribute)
        return "%s %s" % (name, local)
    predicate = getattr(node, "predicate", None)
    if predicate is not None:
        return "%s %r" % (name, predicate)
    attribute = getattr(node, "attribute", None)
    if attribute is not None:
        return "%s on %s" % (name, attribute)
    return name
