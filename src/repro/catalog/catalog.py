"""The system catalog: relations, statistics, and index metadata.

Everything the optimizer may consult at compile time lives here.  The
catalog deliberately does not hold the stored data itself — that is the
job of :class:`repro.storage.Database` — so that optimization can run
against a catalog alone, exactly as a real optimizer does.
"""

from repro.common.errors import CatalogError


class IndexInfo:
    """Metadata for one B-tree index.

    The paper's experiments give every selection attribute and every
    join attribute an *unclustered* B-tree (Section 6); clustered
    indexes are supported for completeness.
    """

    __slots__ = ("relation_name", "attribute_name", "clustered", "name")

    def __init__(self, relation_name, attribute_name, clustered=False, name=None):
        self.relation_name = relation_name
        self.attribute_name = attribute_name
        self.clustered = bool(clustered)
        self.name = name or "idx_%s_%s" % (relation_name, attribute_name)

    def __repr__(self):
        kind = "clustered" if self.clustered else "unclustered"
        return "IndexInfo(%s on %s.%s)" % (
            kind,
            self.relation_name,
            self.attribute_name,
        )


class Catalog:
    """Registry of relation schemas, statistics, and indexes."""

    def __init__(self):
        self._schemas = {}
        self._statistics = {}
        self._indexes = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def add_relation(self, schema, statistics):
        """Register a relation with its schema and statistics."""
        if schema.relation_name in self._schemas:
            raise CatalogError("relation %r already exists" % schema.relation_name)
        if statistics.relation_name != schema.relation_name:
            raise CatalogError(
                "schema is for %r but statistics are for %r"
                % (schema.relation_name, statistics.relation_name)
            )
        self._schemas[schema.relation_name] = schema
        self._statistics[schema.relation_name] = statistics
        self._indexes.setdefault(schema.relation_name, {})

    def add_index(self, index_info):
        """Register a B-tree index on an existing relation."""
        relation = index_info.relation_name
        if relation not in self._schemas:
            raise CatalogError("cannot index unknown relation %r" % relation)
        schema = self._schemas[relation]
        if index_info.attribute_name not in schema:
            raise CatalogError(
                "cannot index unknown attribute %s.%s"
                % (relation, index_info.attribute_name)
            )
        self._indexes[relation][index_info.attribute_name] = index_info

    def update_statistics(self, statistics):
        """Replace a relation's statistics (database contents changed).

        Models the drift the paper opens with: "the values of these
        parameters may vary over time because of changes in the
        database contents".  Choose-plan decision procedures read the
        catalog at start-up time, so updated statistics immediately
        influence which alternatives win.
        """
        if statistics.relation_name not in self._schemas:
            raise CatalogError("unknown relation %r" % statistics.relation_name)
        self._statistics[statistics.relation_name] = statistics

    def drop_index(self, relation_name, attribute_name):
        """Remove an index; mirrors 'indexes are created and destroyed'."""
        try:
            del self._indexes[relation_name][attribute_name]
        except KeyError:
            raise CatalogError(
                "no index on %s.%s" % (relation_name, attribute_name)
            ) from None

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def relation_names(self):
        """Sorted names of all registered relations."""
        return sorted(self._schemas)

    def has_relation(self, relation_name):
        """True when the relation is registered."""
        return relation_name in self._schemas

    def schema(self, relation_name):
        """Schema of a relation, raising :class:`CatalogError` if unknown."""
        try:
            return self._schemas[relation_name]
        except KeyError:
            raise CatalogError("unknown relation %r" % relation_name) from None

    def statistics(self, relation_name):
        """Statistics of a relation."""
        try:
            return self._statistics[relation_name]
        except KeyError:
            raise CatalogError("unknown relation %r" % relation_name) from None

    def cardinality(self, relation_name):
        """Record count of a relation."""
        return self.statistics(relation_name).cardinality

    def index_on(self, relation_name, attribute_name):
        """The :class:`IndexInfo` on an attribute, or ``None``."""
        if "." in attribute_name:
            prefix, rest = attribute_name.split(".", 1)
            if prefix == relation_name:
                attribute_name = rest
        return self._indexes.get(relation_name, {}).get(attribute_name)

    def indexes_for(self, relation_name):
        """All indexes registered on a relation."""
        return list(self._indexes.get(relation_name, {}).values())

    def domain_size(self, relation_name, attribute_name):
        """Distinct-value count for an attribute (join selectivity input)."""
        return self.statistics(relation_name).attribute(attribute_name).domain_size

    def __repr__(self):
        return "Catalog(%d relations)" % len(self._schemas)
