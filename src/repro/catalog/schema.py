"""Relation schemas for the prototype's basic relational data model.

The paper's prototype defines "a basic relational data model and
typical execution algorithms" (Section 5); schemas here are flat lists
of typed attributes.  Attribute references are qualified as
``relation.attribute`` throughout the library.
"""

import enum

from repro.common.errors import CatalogError


class AttributeType(enum.Enum):
    """Primitive attribute types supported by the execution engine."""

    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"


class Attribute:
    """A named, typed column of a relation."""

    __slots__ = ("name", "type")

    def __init__(self, name, type=AttributeType.INTEGER):
        if not name or not isinstance(name, str):
            raise CatalogError("attribute name must be a non-empty string")
        if "." in name:
            raise CatalogError(
                "attribute name %r must not be qualified; qualification "
                "is added by the schema" % name
            )
        self.name = name
        self.type = type

    def __eq__(self, other):
        if not isinstance(other, Attribute):
            return NotImplemented
        return self.name == other.name and self.type == other.type

    def __hash__(self):
        return hash((self.name, self.type))

    def __repr__(self):
        return "Attribute(%r, %s)" % (self.name, self.type.value)


class Schema:
    """Ordered attribute list of a relation or intermediate result.

    A schema knows the relation name it belongs to so it can produce
    qualified attribute names (``R.a``); join results concatenate the
    qualified schemas of their inputs.
    """

    __slots__ = ("relation_name", "attributes", "_index")

    def __init__(self, relation_name, attributes):
        self.relation_name = relation_name
        self.attributes = tuple(attributes)
        seen = {}
        for position, attribute in enumerate(self.attributes):
            if attribute.name in seen:
                raise CatalogError(
                    "duplicate attribute %r in schema of %r"
                    % (attribute.name, relation_name)
                )
            seen[attribute.name] = position
        self._index = seen

    def __len__(self):
        return len(self.attributes)

    def __iter__(self):
        return iter(self.attributes)

    def __contains__(self, name):
        return self.unqualify(name) in self._index

    def unqualify(self, name):
        """Strip a ``relation.`` prefix when it matches this schema."""
        prefix = self.relation_name + "."
        if name.startswith(prefix):
            return name[len(prefix):]
        return name

    def qualified_names(self):
        """All attribute names qualified with the relation name."""
        return tuple(
            "%s.%s" % (self.relation_name, attribute.name)
            for attribute in self.attributes
        )

    def position_of(self, name):
        """Zero-based position of an attribute, accepting qualified names."""
        unqualified = self.unqualify(name)
        try:
            return self._index[unqualified]
        except KeyError:
            raise CatalogError(
                "relation %r has no attribute %r" % (self.relation_name, name)
            ) from None

    def attribute(self, name):
        """Look up an :class:`Attribute` by (possibly qualified) name."""
        return self.attributes[self.position_of(name)]

    def __repr__(self):
        return "Schema(%r, %s)" % (
            self.relation_name,
            [attribute.name for attribute in self.attributes],
        )
