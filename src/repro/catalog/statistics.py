"""Statistics the cost model reads: cardinalities and domain sizes.

The paper computes join selectivities as "the cross product of the
joined relations divided by the larger of the join attribute domain
sizes" (Section 6); that needs per-attribute domain sizes, kept here.
"""

from repro.common.errors import CatalogError
from repro.common.units import RECORD_SIZE_BYTES, pages_for_records


class AttributeStatistics:
    """Per-attribute statistics: number of distinct values (domain size)."""

    __slots__ = ("attribute_name", "domain_size", "min_value", "max_value")

    def __init__(self, attribute_name, domain_size, min_value=None, max_value=None):
        if domain_size <= 0:
            raise CatalogError(
                "domain size of %r must be positive, got %r"
                % (attribute_name, domain_size)
            )
        self.attribute_name = attribute_name
        self.domain_size = int(domain_size)
        self.min_value = 0 if min_value is None else min_value
        self.max_value = (
            self.min_value + self.domain_size - 1 if max_value is None else max_value
        )

    def __repr__(self):
        return "AttributeStatistics(%r, domain=%d)" % (
            self.attribute_name,
            self.domain_size,
        )


class RelationStatistics:
    """Per-relation statistics: cardinality, width, attribute stats."""

    __slots__ = ("relation_name", "cardinality", "record_size", "_attributes")

    def __init__(
        self,
        relation_name,
        cardinality,
        attribute_statistics=(),
        record_size=RECORD_SIZE_BYTES,
    ):
        if cardinality < 0:
            raise CatalogError(
                "cardinality of %r must be non-negative" % relation_name
            )
        self.relation_name = relation_name
        self.cardinality = int(cardinality)
        self.record_size = int(record_size)
        self._attributes = {}
        for stats in attribute_statistics:
            self.add_attribute(stats)

    def add_attribute(self, stats):
        """Register statistics for one attribute."""
        self._attributes[stats.attribute_name] = stats

    def attribute(self, name):
        """Statistics for an attribute; unqualified names only."""
        if "." in name:
            name = name.split(".", 1)[1]
        try:
            return self._attributes[name]
        except KeyError:
            raise CatalogError(
                "no statistics for attribute %r of relation %r"
                % (name, self.relation_name)
            ) from None

    def has_attribute(self, name):
        """True when statistics exist for the attribute."""
        if "." in name:
            name = name.split(".", 1)[1]
        return name in self._attributes

    @property
    def pages(self):
        """Pages occupied by the relation on disk."""
        return pages_for_records(self.cardinality)

    def __repr__(self):
        return "RelationStatistics(%r, cardinality=%d, pages=%d)" % (
            self.relation_name,
            self.cardinality,
            self.pages,
        )
