"""Synthetic catalogs and data matching the paper's experimental setup.

Section 6 of the paper: relation cardinalities vary from 100 to 1,000
records of 512 bytes; attribute domain sizes vary from 0.2 to 1.25
times the relation's cardinality; attributes referenced by unbound
selection predicates and all join attributes carry unclustered
B-trees.
"""

from repro.catalog.catalog import Catalog, IndexInfo
from repro.catalog.schema import Attribute, AttributeType, Schema
from repro.catalog.statistics import AttributeStatistics, RelationStatistics
from repro.common.rng import make_rng


class SyntheticRelationSpec:
    """Blueprint for one synthetic relation.

    ``indexed_attributes`` receive unclustered B-trees; ``domain_sizes``
    maps attribute name to distinct-value count (defaults drawn from
    the paper's 0.2–1.25 × cardinality range).
    """

    def __init__(
        self,
        name,
        cardinality,
        attribute_names=("a", "b", "c"),
        indexed_attributes=("a", "b", "c"),
        domain_sizes=None,
    ):
        self.name = name
        self.cardinality = int(cardinality)
        self.attribute_names = tuple(attribute_names)
        self.indexed_attributes = tuple(indexed_attributes)
        self.domain_sizes = dict(domain_sizes or {})

    def __repr__(self):
        return "SyntheticRelationSpec(%r, cardinality=%d)" % (
            self.name,
            self.cardinality,
        )


#: Paper Section 6: domains span 0.2 to 1.25 times the cardinality.
DOMAIN_FACTOR_RANGE = (0.2, 1.25)

#: Domain factor used for join attributes (``b`` and ``c``).  Chosen
#: from the small end of the paper's range so that join fan-outs
#: (cardinality over domain size) exceed one and selectivity-estimation
#: errors *compound* through multi-way joins — the calibration that
#: reproduces Figure 4's growing static-vs-dynamic gap (5x for query 1
#: up to ~24x for query 5).  See EXPERIMENTS.md.
JOIN_DOMAIN_FACTOR = 0.4

#: Attributes treated as join attributes by the default specs.
JOIN_ATTRIBUTES = ("b", "c")

#: Paper Section 6: cardinalities vary from 100 to 1,000 records.
CARDINALITY_RANGE = (100, 1000)


def default_relation_specs(count, seed=0, attribute_names=("a", "b", "c")):
    """Relation specs ``R1..Rcount`` with paper-distribution statistics.

    Cardinalities are spread evenly over the paper's [100, 1000] range
    (deterministically, so query definitions are stable).  Selection
    attributes draw their domain factor from the paper's [0.2, 1.25]
    with a seeded RNG; join attributes use the fixed
    :data:`JOIN_DOMAIN_FACTOR` calibration.
    """
    rng = make_rng(seed, "relation-specs")
    specs = []
    low, high = CARDINALITY_RANGE
    for i in range(count):
        if count == 1:
            cardinality = (low + high) // 2
        else:
            cardinality = low + (high - low) * i // (count - 1)
        domain_sizes = {}
        for attribute_name in attribute_names:
            if attribute_name in JOIN_ATTRIBUTES:
                factor = JOIN_DOMAIN_FACTOR
            else:
                factor = rng.uniform(*DOMAIN_FACTOR_RANGE)
            domain_sizes[attribute_name] = max(1, int(round(cardinality * factor)))
        specs.append(
            SyntheticRelationSpec(
                name="R%d" % (i + 1),
                cardinality=cardinality,
                attribute_names=attribute_names,
                indexed_attributes=attribute_names,
                domain_sizes=domain_sizes,
            )
        )
    return specs


def build_synthetic_catalog(specs, seed=0):
    """A :class:`Catalog` for the given relation specs."""
    catalog = Catalog()
    rng = make_rng(seed, "catalog")
    for spec in specs:
        attributes = [
            Attribute(name, AttributeType.INTEGER) for name in spec.attribute_names
        ]
        schema = Schema(spec.name, attributes)
        attribute_stats = []
        for name in spec.attribute_names:
            domain = spec.domain_sizes.get(name)
            if domain is None:
                factor = rng.uniform(*DOMAIN_FACTOR_RANGE)
                domain = max(1, int(round(spec.cardinality * factor)))
            attribute_stats.append(AttributeStatistics(name, domain))
        statistics = RelationStatistics(
            spec.name, spec.cardinality, attribute_stats
        )
        catalog.add_relation(schema, statistics)
        for attribute_name in spec.indexed_attributes:
            catalog.add_index(IndexInfo(spec.name, attribute_name, clustered=False))
    return catalog


def generate_rows(catalog, relation_name, seed=0):
    """Yield synthetic rows matching the catalog statistics.

    Values of each attribute are drawn uniformly from
    ``[0, domain_size)`` so that actual distinct-value counts track
    the catalog's domain sizes.
    """
    schema = catalog.schema(relation_name)
    statistics = catalog.statistics(relation_name)
    rng = make_rng(seed, "rows", relation_name)
    for _ in range(statistics.cardinality):
        row = {}
        for attribute in schema:
            domain = statistics.attribute(attribute.name).domain_size
            row[attribute.name] = rng.randrange(domain)
        yield row


def populate_database(database, seed=0):
    """Load synthetic rows for every catalog relation into ``database``."""
    for relation_name in database.catalog.relation_names():
        rows = generate_rows(database.catalog, relation_name, seed=seed)
        database.load(relation_name, rows)
    return database
