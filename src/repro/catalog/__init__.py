"""System catalog: relation schemas, statistics, and index metadata.

The optimizer reads cardinalities, attribute domain sizes, and index
availability from here; the synthetic generator (:mod:`.synthetic`)
creates catalogs and matching stored data for the paper's experiments.
"""

from repro.catalog.catalog import Catalog, IndexInfo
from repro.catalog.schema import Attribute, AttributeType, Schema
from repro.catalog.statistics import AttributeStatistics, RelationStatistics
from repro.catalog.synthetic import (
    SyntheticRelationSpec,
    build_synthetic_catalog,
    default_relation_specs,
    generate_rows,
    populate_database,
)

__all__ = [
    "Attribute",
    "AttributeStatistics",
    "AttributeType",
    "Catalog",
    "IndexInfo",
    "RelationStatistics",
    "Schema",
    "SyntheticRelationSpec",
    "default_relation_specs",
    "generate_rows",
    "build_synthetic_catalog",
    "populate_database",
]
