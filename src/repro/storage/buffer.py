"""An LRU buffer pool for heap pages.

The paper's cost model charges one random I/O per unclustered record
fetch; its bibliography cites Mackert and Lohman's validated model of
"index scans using a finite LRU buffer" ([MaL89]) as the refinement a
production system would use.  This pool makes the refinement testable:
the execution engine can route heap-page accesses through an LRU cache
sized by the run-time memory grant, and the buffer-aware cost formulas
(:mod:`repro.cost.formulas` with ``buffer_aware=True``) can be
validated against the hit rates it actually produces.
"""

from collections import OrderedDict


class BufferPool:
    """Fixed-capacity LRU cache of page identifiers."""

    def __init__(self, capacity_pages, fault_injector=None):
        if capacity_pages < 1:
            raise ValueError("buffer pool needs at least one page frame")
        self.capacity_pages = int(capacity_pages)
        #: Optional :class:`~repro.resilience.faults.FaultInjector`;
        #: consulted on every frame access, before hit/miss accounting.
        self.fault_injector = fault_injector
        self._frames = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def access(self, page_key):
        """Access a page; returns True on hit, False on miss (fault).

        ``page_key`` is any hashable page identifier, conventionally
        ``(relation_name, page_number)``.
        """
        if self.fault_injector is not None:
            self.fault_injector.record("buffer_access")
        if page_key in self._frames:
            self._frames.move_to_end(page_key)
            self.hits += 1
            return True
        self.misses += 1
        self._frames[page_key] = True
        if len(self._frames) > self.capacity_pages:
            self._frames.popitem(last=False)
            self.evictions += 1
        return False

    def contains(self, page_key):
        """Whether a page currently resides in the pool (no touch)."""
        return page_key in self._frames

    @property
    def resident_pages(self):
        """Number of pages currently buffered."""
        return len(self._frames)

    @property
    def hit_rate(self):
        """Fraction of accesses served from the pool."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    def clear(self):
        """Empty the pool and reset statistics."""
        self._frames.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __repr__(self):
        return "BufferPool(%d/%d pages, %.0f%% hits)" % (
            len(self._frames),
            self.capacity_pages,
            100.0 * self.hit_rate,
        )
