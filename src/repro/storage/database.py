"""The stored database: heap files plus B-tree indexes per catalog.

A :class:`Database` binds a :class:`~repro.catalog.Catalog` to actual
stored data.  Indexes declared in the catalog are built automatically
as records are loaded, so catalog metadata and physical structures
cannot drift apart.
"""

from repro.common.errors import CatalogError, ExecutionError
from repro.storage.btree import BTree
from repro.storage.heapfile import HeapFile
from repro.storage.iostats import IOStatistics


class Database:
    """Stored relations and indexes matching a catalog."""

    def __init__(self, catalog, io_stats=None):
        self.catalog = catalog
        self.io_stats = io_stats if io_stats is not None else IOStatistics()
        #: Optional :class:`~repro.resilience.faults.FaultInjector`
        #: propagated to every stored structure; install and remove it
        #: with :meth:`install_fault_injector`.
        self.fault_injector = None
        self._heaps = {}
        self._btrees = {}

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def create_relation(self, relation_name):
        """Allocate the heap file and index structures for a relation."""
        schema = self.catalog.schema(relation_name)
        if relation_name in self._heaps:
            raise CatalogError("relation %r already stored" % relation_name)
        self._heaps[relation_name] = HeapFile(
            schema, self.io_stats, fault_injector=self.fault_injector
        )
        self._btrees[relation_name] = {}
        for index_info in self.catalog.indexes_for(relation_name):
            self._btrees[relation_name][index_info.attribute_name] = BTree(
                index_info.attribute_name,
                self.io_stats,
                clustered=index_info.clustered,
                fault_injector=self.fault_injector,
            )

    def install_fault_injector(self, injector):
        """Attach (or with ``None`` detach) a fault injector everywhere.

        Propagates to every existing heap file and B-tree and to
        structures created later, so one call arms the whole stored
        database; execution contexts read the attribute for buffer
        pools and memory-pressure checks.
        """
        self.fault_injector = injector
        for heap in self._heaps.values():
            heap.fault_injector = injector
        for btrees in self._btrees.values():
            for btree in btrees.values():
                btree.fault_injector = injector
        return injector

    def load(self, relation_name, rows):
        """Bulk-load rows into a relation, maintaining all its indexes.

        When the catalog declares a *clustered* index, rows are stored
        in that attribute's order, so records matching an index range
        sit on adjacent heap pages.
        """
        if relation_name not in self._heaps:
            self.create_relation(relation_name)
        heap = self._heaps[relation_name]
        btrees = self._btrees[relation_name]
        clustered_attribute = None
        for index_info in self.catalog.indexes_for(relation_name):
            if index_info.clustered:
                clustered_attribute = index_info.attribute_name
                break
        rows = list(rows)
        if clustered_attribute is not None:
            schema = self.catalog.schema(relation_name)
            position = schema.position_of(clustered_attribute)
            name = schema.attributes[position].name

            def sort_key(row):
                if name in row:
                    return row[name]
                return row["%s.%s" % (relation_name, name)]

            rows.sort(key=sort_key)
        for row in rows:
            rid = heap.insert(row)
            record = heap._pages[rid[0]][rid[1]]
            for attribute_name, btree in btrees.items():
                key = record["%s.%s" % (relation_name, attribute_name)]
                btree.insert(key, rid)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def heap(self, relation_name):
        """The heap file of a relation."""
        try:
            return self._heaps[relation_name]
        except KeyError:
            raise ExecutionError(
                "relation %r has no stored data" % relation_name
            ) from None

    def btree(self, relation_name, attribute_name):
        """The B-tree on an attribute; raises when absent."""
        if "." in attribute_name:
            prefix, rest = attribute_name.split(".", 1)
            if prefix == relation_name:
                attribute_name = rest
        try:
            return self._btrees[relation_name][attribute_name]
        except KeyError:
            raise ExecutionError(
                "no B-tree on %s.%s" % (relation_name, attribute_name)
            ) from None

    def has_btree(self, relation_name, attribute_name):
        """True when a B-tree exists on the attribute."""
        try:
            self.btree(relation_name, attribute_name)
        except ExecutionError:
            return False
        return True

    def relation_names(self):
        """Names of relations with stored data."""
        return sorted(self._heaps)

    def __repr__(self):
        return "Database(%d stored relations)" % len(self._heaps)
