"""Counters for simulated I/O and CPU work.

The storage layer and iterators charge their page reads/writes and
per-record CPU work here, so an executed plan yields an account that
can be compared against the optimizer's cost prediction.
"""

from repro.common.units import CPU_COST_WEIGHT, IO_TIME_PER_PAGE


class IOStatistics:
    """Mutable counters of pages read/written and records processed."""

    __slots__ = ("pages_read", "pages_written", "records_processed", "index_probes")

    def __init__(self):
        self.pages_read = 0
        self.pages_written = 0
        self.records_processed = 0
        self.index_probes = 0

    def reset(self):
        """Zero all counters."""
        self.pages_read = 0
        self.pages_written = 0
        self.records_processed = 0
        self.index_probes = 0

    def charge_page_reads(self, count=1):
        """Record ``count`` page reads."""
        self.pages_read += count

    def charge_page_writes(self, count=1):
        """Record ``count`` page writes."""
        self.pages_written += count

    def charge_records(self, count=1):
        """Record per-record CPU work."""
        self.records_processed += count

    def charge_index_probe(self, count=1):
        """Record ``count`` index probes (root-to-leaf traversals)."""
        self.index_probes += count

    @property
    def total_pages(self):
        """Pages read plus pages written."""
        return self.pages_read + self.pages_written

    def estimated_seconds(self):
        """Fold the counters into seconds using the machine constants."""
        io = self.total_pages * IO_TIME_PER_PAGE
        cpu = self.records_processed * CPU_COST_WEIGHT
        return io + cpu

    def snapshot(self):
        """An immutable copy of the current counters as a dict."""
        return {
            "pages_read": self.pages_read,
            "pages_written": self.pages_written,
            "records_processed": self.records_processed,
            "index_probes": self.index_probes,
        }

    def __repr__(self):
        return (
            "IOStatistics(read=%d, written=%d, records=%d, probes=%d)"
            % (
                self.pages_read,
                self.pages_written,
                self.records_processed,
                self.index_probes,
            )
        )
