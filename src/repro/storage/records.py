"""Records: immutable tuples with schema-aware field access.

A record is stored in a heap file under a record identifier (RID) of
``(page_number, slot)``.  Records in intermediate results (join
outputs) use merged field maps keyed by qualified attribute names.
"""

from repro.common.errors import ExecutionError


class Record:
    """An immutable mapping from qualified attribute names to values."""

    __slots__ = ("_fields", "rid")

    def __init__(self, fields, rid=None):
        self._fields = dict(fields)
        self.rid = rid

    def __getitem__(self, name):
        try:
            return self._fields[name]
        except KeyError:
            pass
        # Fall back to suffix match for unqualified lookups of
        # qualified fields (and vice versa).
        matches = [
            value
            for key, value in self._fields.items()
            if key == name
            or key.endswith("." + name)
            or name.endswith("." + key)
        ]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise ExecutionError(
                "record has no field %r (fields: %s)"
                % (name, sorted(self._fields))
            )
        raise ExecutionError("field reference %r is ambiguous" % name)

    def get(self, name, default=None):
        """Like ``dict.get`` with the same suffix-matching as indexing."""
        try:
            return self[name]
        except ExecutionError:
            return default

    def __contains__(self, name):
        try:
            self[name]
        except ExecutionError:
            return False
        return True

    def keys(self):
        """Field names present in the record."""
        return self._fields.keys()

    def as_dict(self):
        """A plain dict copy of the fields."""
        return dict(self._fields)

    def merged_with(self, other):
        """A new record holding this record's and ``other``'s fields."""
        merged = Record.__new__(Record)
        fields = dict(self._fields)
        fields.update(other._fields)
        merged._fields = fields
        merged.rid = None
        return merged

    def project(self, names):
        """A new record keeping only the named fields."""
        projected = Record.__new__(Record)
        projected._fields = {name: self[name] for name in names}
        projected.rid = None
        return projected

    def __eq__(self, other):
        if not isinstance(other, Record):
            return NotImplemented
        return self._fields == other._fields

    def __hash__(self):
        return hash(tuple(sorted(self._fields.items())))

    def __repr__(self):
        inner = ", ".join(
            "%s=%r" % (key, self._fields[key]) for key in sorted(self._fields)
        )
        return "Record(%s)" % inner
