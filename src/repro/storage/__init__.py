"""Storage substrate: paged heap files, B-tree indexes, I/O accounting.

The execution engine runs plans over this substrate.  Pages are 2 KB
and records 512 bytes as in the paper's experiments; every page access
is counted by an :class:`IOStatistics` object so tests and examples
can validate the cost model against actual behaviour.
"""

from repro.storage.btree import BTree
from repro.storage.buffer import BufferPool
from repro.storage.database import Database
from repro.storage.heapfile import HeapFile
from repro.storage.iostats import IOStatistics
from repro.storage.records import Record

__all__ = ["BTree", "BufferPool", "Database", "HeapFile", "IOStatistics", "Record"]
