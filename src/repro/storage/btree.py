"""A B+-tree index over one attribute of a heap file.

This is a real tree — nodes split at a fan-out limit, leaves are
chained for range scans — not a sorted-list stand-in.  Keys map to
lists of RIDs (duplicates allowed).  Traversals charge one page read
per node visited, so index scans have the cost profile the paper's
cost model assumes: a root-to-leaf descent plus one leaf page per
``fan_out`` qualifying keys, plus (for unclustered indexes) one heap
page fetch per qualifying record.
"""

import bisect

from repro.common.errors import ExecutionError


class _Node:
    """Internal or leaf node; leaves keep RID lists and a next pointer."""

    __slots__ = ("keys", "children", "values", "next_leaf", "is_leaf")

    def __init__(self, is_leaf):
        self.is_leaf = is_leaf
        self.keys = []
        self.children = [] if not is_leaf else None
        self.values = [] if is_leaf else None
        self.next_leaf = None


class BTree:
    """B+-tree mapping attribute values to RID lists."""

    def __init__(self, attribute_name, io_stats, fan_out=32, clustered=False,
                 fault_injector=None):
        if fan_out < 4:
            raise ExecutionError("B-tree fan-out must be at least 4")
        self.attribute_name = attribute_name
        self.io_stats = io_stats
        self.fan_out = fan_out
        self.clustered = clustered
        #: Optional :class:`~repro.resilience.faults.FaultInjector`;
        #: consulted once per root-to-leaf descent, before the probe's
        #: I/O is charged.
        self.fault_injector = fault_injector
        self._root = _Node(is_leaf=True)
        self._height = 1
        self._entry_count = 0

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def insert(self, key, rid):
        """Insert one (key, RID) entry, splitting nodes as needed."""
        result = self._insert_into(self._root, key, rid)
        if result is not None:
            separator, new_node = result
            new_root = _Node(is_leaf=False)
            new_root.keys = [separator]
            new_root.children = [self._root, new_node]
            self._root = new_root
            self._height += 1
        self._entry_count += 1

    def _insert_into(self, node, key, rid):
        """Recursive insert; returns (separator, new right node) on split."""
        if node.is_leaf:
            position = bisect.bisect_left(node.keys, key)
            if position < len(node.keys) and node.keys[position] == key:
                node.values[position].append(rid)
                return None
            node.keys.insert(position, key)
            node.values.insert(position, [rid])
            if len(node.keys) > self.fan_out:
                return self._split_leaf(node)
            return None
        position = bisect.bisect_right(node.keys, key)
        result = self._insert_into(node.children[position], key, rid)
        if result is None:
            return None
        separator, new_child = result
        node.keys.insert(position, separator)
        node.children.insert(position + 1, new_child)
        if len(node.children) > self.fan_out:
            return self._split_internal(node)
        return None

    def _split_leaf(self, node):
        middle = len(node.keys) // 2
        sibling = _Node(is_leaf=True)
        sibling.keys = node.keys[middle:]
        sibling.values = node.values[middle:]
        node.keys = node.keys[:middle]
        node.values = node.values[:middle]
        sibling.next_leaf = node.next_leaf
        node.next_leaf = sibling
        return sibling.keys[0], sibling

    def _split_internal(self, node):
        middle = len(node.keys) // 2
        separator = node.keys[middle]
        sibling = _Node(is_leaf=False)
        sibling.keys = node.keys[middle + 1:]
        sibling.children = node.children[middle + 1:]
        node.keys = node.keys[:middle]
        node.children = node.children[:middle + 1]
        return separator, sibling

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def height(self):
        """Levels from root to leaf, inclusive."""
        return self._height

    @property
    def entry_count(self):
        """Total (key, RID) entries inserted."""
        return self._entry_count

    def leaf_count(self):
        """Number of leaf nodes (for cost-model validation tests)."""
        node = self._leftmost_leaf()
        count = 0
        while node is not None:
            count += 1
            node = node.next_leaf
        return count

    def _leftmost_leaf(self):
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node

    def check_invariants(self):
        """Verify ordering and linkage invariants; raises on violation.

        Used by property-based tests: all keys in sorted order within
        nodes, leaf chain globally sorted, every entry reachable.
        """
        previous_key = None
        reachable = 0
        node = self._descend_leftmost_charged(charge=False)
        while node is not None:
            if node.keys != sorted(node.keys):
                raise ExecutionError("leaf keys out of order")
            for key, rids in zip(node.keys, node.values):
                if previous_key is not None and key <= previous_key:
                    raise ExecutionError("leaf chain out of order")
                previous_key = key
                if not rids:
                    raise ExecutionError("empty RID list for key %r" % (key,))
                reachable += len(rids)
            node = node.next_leaf
        if reachable != self._entry_count:
            raise ExecutionError(
                "entry count mismatch: %d reachable of %d inserted"
                % (reachable, self._entry_count)
            )

    def _descend_leftmost_charged(self, charge=True):
        node = self._root
        while not node.is_leaf:
            if charge:
                self.io_stats.charge_page_reads(1)
            node = node.children[0]
        if charge:
            self.io_stats.charge_page_reads(1)
        return node

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def search(self, key):
        """RIDs for an exact key (empty list when absent).

        Charges one page read per level (the probe) and counts one
        index probe.
        """
        if self.fault_injector is not None:
            self.fault_injector.record("index_probe")
        self.io_stats.charge_index_probe(1)
        node = self._root
        while not node.is_leaf:
            self.io_stats.charge_page_reads(1)
            position = bisect.bisect_right(node.keys, key)
            node = node.children[position]
        self.io_stats.charge_page_reads(1)
        position = bisect.bisect_left(node.keys, key)
        if position < len(node.keys) and node.keys[position] == key:
            return list(node.values[position])
        return []

    def search_many(self, keys):
        """RID lists for several exact keys, charged like :meth:`search`.

        The batch path of :meth:`search`: one index probe and one page
        read per level for each key — every descent touches the same
        number of levels because all leaves sit at the same depth — so
        the totals of ``len(keys)`` single searches can be charged in
        two bulk calls, and the descents run without per-level
        accounting.  Duplicate keys are charged like repeated searches
        but descend only once; the returned RID lists may be shared
        between duplicates, so callers must treat them as read-only.
        """
        height = 1
        node = self._root
        while not node.is_leaf:
            height += 1
            node = node.children[0]
        if self.fault_injector is not None:
            self.fault_injector.record("index_probe", len(keys))
        self.io_stats.charge_index_probe(len(keys))
        self.io_stats.charge_page_reads(height * len(keys))
        root = self._root
        bisect_right = bisect.bisect_right
        bisect_left = bisect.bisect_left
        memo = {}
        results = []
        append = results.append
        for key in keys:
            rids = memo.get(key)
            if rids is None:
                node = root
                while not node.is_leaf:
                    node = node.children[bisect_right(node.keys, key)]
                position = bisect_left(node.keys, key)
                if position < len(node.keys) and node.keys[position] == key:
                    rids = list(node.values[position])
                else:
                    rids = []
                memo[key] = rids
            append(rids)
        return results

    def range_scan(self, low=None, high=None):
        """Yield ``(key, rid)`` in key order for ``low <= key <= high``.

        ``None`` bounds are open.  Charges the initial descent plus one
        page read per additional leaf visited.
        """
        if self.fault_injector is not None:
            self.fault_injector.record("index_probe")
        self.io_stats.charge_index_probe(1)
        node = self._root
        while not node.is_leaf:
            self.io_stats.charge_page_reads(1)
            if low is None:
                node = node.children[0]
            else:
                position = bisect.bisect_right(node.keys, low)
                node = node.children[position]
        self.io_stats.charge_page_reads(1)
        start = 0 if low is None else bisect.bisect_left(node.keys, low)
        while node is not None:
            for position in range(start, len(node.keys)):
                key = node.keys[position]
                if high is not None and key > high:
                    return
                for rid in node.values[position]:
                    yield key, rid
            node = node.next_leaf
            start = 0
            if node is not None:
                self.io_stats.charge_page_reads(1)

    def keys_in_order(self):
        """All distinct keys in ascending order (no I/O charged)."""
        result = []
        node = self._leftmost_leaf()
        while node is not None:
            result.extend(node.keys)
            node = node.next_leaf
        return result

    def __repr__(self):
        return "BTree(%r, entries=%d, height=%d)" % (
            self.attribute_name,
            self._entry_count,
            self._height,
        )
