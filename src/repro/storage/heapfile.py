"""Heap files: unordered record storage in fixed-size pages.

Each relation's records are packed four to a 2 KB page (512-byte
records).  A sequential scan charges one page read per page touched;
fetching a single record by RID charges one page read — this is the
behaviour that makes unclustered index scans expensive at high
selectivity, the effect at the heart of the paper's motivating
example.
"""

from repro.common.errors import ExecutionError
from repro.common.units import RECORDS_PER_PAGE
from repro.storage.records import Record


class HeapFile:
    """Paged heap storage for the records of one relation."""

    def __init__(self, schema, io_stats, records_per_page=RECORDS_PER_PAGE,
                 fault_injector=None):
        if records_per_page <= 0:
            raise ExecutionError("records_per_page must be positive")
        self.schema = schema
        self.io_stats = io_stats
        self.records_per_page = records_per_page
        #: Optional :class:`~repro.resilience.faults.FaultInjector`;
        #: consulted before every simulated device access, so an
        #: injected fault aborts the operation before its I/O charge.
        self.fault_injector = fault_injector
        self._pages = []

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def insert(self, fields):
        """Append a record; returns its RID ``(page, slot)``.

        Accepts unqualified field names and qualifies them with the
        relation name so that downstream operators always see
        ``relation.attribute`` keys.
        """
        qualified = {}
        for attribute in self.schema:
            name = attribute.name
            if name in fields:
                value = fields[name]
            else:
                qualified_name = "%s.%s" % (self.schema.relation_name, name)
                if qualified_name not in fields:
                    raise ExecutionError(
                        "missing field %r when inserting into %r"
                        % (name, self.schema.relation_name)
                    )
                value = fields[qualified_name]
            qualified["%s.%s" % (self.schema.relation_name, name)] = value
        if not self._pages or len(self._pages[-1]) >= self.records_per_page:
            if self.fault_injector is not None:
                self.fault_injector.record("heap_write")
            self._pages.append([])
            self.io_stats.charge_page_writes(1)
        page_number = len(self._pages) - 1
        slot = len(self._pages[page_number])
        record = Record(qualified, rid=(page_number, slot))
        self._pages[page_number].append(record)
        return record.rid

    def bulk_load(self, rows):
        """Insert many rows; returns the RIDs in insertion order."""
        return [self.insert(row) for row in rows]

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    @property
    def page_count(self):
        """Number of allocated pages."""
        return len(self._pages)

    @property
    def record_count(self):
        """Total records stored."""
        return sum(len(page) for page in self._pages)

    def scan(self, buffer_pool=None):
        """Yield every record, charging one page read per page.

        With a ``buffer_pool``, resident pages cost no I/O (the pool is
        touched so the scan competes for frames like any access).
        """
        for page_number, page in enumerate(self._pages):
            if buffer_pool is None or not buffer_pool.access(
                (self.schema.relation_name, page_number)
            ):
                if self.fault_injector is not None:
                    self.fault_injector.record("heap_read")
                self.io_stats.charge_page_reads(1)
            for record in page:
                self.io_stats.charge_records(1)
                yield record

    def scan_batches(self, batch_size, buffer_pool=None):
        """Yield page-aligned record batches, charging per page.

        The batch path of :meth:`scan`: identical page-read and
        record charges (one page read per page touched, one record
        charge per record), but batched — records are charged per
        page instead of one call per record, and batches only break
        at page boundaries, so a batch holds whole pages.  A batch is
        flushed once it reaches ``batch_size`` records; the final
        batch may be smaller.
        """
        if batch_size < 1:
            raise ExecutionError("batch_size must be at least 1")
        if buffer_pool is None:
            # No pool: every page is a miss, so pages and records can
            # be charged in bulk per batch instead of per page.
            batch = []
            page_count = 0
            for page in self._pages:
                page_count += 1
                batch.extend(page)
                if len(batch) >= batch_size:
                    if self.fault_injector is not None:
                        self.fault_injector.record("heap_read", page_count)
                    self.io_stats.charge_page_reads(page_count)
                    self.io_stats.charge_records(len(batch))
                    page_count = 0
                    yield batch
                    batch = []
            if batch:
                if self.fault_injector is not None:
                    self.fault_injector.record("heap_read", page_count)
                self.io_stats.charge_page_reads(page_count)
                self.io_stats.charge_records(len(batch))
                yield batch
            return
        batch = []
        for page_number, page in enumerate(self._pages):
            if not buffer_pool.access((self.schema.relation_name, page_number)):
                if self.fault_injector is not None:
                    self.fault_injector.record("heap_read")
                self.io_stats.charge_page_reads(1)
            self.io_stats.charge_records(len(page))
            batch.extend(page)
            if len(batch) >= batch_size:
                yield batch
                batch = []
        if batch:
            yield batch

    def fetch(self, rid, buffer_pool=None):
        """Fetch one record by RID, charging one page read on a miss.

        This models the unclustered-index record fetch: each qualifying
        RID costs a page access because neighbouring qualifying records
        rarely share pages — unless an LRU ``buffer_pool`` still holds
        the page ([MaL89]'s refinement).
        """
        page_number, slot = rid
        try:
            page = self._pages[page_number]
            record = page[slot]
        except IndexError:
            raise ExecutionError("invalid RID %r" % (rid,)) from None
        if buffer_pool is None or not buffer_pool.access(
            (self.schema.relation_name, page_number)
        ):
            if self.fault_injector is not None:
                self.fault_injector.record("heap_read")
            self.io_stats.charge_page_reads(1)
        self.io_stats.charge_records(1)
        return record

    def fetch_many(self, rids, buffer_pool=None):
        """Fetch several records by RID, with the charges of :meth:`fetch`.

        The batch path of :meth:`fetch`: the same one-page-read-per-RID
        and one-record-per-RID accounting, but charged in bulk when no
        buffer pool is attached (every fetch is a miss, so the totals
        are position-independent).  With a pool the per-RID access
        order is preserved so hit patterns match the row-mode path.
        """
        pages = self._pages
        if buffer_pool is None:
            try:
                records = [pages[rid[0]][rid[1]] for rid in rids]
            except IndexError:
                for rid in rids:
                    self.fetch(rid)  # re-raises with the offending RID
                raise ExecutionError("invalid RID in %r" % (rids,))
            if self.fault_injector is not None:
                self.fault_injector.record("heap_read", len(records))
            self.io_stats.charge_page_reads(len(records))
            self.io_stats.charge_records(len(records))
            return records
        return [self.fetch(rid, buffer_pool) for rid in rids]

    def all_records(self):
        """All records without charging I/O (catalog/loader internals)."""
        result = []
        for page in self._pages:
            result.extend(page)
        return result

    def __len__(self):
        return self.record_count

    def __repr__(self):
        return "HeapFile(%r, %d records, %d pages)" % (
            self.schema.relation_name,
            self.record_count,
            self.page_count,
        )
