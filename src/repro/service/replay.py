"""Workload replay through the query service.

Implements the ``python -m repro serve-batch`` CLI: materialize a
:class:`~repro.workloads.service.ServiceWorkloadSpec`, push its full
invocation sequence through a :class:`~repro.service.QueryService`
thread pool, and report the quantities the paper's amortization
argument is about — cache hit rate, start-up latency percentiles, and
the speedup over optimizing every invocation from scratch.

The baseline is *optimize-per-query*: a system without a plan cache
pays a fresh optimization for every invocation (the paper's run-time
optimization remedy).  Its per-invocation cost is measured by timing a
few optimizer runs per distinct query (``baseline_samples``) rather
than re-optimizing all N invocations; the reported baseline is the
optimization cost alone — conservative, since the no-cache system
would pay its own start-up on top.
"""

import json
import time

from repro.catalog.synthetic import populate_database
from repro.common.rng import make_rng
from repro.common.stats import percentile
from repro.service.service import QueryService, ServiceRequest
from repro.service.sharding import ShardedQueryService
from repro.storage.database import Database
from repro.workloads.service import generate_service_requests


class ReplayReport:
    """Everything one replay produced, ready for rendering."""

    def __init__(
        self,
        spec,
        results,
        stats,
        wall_seconds,
        baseline_means,
        per_query,
        sharded_stats=None,
        restore_stats=None,
    ):
        self.spec = spec
        self.results = results
        #: :class:`~repro.service.service.ServiceStatistics` snapshot.
        self.stats = stats
        #: :class:`~repro.service.sharding.ShardedServiceStatistics`
        #: when the replay went through the sharded gateway, else None
        #: (``stats`` is then its exact aggregate).
        self.sharded_stats = sharded_stats
        #: :class:`~repro.service.durability.RestoreStats` when the
        #: replay warm-started from a snapshot, else None.
        self.restore_stats = restore_stats
        self.wall_seconds = wall_seconds
        #: query name -> mean seconds of one from-scratch optimization.
        self.baseline_means = baseline_means
        #: query name -> dict of per-query counters.
        self.per_query = per_query
        self.service_seconds = sum(
            result.optimize_seconds + result.startup_seconds for result in results
        )
        self.baseline_seconds = sum(baseline_means[result.tag] for result in results)
        #: Optimize-per-query cost over the service's optimize+start-up
        #: cost for the same invocation sequence.
        if self.service_seconds > 0.0:
            self.speedup = self.baseline_seconds / self.service_seconds
        else:
            self.speedup = 0.0

    @property
    def hit_rate(self):
        """Fraction of invocations served from the plan cache."""
        return self.stats.hit_rate

    @property
    def rows_total(self):
        """Total rows produced (0 when execution was disabled)."""
        return sum(result.row_count or 0 for result in self.results)

    def __repr__(self):
        return "ReplayReport(%d invocations, hit_rate=%.2f, speedup=%.1fx)" % (
            len(self.results),
            self.hit_rate,
            self.speedup,
        )


def replay_spec(
    spec,
    execute=None,
    baseline_samples=2,
    optimize=None,
    execution_mode=None,
    snapshot=None,
):
    """Replay a service workload spec; returns a :class:`ReplayReport`.

    ``execute`` overrides the spec's execute flag (useful for latency-
    only smoke runs); ``optimize`` overrides the optimizer entry point
    for both the service and the baseline measurement;
    ``execution_mode`` overrides the spec's executor (``"row"`` or
    ``"batch"``).  ``snapshot`` names a plan-cache snapshot file: the
    replay warm-starts from it when it exists and (re)writes it on
    shutdown, so repeated replays skip re-optimizing the hot set.
    """
    if optimize is None:
        from repro.optimizer.optimizer import optimize_dynamic

        optimize = optimize_dynamic
    if execution_mode is not None:
        spec = spec.replace(execution_mode=execution_mode)
    workloads, requests = generate_service_requests(spec)
    catalog = workloads[0].catalog
    database = Database(catalog)
    do_execute = spec.execute if execute is None else execute
    if do_execute:
        populate_database(database, seed=spec.seed)

    tenants = _assign_tenants(spec)
    service_requests = [
        ServiceRequest(
            workload.query,
            bindings,
            tag=workload.query.name,
            tenant=tenants[index] if tenants is not None else None,
        )
        for index, (workload, bindings) in enumerate(requests)
    ]
    sharded_stats = None
    restore_stats = None
    if spec.shards > 1:
        with ShardedQueryService(
            database,
            shards=spec.shards,
            capacity=spec.capacity,
            optimize=optimize,
            execute=do_execute,
            execution_mode=spec.execution_mode,
            durability=snapshot,
        ) as service:
            restore_stats = service.restore_stats
            started = time.perf_counter()
            results = service.run_batch(service_requests)
            wall_seconds = time.perf_counter() - started
            sharded_stats = service.stats()
            stats = sharded_stats.total
    else:
        with QueryService(
            database,
            capacity=spec.capacity,
            max_workers=spec.threads,
            optimize=optimize,
            execute=do_execute,
            execution_mode=spec.execution_mode,
        ) as service:
            if snapshot is not None:
                restore_stats = _restore_single(service, snapshot)
            started = time.perf_counter()
            results = service.run_batch(service_requests)
            wall_seconds = time.perf_counter() - started
            stats = service.stats()
            if snapshot is not None:
                from repro.service.durability import (
                    build_snapshot,
                    write_snapshot,
                )

                write_snapshot(snapshot, build_snapshot(service))

    baseline_means = {}
    for workload in workloads:
        samples = []
        for _ in range(max(1, baseline_samples)):
            sample_started = time.perf_counter()
            optimize(catalog, workload.query)
            samples.append(time.perf_counter() - sample_started)
        baseline_means[workload.query.name] = sum(samples) / len(samples)

    per_query = {}
    for result in results:
        counters = per_query.setdefault(
            result.tag,
            {"invocations": 0, "hits": 0, "reoptimizations": 0, "startup": 0.0},
        )
        counters["invocations"] += 1
        counters["hits"] += 1 if result.cache_hit else 0
        counters["reoptimizations"] += 1 if result.reoptimized else 0
        counters["startup"] += result.startup_seconds
    return ReplayReport(
        spec,
        results,
        stats,
        wall_seconds,
        baseline_means,
        per_query,
        sharded_stats=sharded_stats,
        restore_stats=restore_stats,
    )


def _restore_single(service, path):
    """Warm a single (unsharded) service from ``path`` if it exists."""
    from repro.common.errors import SnapshotError
    from repro.service.durability import read_snapshot, restore_service

    try:
        snapshot = read_snapshot(path)
    except SnapshotError as error:
        if error.reason == "unreadable":  # first run: cold start
            return None
        raise
    return restore_service(service, snapshot)


def _assign_tenants(spec):
    """Deterministic Zipf-distributed tenant per invocation, or None.

    Derived from the spec seed through its own stream, so enabling
    tenancy never reshuffles the mix or binding draws.
    """
    if spec.tenants < 1:
        return None
    rng = make_rng(spec.seed, "service-tenants")
    ranks = range(spec.tenants)
    weights = [1.0 / (rank + 1) for rank in ranks]
    return [
        "tenant-%d" % rng.choices(ranks, weights=weights)[0]
        for _ in range(spec.invocations)
    ]


def qps_summary(report):
    """Throughput/latency summary of one replay, as a JSON-ready dict.

    ``qps`` is invocations over replay wall time; latency percentiles
    (via :func:`repro.common.stats.percentile`) are over per-request
    service time — optimize + start-up + execution — in microseconds.
    Written by ``serve-batch --qps-report``.
    """
    latencies = sorted(result.total_seconds for result in report.results)
    summary = {
        "invocations": len(report.results),
        "wall_seconds": report.wall_seconds,
        "qps": (
            len(report.results) / report.wall_seconds
            if report.wall_seconds > 0.0
            else 0.0
        ),
        "hit_rate": report.hit_rate,
        "shards": report.spec.shards,
        "tenants": report.spec.tenants,
        "threads": report.spec.threads,
        "execution_mode": report.spec.execution_mode,
        "latency_us": {
            "p50": 1e6 * percentile(latencies, 0.50) if latencies else 0.0,
            "p95": 1e6 * percentile(latencies, 0.95) if latencies else 0.0,
            "p99": 1e6 * percentile(latencies, 0.99) if latencies else 0.0,
            "mean": (
                1e6 * sum(latencies) / len(latencies) if latencies else 0.0
            ),
        },
    }
    if report.sharded_stats is not None:
        summary["overload"] = dict(report.sharded_stats.overload)
        summary["per_shard_requests"] = [
            part.requests for part in report.sharded_stats.per_shard
        ]
    return summary


def write_qps_report(report, path):
    """Write :func:`qps_summary` as JSON to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(qps_summary(report), handle, indent=2, sort_keys=True)
        handle.write("\n")


def render_report(report):
    """The replay report as printable text."""
    stats = report.stats
    lines = []
    lines.append(
        "serve-batch: %d invocations over %d query shapes, %d threads, "
        "%s execution"
        % (
            len(report.results),
            len(report.spec.queries),
            report.spec.threads,
            report.spec.execution_mode,
        )
    )
    lines.append("")
    lines.append(
        "  %-24s %6s %6s %7s %12s %12s"
        % ("query", "calls", "hits", "reopt", "startup-mean", "optimize")
    )
    for name in sorted(report.per_query):
        counters = report.per_query[name]
        lines.append(
            "  %-24s %6d %6d %7d %11.3fms %10.3fms"
            % (
                name,
                counters["invocations"],
                counters["hits"],
                counters["reoptimizations"],
                1000.0 * counters["startup"] / counters["invocations"],
                1000.0 * report.baseline_means[name],
            )
        )
    lines.append("")
    lines.append(
        "  cache: %.1f%% hit rate (%d hits / %d lookups), "
        "%d evictions, %d re-optimizations"
        % (
            100.0 * stats.hit_rate,
            stats.cache["hits"],
            stats.cache["lookups"],
            stats.cache["evictions"],
            stats.cache["invalidations"],
        )
    )
    lines.append(
        "  start-up latency: p50 %.3fms  p95 %.3fms  mean %.3fms"
        % (
            1000.0 * stats.startup_p50,
            1000.0 * stats.startup_p95,
            1000.0 * stats.startup_mean,
        )
    )
    lines.append(
        "  optimize-per-query baseline: %.3fs; service spent %.3fs "
        "-> speedup %.1fx"
        % (report.baseline_seconds, report.service_seconds, report.speedup)
    )
    if report.rows_total:
        lines.append(
            "  executed %d invocations producing %d rows in %.3fs wall"
            % (len(report.results), report.rows_total, report.wall_seconds)
        )
    else:
        lines.append("  wall time: %.3fs" % report.wall_seconds)
    if report.sharded_stats is not None:
        sharded = report.sharded_stats
        lines.append(
            "  sharded gateway: %d shards, per-shard requests %s, "
            "%d overload rejections"
            % (
                len(sharded.per_shard),
                [part.requests for part in sharded.per_shard],
                sharded.rejections,
            )
        )
    return "\n".join(lines)
