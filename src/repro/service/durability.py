"""Durable plan-cache state: snapshot, atomic persist, warm restore.

A process restart forgets every compiled plan, widened parameter
bound, and calibration observation the serving tier paid optimizer
time to learn; re-reaching amortized latency then costs one full
re-optimization per hot signature.  This module makes that state
durable without pickling code objects:

* **Snapshot** — :func:`build_snapshot` walks a gateway's (or single
  service's) plan-cache entries and serializes, per entry, the plain
  data a fresh process needs to rebuild it: the query spec (relations,
  selection predicates, join predicates, projection), the installed
  plan as an :class:`~repro.executor.access_module.AccessModule` JSON
  payload, the *current* parameter space (including bounds widened by
  staleness re-optimizations), the observed binding ranges, and the
  hit/re-optimization counters.  Decision programs and fused pipelines
  are deliberately **not** stored — generated code is re-compiled on
  load, so a snapshot can never smuggle stale code across a version
  boundary.
* **Persist** — :func:`write_snapshot` writes a versioned, checksummed
  JSON document via the atomic temp-file + ``os.replace`` dance:
  readers see either the old snapshot or the new one, never a torn
  write.  :func:`read_snapshot` refuses wrong formats/versions
  (:class:`~repro.common.errors.SnapshotVersionError`) and failed
  checksums (:class:`~repro.common.errors.SnapshotCorruptError`).
* **Restore** — :func:`restore_gateway` routes each entry to the shard
  owning its recomputed canonical signature (so the snapshot survives
  a shard-count change), seeds the partition outside the hit/miss
  accounting (:meth:`~repro.service.cache.PlanCache.seed_entry`),
  materializes the plan, re-compiles the start-up decision program
  (interpreted fallback on
  :class:`~repro.service.decision.DecisionCompilationError`, counted),
  and installs everything under the entry lock.  Restored entries have
  a plan installed, so the first live request for a restored signature
  is a cache *hit* that skips compilation entirely — the counter-level
  proof that warm restore works.

The gateway drives this through :class:`DurabilityConfig`: restore at
startup, snapshot every N completed requests (count-based, so tests
are deterministic), snapshot on shutdown, and optionally re-warm a
restarted shard's partition from the last snapshot on disk.
"""

import hashlib
import json
import os
import tempfile

from repro.common.errors import (
    SnapshotCorruptError,
    SnapshotError,
    SnapshotVersionError,
)
from repro.executor.access_module import (
    AccessModule,
    _joins_from_list,
    _joins_to_list,
    _selection_from_dict,
    _selection_to_dict,
)
from repro.optimizer.query import QuerySpec, canonical_signature
from repro.cost.parameters import Parameter, ParameterSpace
from repro.service.decision import CompiledDecision, DecisionCompilationError

__all__ = [
    "DurabilityConfig",
    "RestoreStats",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "build_snapshot",
    "read_snapshot",
    "restore_gateway",
    "restore_service",
    "write_snapshot",
]

#: Magic identifying a plan-cache snapshot document.
SNAPSHOT_FORMAT = "repro-plan-cache-snapshot"

#: Bump when the entry schema changes incompatibly; readers refuse
#: other versions rather than guess.
SNAPSHOT_VERSION = 1


# ----------------------------------------------------------------------
# Entry (de)serialization
# ----------------------------------------------------------------------


def _query_to_dict(query):
    """A :class:`QuerySpec` as plain data (inverse of :func:`_query_from_dict`)."""
    return {
        "relations": list(query.relations),
        "selections": {
            relation: _selection_to_dict(predicate)
            for relation, predicate in sorted(query.selections.items())
        },
        "joins": _joins_to_list(query.join_predicates),
        "memory_uncertain": query.memory_uncertain,
        "name": query.name,
        "projection": list(query.projection) if query.projection else None,
    }


def _query_from_dict(data):
    selections = {
        relation: _selection_from_dict(predicate)
        for relation, predicate in data["selections"].items()
    }
    projection = data.get("projection")
    return QuerySpec(
        data["relations"],
        selections,
        _joins_from_list(data["joins"]),
        memory_uncertain=data["memory_uncertain"],
        name=data["name"],
        projection=tuple(projection) if projection else None,
    )


def _space_to_list(space):
    """The *current* parameter space — widened bounds included."""
    parameters = []
    for name in space.names():
        parameter = space.get(name)
        parameters.append(
            {
                "name": name,
                "lower": parameter.bounds.lower,
                "upper": parameter.bounds.upper,
                "expected": parameter.expected,
                "uncertain": parameter.uncertain,
            }
        )
    return parameters


def _space_from_list(data):
    return ParameterSpace(
        Parameter(
            item["name"],
            (item["lower"], item["upper"]),
            item["expected"],
            uncertain=item["uncertain"],
        )
        for item in data
    )


def _entry_to_dict(entry):
    """One cache entry as plain data, read consistently under its lock."""
    with entry.lock:
        if entry.plan is None:
            return None
        module = AccessModule.from_plan(entry.plan, entry.query.name or "query")
        return {
            "query": _query_to_dict(entry.query),
            "plan": module.to_bytes().decode("utf-8"),
            "parameters": _space_to_list(entry.parameter_space),
            "observed": {
                name: [seen[0], seen[1]]
                for name, seen in sorted(entry.observed.items())
            },
            "hits": entry.hits,
            "reoptimizations": entry.reoptimizations,
        }


class RestoreStats:
    """What one restore pass did, for logs, tests, and metrics."""

    __slots__ = ("restored", "skipped", "decision_fallbacks", "errors")

    def __init__(self):
        self.restored = 0
        #: Entries already present in the target partition (restore
        #: never clobbers a warmer-than-snapshot entry).
        self.skipped = 0
        #: Restored entries whose decision program did not re-compile
        #: (they serve through the interpreted start-up path).
        self.decision_fallbacks = 0
        #: Per-entry restore failures, as ``(query_name, message)``;
        #: one bad entry never aborts the rest of the restore.
        self.errors = []

    def to_dict(self):
        """The restore outcome as a JSON-serializable dict."""
        return {
            "restored": self.restored,
            "skipped": self.skipped,
            "decision_fallbacks": self.decision_fallbacks,
            "errors": list(self.errors),
        }

    def __repr__(self):
        return "RestoreStats(restored=%d, skipped=%d, fallbacks=%d, errors=%d)" % (
            self.restored,
            self.skipped,
            self.decision_fallbacks,
            len(self.errors),
        )


# ----------------------------------------------------------------------
# Snapshot document
# ----------------------------------------------------------------------


def _checksum(entries):
    body = json.dumps(
        {"entries": entries, "format": SNAPSHOT_FORMAT, "version": SNAPSHOT_VERSION},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def build_snapshot(tier):
    """A snapshot document for a gateway or a single service.

    ``tier`` is a :class:`~repro.service.sharding.ShardedQueryService`
    or a plain :class:`~repro.service.service.QueryService`; every
    compiled entry across its cache(s) is captured.  Entries without a
    plan (admitted but never compiled) are skipped — there is nothing
    to warm from them.
    """
    services = (
        [shard.service for shard in tier.shards]
        if hasattr(tier, "shards")
        else [tier]
    )
    entries = []
    for service in services:
        for entry in service.cache.entries():
            data = _entry_to_dict(entry)
            if data is not None:
                entries.append(data)
    entries.sort(key=lambda item: json.dumps(item, sort_keys=True))
    return {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "entries": entries,
        "checksum": _checksum(entries),
    }


def write_snapshot(path, snapshot):
    """Atomically persist a snapshot document: write-temp, fsync, rename.

    ``os.replace`` is atomic on POSIX, so a concurrent reader (or a
    crash mid-write) sees either the previous complete snapshot or the
    new complete snapshot — never a prefix.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    payload = json.dumps(snapshot, sort_keys=True, indent=1)
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except OSError:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return path


def read_snapshot(path):
    """Load and validate a snapshot document; typed errors on refusal."""
    path = os.fspath(path)
    try:
        with open(path, encoding="utf-8") as handle:
            raw = handle.read()
    except OSError as error:
        raise SnapshotError(
            "cannot read snapshot %s: %s" % (path, error), reason="unreadable"
        ) from error
    try:
        snapshot = json.loads(raw)
    except ValueError as error:
        raise SnapshotCorruptError(
            "snapshot %s is not valid JSON: %s" % (path, error),
            reason="bad_json",
        ) from error
    if not isinstance(snapshot, dict):
        raise SnapshotCorruptError(
            "snapshot %s is not a JSON object" % path, reason="bad_json"
        )
    found = (snapshot.get("format"), snapshot.get("version"))
    supported = (SNAPSHOT_FORMAT, SNAPSHOT_VERSION)
    if found != supported:
        raise SnapshotVersionError(
            "snapshot %s has format/version %r; this build reads %r"
            % (path, found, supported),
            found=found,
            supported=supported,
            reason="version_mismatch",
        )
    entries = snapshot.get("entries")
    if not isinstance(entries, list):
        raise SnapshotCorruptError(
            "snapshot %s has no entry list" % path, reason="missing_entries"
        )
    if snapshot.get("checksum") != _checksum(entries):
        raise SnapshotCorruptError(
            "snapshot %s failed its checksum — refusing to restore" % path,
            reason="checksum_mismatch",
        )
    return snapshot


# ----------------------------------------------------------------------
# Restore
# ----------------------------------------------------------------------


def _restore_entry(service, data):
    """Rebuild one entry inside ``service``'s cache partition.

    Returns ``("restored", decision_fell_back)`` or ``("skipped",
    False)`` when the partition already holds the signature.
    """
    query = _query_from_dict(data["query"])
    signature = canonical_signature(query)
    entry, created = service.cache.seed_entry(signature, query)
    if not created:
        return "skipped", False
    space = _space_from_list(data["parameters"])
    plan = AccessModule.from_bytes(data["plan"].encode("utf-8")).materialize()
    decision = None
    fell_back = False
    if service.compiled:
        try:
            decision = CompiledDecision(plan, service.catalog, space)
        except DecisionCompilationError:
            fell_back = True
    pipelines = None
    if service.compile_pipelines or service.execution_mode == "compiled":
        from repro.executor.compiled import CompiledPlanProgram

        pipelines = CompiledPlanProgram().precompile(plan)
    with entry.lock:
        entry.install(plan, space, decision, pipelines)
        entry.observed = {
            name: (seen[0], seen[1])
            for name, seen in data.get("observed", {}).items()
        }
        entry.hits = int(data.get("hits", 0))
        entry.reoptimizations = int(data.get("reoptimizations", 0))
    return "restored", fell_back


def _restore_entries(service, entries, stats):
    for data in entries:
        try:
            outcome, fell_back = _restore_entry(service, data)
        except Exception as error:  # noqa: BLE001 — one bad entry must
            # not cold-start the whole tier; the rest still restore.
            name = None
            try:
                name = data["query"]["name"]
            except (KeyError, TypeError):
                pass
            stats.errors.append((name, str(error)))
            continue
        if outcome == "restored":
            stats.restored += 1
            if fell_back:
                stats.decision_fallbacks += 1
        else:
            stats.skipped += 1


def restore_service(service, snapshot):
    """Warm one :class:`QueryService`'s cache from a snapshot document."""
    stats = RestoreStats()
    _restore_entries(service, snapshot["entries"], stats)
    return stats


def restore_gateway(gateway, snapshot, only_shard=None):
    """Warm a sharded gateway from a snapshot document.

    Each entry's canonical signature is recomputed from the restored
    query spec and routed with the gateway's own hash — the snapshot
    carries no shard indexes, so it restores correctly into a gateway
    with a *different* shard count.  ``only_shard`` restricts the
    restore to one shard index (the supervisor's restart-re-warm
    path).
    """
    from repro.service.sharding import shard_index_for

    stats = RestoreStats()
    shard_count = len(gateway.shards)
    by_shard = [[] for _ in range(shard_count)]
    for data in snapshot["entries"]:
        try:
            query = _query_from_dict(data["query"])
            index = shard_index_for(canonical_signature(query), shard_count)
        except Exception as error:  # noqa: BLE001 — see _restore_entries
            name = None
            try:
                name = data["query"]["name"]
            except (KeyError, TypeError):
                pass
            stats.errors.append((name, str(error)))
            continue
        by_shard[index].append(data)
    for index, entries in enumerate(by_shard):
        if only_shard is not None and index != only_shard:
            continue
        _restore_entries(gateway.shards[index].service, entries, stats)
    return stats


class DurabilityConfig:
    """How a gateway persists and restores its plan-cache state.

    Parameters
    ----------
    path:
        Snapshot file location.
    snapshot_every:
        Write a snapshot after every N *completed* requests (count-
        based rather than timer-based, so snapshot points are
        deterministic under replay).  ``None`` disables periodic
        snapshotting; the on-shutdown snapshot still runs.
    restore_on_start:
        Warm-restore at gateway construction when ``path`` exists.  A
        corrupt or version-mismatched snapshot is counted and skipped
        — a bad file must degrade to a cold start, never a crash.
    restore_on_restart:
        Re-warm a restarted shard's partition from the last snapshot
        on disk (the supervisor's crash-recovery path).
    snapshot_on_shutdown:
        Write a final snapshot from :meth:`ShardedQueryService.shutdown`.
    """

    def __init__(self, path, snapshot_every=None, restore_on_start=True,
                 restore_on_restart=True, snapshot_on_shutdown=True):
        self.path = os.fspath(path)
        if snapshot_every is not None and int(snapshot_every) < 1:
            raise SnapshotError(
                "snapshot_every must be at least 1 request",
                reason="bad_config",
            )
        self.snapshot_every = (
            int(snapshot_every) if snapshot_every is not None else None
        )
        self.restore_on_start = bool(restore_on_start)
        self.restore_on_restart = bool(restore_on_restart)
        self.snapshot_on_shutdown = bool(snapshot_on_shutdown)

    @classmethod
    def coerce(cls, value):
        """``None``, a path, or a config — normalized to config-or-None."""
        if value is None or isinstance(value, cls):
            return value
        return cls(value)

    def __repr__(self):
        return "DurabilityConfig(%r, every=%r, restore=%s/%s)" % (
            self.path,
            self.snapshot_every,
            self.restore_on_start,
            self.restore_on_restart,
        )
