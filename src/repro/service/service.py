"""The long-lived query service: cached plans, concurrent start-up.

:class:`QueryService` fronts the optimizer and executor with the
paper's embedded-SQL amortization: the *first* invocation of a query
pays full dynamic-plan optimization; every later invocation finds the
compiled plan in the LRU cache and pays only the choose-plan start-up
decision under its fresh bindings, then (optionally) executes the
chosen static plan.

Concurrency model:

* start-up decisions (:func:`~repro.executor.startup.activate_plan`)
  are re-entrant over a shared plan DAG, so any number of pool threads
  resolve the same cached plan simultaneously without locking;
* plan *compilation* and staleness-driven re-optimization mutate the
  cache entry and therefore run under the per-entry lock
  (single-flight: a burst of first requests optimizes once);
* actual data execution mutates the shared database's I/O counters,
  so it is serialized by a database lock — the measured quantity of
  this subsystem is start-up cost, which stays fully concurrent.

Determinism: the service itself draws no randomness.  Workload
generation and replay derive every stream from explicit seeds via
:mod:`repro.common.rng`, and requests are generated *before* they are
submitted to the pool, so thread scheduling cannot perturb any RNG
stream (see :mod:`repro.workloads.service`).
"""

import logging
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.common.errors import (
    ExecutionError,
    MemoryDropError,
    OptimizationError,
    PermanentIOError,
    QueryTimeoutError,
    ReproError,
    ServiceExecutionError,
    TransientIOError,
)
from repro.common.stats import percentile
from repro.cost.parameters import MEMORY_PARAMETER
from repro.executor.engine import EXECUTION_MODES, execute_plan
from repro.executor.midquery import (
    IncrementalDecider,
    ReoptPolicy,
    execute_midquery,
    startup_report_from_outcome,
)
from repro.executor.startup import activate_plan
from repro.resilience.deadline import Deadline
from repro.resilience.policy import ResiliencePolicy
from repro.service.cache import PlanCache
from repro.service.decision import CompiledDecision, DecisionCompilationError

__all__ = [
    "QueryService",
    "ServiceRequest",
    "ServiceResult",
    "ServiceStatistics",
    "percentile",
]

logger = logging.getLogger(__name__)


def _coerce_reopt(policy):
    """None / spec string / ReoptPolicy -> optional ReoptPolicy."""
    if policy is None or isinstance(policy, ReoptPolicy):
        return policy
    return ReoptPolicy.parse(policy)

#: Resilience outcome counters the service always tracks (the metrics
#: registry mirrors them when one is attached).
RESILIENCE_COUNTERS = (
    "transient_retries",
    "permanent_failures",
    "timeouts",
    "degradations",
    "fallback_activations",
    "breaker_trips",
    "breaker_short_circuits",
    "decision_fallbacks",
    "midquery_checkpoints",
    "midquery_redecisions",
    "midquery_switches",
    "incremental_redecisions",
)


class ServiceRequest:
    """One invocation: a query plus its start-up bindings."""

    __slots__ = (
        "query",
        "bindings",
        "execute",
        "tag",
        "execution_mode",
        "deadline_seconds",
        "reopt_policy",
        "tenant",
    )

    def __init__(
        self,
        query,
        bindings,
        execute=None,
        tag=None,
        execution_mode=None,
        deadline_seconds=None,
        reopt_policy=None,
        tenant=None,
    ):
        self.query = query
        self.bindings = bindings
        #: None inherits the service default; True/False overrides it.
        self.execute = execute
        self.tag = tag
        #: None inherits the service default; ``"row"``/``"batch"``/
        #: ``"compiled"`` overrides it for this invocation alone.
        self.execution_mode = execution_mode
        #: Per-request deadline in seconds; None inherits the
        #: resilience policy's service-wide default.
        self.deadline_seconds = deadline_seconds
        #: Per-request mid-query re-optimization policy
        #: (:class:`~repro.executor.midquery.ReoptPolicy`, or a spec
        #: string for :meth:`ReoptPolicy.parse`); None inherits the
        #: service default.
        self.reopt_policy = reopt_policy
        #: Tenant identity for the sharded gateway's per-tenant quotas
        #: (:mod:`repro.service.sharding`); ``None`` means unattributed
        #: traffic, which is never quota limited.  The single-lock
        #: service carries it through untouched.
        self.tenant = tenant

    def __repr__(self):
        return "ServiceRequest(%s, tag=%r)" % (self.query.name, self.tag)


class ServiceResult:
    """Everything one invocation through the service produced."""

    __slots__ = (
        "digest",
        "cache_hit",
        "reoptimized",
        "chosen",
        "startup_report",
        "optimize_seconds",
        "startup_seconds",
        "execution",
        "total_seconds",
        "tag",
    )

    def __init__(
        self,
        digest,
        cache_hit,
        reoptimized,
        chosen,
        startup_report,
        optimize_seconds,
        startup_seconds,
        execution,
        total_seconds,
        tag=None,
    ):
        self.digest = digest
        self.cache_hit = cache_hit
        self.reoptimized = reoptimized
        #: The fully static plan the decision procedures chose.
        self.chosen = chosen
        self.startup_report = startup_report
        #: Wall-clock seconds spent optimizing (0.0 on a cache hit).
        self.optimize_seconds = optimize_seconds
        #: Wall-clock seconds of the start-up decision pass.
        self.startup_seconds = startup_seconds
        self.execution = execution
        self.total_seconds = total_seconds
        self.tag = tag

    @property
    def row_count(self):
        """Rows produced, or ``None`` when execution was skipped."""
        return None if self.execution is None else self.execution.row_count

    def __repr__(self):
        return "ServiceResult(%s, hit=%s, startup=%.6fs, optimize=%.6fs)" % (
            self.digest,
            self.cache_hit,
            self.startup_seconds,
            self.optimize_seconds,
        )


class ServiceStatistics:
    """Point-in-time summary of service behaviour.

    Built from one internally consistent snapshot per lock: the
    service's request/latency/resilience state is copied under a
    single ``_stats_lock`` acquisition and the cache counters under a
    single cache-lock acquisition, so the fields of one snapshot
    cohere (``hits + misses == lookups``, latency sample count equals
    the request count) and shard snapshots aggregate exactly.
    """

    __slots__ = (
        "requests",
        "cache",
        "startup_samples",
        "optimize_samples",
        "startup_p50",
        "startup_p95",
        "startup_mean",
        "optimize_mean",
        "optimize_count",
        "amortization",
        "resilience",
    )

    def __init__(
        self,
        requests,
        cache,
        startup_seconds,
        optimize_seconds,
        resilience=None,
    ):
        self.requests = requests
        #: Snapshot dict of the plan cache's counters.
        self.cache = cache
        #: Snapshot dict of the resilience outcome counters
        #: (see :data:`RESILIENCE_COUNTERS`).
        self.resilience = dict(resilience or {})
        #: Raw per-invocation latency samples, retained so several
        #: shards' statistics can be aggregated exactly (percentiles
        #: over the union, not averages of averages).
        self.startup_samples = tuple(startup_seconds)
        self.optimize_samples = tuple(optimize_seconds)
        self.startup_p50 = percentile(startup_seconds, 0.50) if startup_seconds else 0.0
        self.startup_p95 = percentile(startup_seconds, 0.95) if startup_seconds else 0.0
        self.startup_mean = (
            sum(startup_seconds) / len(startup_seconds) if startup_seconds else 0.0
        )
        self.optimize_mean = (
            sum(optimize_seconds) / len(optimize_seconds) if optimize_seconds else 0.0
        )
        self.optimize_count = len(optimize_seconds)
        #: Mean optimization cost over mean start-up cost: how many
        #: times cheaper a cached invocation is than re-optimizing.
        if self.startup_mean > 0.0 and self.optimize_mean > 0.0:
            self.amortization = self.optimize_mean / self.startup_mean
        else:
            self.amortization = 0.0

    @classmethod
    def aggregate(cls, parts):
        """Exact union of several snapshots (e.g. one per shard).

        Counters are summed, cache counters merged key by key with the
        hit rate recomputed from the merged totals, and percentiles
        recomputed over the concatenated raw samples — nothing is
        approximated, so tests can assert the aggregate equals the
        per-shard sums exactly.
        """
        parts = list(parts)
        cache = {}
        for part in parts:
            for key, value in part.cache.items():
                if key != "hit_rate":
                    cache[key] = cache.get(key, 0) + value
        cache["hit_rate"] = (
            cache["hits"] / cache["lookups"] if cache.get("lookups") else 0.0
        )
        resilience = {}
        for part in parts:
            for key, value in part.resilience.items():
                resilience[key] = resilience.get(key, 0) + value
        startup = [s for part in parts for s in part.startup_samples]
        optimize = [s for part in parts for s in part.optimize_samples]
        return cls(
            sum(part.requests for part in parts),
            cache,
            startup,
            optimize,
            resilience,
        )

    @property
    def hit_rate(self):
        """Fraction of requests served from the plan cache."""
        return self.cache["hit_rate"]

    def __repr__(self):
        return (
            "ServiceStatistics(requests=%d, hit_rate=%.2f, "
            "startup_p50=%.6fs, startup_p95=%.6fs, amortization=%.1fx)"
            % (
                self.requests,
                self.hit_rate,
                self.startup_p50,
                self.startup_p95,
                self.amortization,
            )
        )


class QueryService:
    """A thread-pooled query front end with a dynamic-plan cache.

    Parameters
    ----------
    database:
        The :class:`~repro.storage.database.Database` served; its
        catalog is the compilation context for every cached plan (one
        service instance per catalog — the cache key assumes it).
    capacity:
        LRU plan-cache capacity, in entries.
    max_workers:
        Thread-pool width for :meth:`submit` / :meth:`run_batch`.
    optimize:
        Optimizer entry point, ``optimize_dynamic`` by default.
    execute:
        Service-wide default for running the chosen plan against the
        database after the start-up decision.
    branch_and_bound:
        Forwarded to the start-up decision procedure.
    validate:
        Validate plans against the catalog when they are installed in
        the cache (the paper's [CAK81] check, once per compilation
        rather than once per start-up — catalogs here are static).
    compiled:
        Compile each cached plan's start-up decision procedure into a
        scalar evaluation program (:mod:`repro.service.decision`).
        Plans the compiler cannot handle fall back to the interpreted
        :func:`~repro.executor.startup.resolve_dynamic_plan` path,
        which makes identical decisions, just slower.
    metrics:
        Optional :class:`~repro.observability.metrics.MetricsRegistry`.
        When given, the service records request/re-optimization
        counters, start-up and optimization latency histograms, and an
        in-flight gauge, and the plan cache mirrors its hit/miss
        counters into the same registry.  ``None`` (the default) keeps
        the hot path free of instrument updates.
    tracer:
        Optional :class:`~repro.observability.trace.Tracer` forwarded
        to plan execution, recording per-operator spans.  ``None``
        costs one ``is None`` test per iterator open.
    execution_mode:
        Service-wide default engine for plan execution: ``"row"``
        (record-at-a-time Volcano iterators, the default),
        ``"batch"`` (the vectorized executor), or ``"compiled"``
        (fused generated pipelines, :mod:`repro.executor.compiled`).
        Individual requests override it via
        :attr:`ServiceRequest.execution_mode`.
    batch_size:
        Records per batch in ``"batch"``/``"compiled"`` mode; ``None``
        uses the engine default.
    compile_pipelines:
        Accelerate ``"row"``/``"batch"`` execution through the fused
        pipeline compiler while keeping the declared mode's observable
        semantics.  ``"compiled"`` mode implies it.  Either way the
        generated code is cached on the plan-cache entry next to the
        compiled start-up decision program and invalidated with it.
    resilience:
        A :class:`~repro.resilience.policy.ResiliencePolicy` bundling
        the transient-fault retry policy, the optional per-signature
        circuit breaker on staleness-driven re-optimization, the
        mid-run degradation budget, and the default query deadline.
        ``None`` uses the policy defaults (retries on, breaker off, no
        deadline), which leave fault-free behaviour untouched.
    reopt_policy:
        Service-wide default
        :class:`~repro.executor.midquery.ReoptPolicy` (or a spec
        string for :meth:`~repro.executor.midquery.ReoptPolicy.parse`)
        governing mid-query re-optimization at pipeline breakers.
        ``None`` (the default) disables it; individual requests
        override it per invocation.
    db_lock:
        The lock serializing data execution against ``database``.
        ``None`` (the default) creates a private lock; a sharded
        deployment passes one shared lock so every shard's executions
        serialize against the same database exactly like a single
        service would (see :mod:`repro.service.sharding`).
    """

    def __init__(
        self,
        database,
        capacity=64,
        max_workers=8,
        optimize=None,
        execute=True,
        branch_and_bound=False,
        validate=False,
        compiled=True,
        metrics=None,
        tracer=None,
        execution_mode="row",
        batch_size=None,
        compile_pipelines=False,
        resilience=None,
        reopt_policy=None,
        db_lock=None,
    ):
        if optimize is None:
            from repro.optimizer.optimizer import optimize_dynamic

            optimize = optimize_dynamic
        if execution_mode not in EXECUTION_MODES:
            raise ExecutionError(
                "execution_mode must be one of %r, got %r"
                % (EXECUTION_MODES, execution_mode)
            )
        self.database = database
        self.catalog = database.catalog
        self.cache = PlanCache(capacity, metrics=metrics)
        self.default_execute = bool(execute)
        self.execution_mode = execution_mode
        self.batch_size = batch_size
        self.compile_pipelines = bool(compile_pipelines)
        self.branch_and_bound = bool(branch_and_bound)
        self.validate = bool(validate)
        self.compiled = bool(compiled)
        self.metrics = metrics
        self.tracer = tracer
        self.resilience = resilience if resilience is not None else ResiliencePolicy()
        self.reopt_policy = _coerce_reopt(reopt_policy)
        self._optimize = optimize
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-service"
        )
        self._db_lock = db_lock if db_lock is not None else threading.Lock()
        self._stats_lock = threading.Lock()
        self._startup_seconds = []
        self._optimize_seconds = []
        self._requests = 0
        self._resilience_counts = {name: 0 for name in RESILIENCE_COUNTERS}
        #: One token per in-flight request; list append/pop are atomic
        #: under the GIL, so ``len`` is an exact lock-free gauge.
        self._inflight_tokens = []
        if metrics is not None:
            metrics.counter(
                "service_requests_total",
                "Invocations served",
                callback=self._request_count,
            )
            self._m_reoptimizations = metrics.counter(
                "service_reoptimizations_total",
                "Staleness-driven in-place re-optimizations",
            )
            self._m_rows = metrics.counter(
                "service_execution_rows_total", "Result rows produced"
            )
            self._m_startup = metrics.histogram(
                "service_startup_seconds",
                "Start-up decision latency per invocation",
            )
            self._m_optimize = metrics.histogram(
                "service_optimize_seconds",
                "Plan compilation latency (misses and re-optimizations)",
            )
            metrics.gauge(
                "service_inflight_requests",
                "Invocations currently running",
                callback=self._inflight_tokens.__len__,
            )
            self._m_resilience = {
                name: metrics.counter(
                    "service_%s_total" % name,
                    "Resilience outcome: %s" % name.replace("_", " "),
                )
                for name in RESILIENCE_COUNTERS
            }
        else:
            self._m_reoptimizations = self._m_rows = None
            self._m_startup = self._m_optimize = None
            self._m_resilience = None

    def _request_count(self):
        """Exact served-request total (pull-style metric callback)."""
        with self._stats_lock:
            return self._requests

    def _count(self, name, amount=1):
        """Bump one resilience counter (and its mirrored metric)."""
        with self._stats_lock:
            self._resilience_counts[name] += amount
        if self._m_resilience is not None:
            self._m_resilience[name].inc(amount)

    def resilience_counts(self):
        """Snapshot dict of the resilience outcome counters."""
        with self._stats_lock:
            return dict(self._resilience_counts)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def run(
        self,
        query,
        bindings,
        execute=None,
        tag=None,
        execution_mode=None,
        deadline_seconds=None,
        reopt_policy=None,
    ):
        """Serve one invocation synchronously on the calling thread.

        Library errors (:class:`~repro.common.errors.ReproError`) that
        survive the resilience machinery are wrapped in
        :class:`~repro.common.errors.ServiceExecutionError` carrying
        the request tag, query name, cache-hit state, and attempt
        count, with the original error chained as ``__cause__``.
        """
        self._inflight_tokens.append(None)
        info = {"cache_hit": None, "attempts": 0}
        try:
            return self._run(
                query,
                bindings,
                execute,
                tag,
                execution_mode,
                deadline_seconds,
                reopt_policy,
                info,
            )
        except ReproError as error:
            raise ServiceExecutionError(
                "request tag=%r query=%r failed: %s" % (tag, query.name, error),
                tag=tag,
                query_name=query.name,
                cache_hit=info["cache_hit"],
                attempts=info["attempts"],
                cause=error,
            ) from error
        finally:
            self._inflight_tokens.pop()

    def _run(
        self,
        query,
        bindings,
        execute,
        tag,
        execution_mode=None,
        deadline_seconds=None,
        reopt_policy=None,
        info=None,
    ):
        started = time.perf_counter()
        entry, cache_hit = self.cache.entry_for(query)
        if info is not None:
            info["cache_hit"] = cache_hit
        optimize_seconds, reoptimized = self._refresh(entry, cache_hit, bindings)

        plan, parameter_space, decision = entry.snapshot()
        decision_started = time.perf_counter()
        chosen, report = self._decide(decision, plan, parameter_space, bindings)
        startup_seconds = time.perf_counter() - decision_started

        execution = None
        do_execute = self.default_execute if execute is None else execute
        if do_execute:
            mode = self.execution_mode if execution_mode is None else execution_mode
            if deadline_seconds is None:
                deadline_seconds = self.resilience.deadline_seconds
            reopt = (
                self.reopt_policy
                if reopt_policy is None
                else _coerce_reopt(reopt_policy)
            )
            execution, chosen, report = self._execute_with_resilience(
                entry,
                chosen,
                report,
                decision,
                plan,
                parameter_space,
                bindings,
                mode,
                Deadline.ensure(deadline_seconds),
                reopt,
                info,
            )

        total_seconds = time.perf_counter() - started
        self._record(startup_seconds, optimize_seconds, reoptimized, execution)
        return ServiceResult(
            entry.digest,
            cache_hit and not reoptimized,
            reoptimized,
            chosen,
            report,
            optimize_seconds,
            startup_seconds,
            execution,
            total_seconds,
            tag=tag,
        )

    def _refresh(self, entry, cache_hit, bindings):
        """Make ``entry`` servable for ``bindings``; record the sight.

        Compiles a missing plan (single-flight under the entry lock),
        re-optimizes a stale one over widened bounds — subject to the
        staleness circuit breaker — and folds the bindings into the
        entry's observed ranges.  Returns ``(optimize_seconds,
        reoptimized)``.  Shared by :meth:`_run` and the sharded fast
        path (:mod:`repro.service.sharding`), so both make identical
        freshness decisions.
        """
        optimize_seconds = 0.0
        if not cache_hit:
            with entry.lock:
                if entry.plan is None:
                    optimize_seconds += self._compile(entry, entry.query)

        reoptimized = False
        breaker = self.resilience.breaker
        stale = entry.check_and_observe(bindings)
        if stale and breaker is not None and not breaker.allow(entry.digest):
            # Breaker open: serve the cached plan (still correct, its
            # choose-plans simply were not optimized for these bounds)
            # instead of paying yet another re-optimization.
            self._count("breaker_short_circuits")
            if self.tracer is not None:
                self.tracer.event(
                    "breaker_short_circuit", level="warn", digest=entry.digest
                )
            stale = []
        if stale:
            with entry.lock:
                stale = entry.stale_parameters(bindings)
                if stale:
                    widened = entry.widened_query(stale)
                    optimize_seconds += self._compile(entry, widened)
                    entry.reoptimizations += 1
                    self.cache.record_reoptimization()
                    reoptimized = True
            if reoptimized and breaker is not None:
                if breaker.record_reoptimization(entry.digest):
                    self._count("breaker_trips")
                    if self.tracer is not None:
                        self.tracer.event(
                            "breaker_trip", level="warn", digest=entry.digest
                        )
        elif breaker is not None:
            breaker.record_success(entry.digest)
        return optimize_seconds, reoptimized

    def _record(self, startup_seconds, optimize_seconds, reoptimized, execution):
        """Fold one served invocation into counters and metrics."""
        with self._stats_lock:
            self._requests += 1
            self._startup_seconds.append(startup_seconds)
            if optimize_seconds > 0.0:
                self._optimize_seconds.append(optimize_seconds)
        if self.metrics is not None:
            self._m_startup.observe(startup_seconds)
            if optimize_seconds > 0.0:
                self._m_optimize.observe(optimize_seconds)
            if reoptimized:
                self._m_reoptimizations.inc()
            if execution is not None:
                self._m_rows.inc(execution.row_count)

    def _compile(self, entry, query):
        """Optimize ``query`` into ``entry`` (entry lock held); seconds."""
        compile_started = time.perf_counter()
        result = self._optimize(self.catalog, query)
        plan = result.plan
        if self.validate:
            from repro.executor.validation import validate_plan

            plan = validate_plan(plan, self.catalog)
        decision = None
        if self.compiled:
            try:
                decision = CompiledDecision(plan, self.catalog, query.parameter_space)
            except DecisionCompilationError as error:
                # The interpreted activate_plan path makes identical
                # decisions, so this is safe — but it silently costs
                # start-up latency on every later invocation, so it is
                # counted and logged instead of swallowed.
                self._count("decision_fallbacks")
                logger.warning(
                    "decision compilation for query %r fell back to the "
                    "interpreter: %s",
                    query.name,
                    error,
                )
                if self.tracer is not None:
                    self.tracer.event(
                        "decision_compile_fallback",
                        level="warn",
                        query=query.name,
                        reason=str(error),
                    )
                decision = None
        pipelines = None
        if self.compile_pipelines or self.execution_mode == "compiled":
            from repro.executor.compiled import CompiledPlanProgram

            pipelines = CompiledPlanProgram().precompile(plan)
        entry.install(plan, query.parameter_space, decision, pipelines)
        return time.perf_counter() - compile_started

    def _pipelines_for(self, entry):
        """The entry's generated-pipeline cache, created on demand.

        Covers per-request ``"compiled"`` overrides on a service whose
        default mode never precompiles: the program is built lazily,
        attached under the entry lock, and — like the eagerly built
        one — dropped by the next ``install``.
        """
        with entry.lock:
            if entry.pipelines is None:
                from repro.executor.compiled import CompiledPlanProgram

                entry.pipelines = CompiledPlanProgram()
                if entry.plan is not None:
                    entry.pipelines.precompile(entry.plan)
            return entry.pipelines

    def _note_midquery(self, entry, mid_report):
        """Fold a mid-query report into service and entry counters."""
        if mid_report.checkpoints:
            self._count("midquery_checkpoints", mid_report.checkpoints)
        if mid_report.redecisions:
            self._count("midquery_redecisions", mid_report.redecisions)
        if mid_report.switches:
            self._count("midquery_switches", mid_report.switches)
            if self.tracer is not None:
                self.tracer.event(
                    "midquery_switch",
                    level="info",
                    digest=entry.digest,
                    switches=mid_report.switches,
                    pipelines_invalidated=mid_report.pipelines_invalidated,
                )
        with entry.lock:
            entry.midquery_redecisions += mid_report.redecisions
            entry.midquery_switches += mid_report.switches

    def _decide(self, decision, plan, parameter_space, bindings):
        """The start-up decision: compiled program or interpreted pass."""
        if decision is not None:
            return decision.choose(bindings)
        return activate_plan(
            plan,
            self.catalog,
            parameter_space,
            bindings,
            branch_and_bound=self.branch_and_bound,
            validate=False,
        )

    def _execute_with_resilience(
        self,
        entry,
        chosen,
        report,
        decision,
        plan,
        parameter_space,
        bindings,
        mode,
        deadline,
        reopt,
        info,
    ):
        """Run the chosen plan, retrying and degrading per the policy.

        * transient faults retry with exponential backoff (sleeping
          outside the database lock) up to the retry budget;
        * with an active ``reopt`` policy the run goes through
          :func:`~repro.executor.midquery.execute_midquery`: pipeline
          breakers checkpoint their results and may splice in a
          cheaper alternative mid-flight (the mid-query report rides
          on ``execution.midquery``);
        * a mid-run memory drop re-decides the choose-plans under the
          shrunk grant through the *incremental* re-decision path —
          only memo groups the memory grant can reach are re-costed —

          and restarts on the re-decided alternative; past
          ``max_degradations`` restarts the service activates the
          conservative static fallback plan instead;
        * permanent faults and deadline expiry fail fast, typed.

        Returns ``(execution, chosen, report)`` reflecting the plan
        that actually completed.
        """
        retry = self.resilience.retry
        transient_retries = 0
        degradations = 0
        use_compiled = mode == "compiled" or self.compile_pipelines
        program = self._pipelines_for(entry) if use_compiled else None
        use_midquery = reopt is not None and reopt.active
        #: Incremental decider, created on the first memory drop and
        #: kept across retries so later drops re-cost even less.
        incremental = None
        while True:
            if info is not None:
                info["attempts"] += 1
            try:
                with self._db_lock:
                    if use_midquery:
                        execution, mid_report = execute_midquery(
                            plan,
                            self.database,
                            bindings,
                            parameter_space,
                            policy=reopt,
                            tracer=self.tracer,
                            execution_mode=mode,
                            batch_size=self.batch_size,
                            deadline=deadline,
                            compile_pipelines=self.compile_pipelines,
                            compiled_program=program,
                            choices=(
                                report.choices if report is not None else None
                            ),
                        )
                    else:
                        execution = execute_plan(
                            chosen,
                            self.database,
                            bindings,
                            parameter_space,
                            tracer=self.tracer,
                            execution_mode=mode,
                            batch_size=self.batch_size,
                            deadline=deadline,
                            compile_pipelines=self.compile_pipelines,
                            compiled_program=program,
                        )
                if use_midquery:
                    execution.midquery = mid_report
                    chosen = mid_report.final_plan
                    self._note_midquery(entry, mid_report)
                return execution, chosen, report
            except TransientIOError as error:
                if transient_retries >= retry.max_retries:
                    raise
                transient_retries += 1
                self._count("transient_retries")
                if self.tracer is not None:
                    self.tracer.event(
                        "transient_retry",
                        level="warn",
                        site=error.site,
                        operation_index=error.operation_index,
                        attempt=transient_retries,
                    )
                self.resilience.sleep(
                    retry.delay(transient_retries, key=entry.digest)
                )
            except MemoryDropError as error:
                degradations += 1
                self._count("degradations")
                previous_bindings = bindings
                bindings = bindings.copy().bind(
                    MEMORY_PARAMETER, error.new_memory_pages
                )
                if self.tracer is not None:
                    self.tracer.event(
                        "memory_drop_degradation",
                        level="warn",
                        new_memory_pages=error.new_memory_pages,
                        operation_index=error.operation_index,
                        degradations=degradations,
                    )
                fallback = None
                if degradations > self.resilience.max_degradations:
                    fallback = self._fallback_plan(entry)
                if fallback is not None:
                    chosen, report = fallback, None
                    use_midquery = False
                    self._count("fallback_activations")
                    if self.tracer is not None:
                        self.tracer.event(
                            "static_fallback",
                            level="warn",
                            digest=entry.digest,
                        )
                else:
                    if incremental is None:
                        # First drop: build the decider's memo tables
                        # under the pre-drop bindings (one full pass,
                        # re-stating the start-up decision already
                        # made), so the re-decision below re-costs
                        # only the memory-sensitive memo groups
                        # instead of re-running the whole start-up
                        # decision from scratch.
                        incremental = IncrementalDecider(
                            plan,
                            self.catalog,
                            parameter_space,
                            previous_bindings,
                        )
                        incremental.decide()
                    incremental.rebind(bindings, (MEMORY_PARAMETER,))
                    outcome = incremental.decide()
                    chosen = outcome.plan
                    report = startup_report_from_outcome(
                        outcome, plan.node_count()
                    )
                    self._count("incremental_redecisions")
            except PermanentIOError as error:
                self._count("permanent_failures")
                if self.tracer is not None:
                    self.tracer.event(
                        "permanent_failure",
                        level="warn",
                        site=error.site,
                        operation_index=error.operation_index,
                    )
                raise
            except QueryTimeoutError as error:
                self._count("timeouts")
                if self.tracer is not None:
                    self.tracer.event(
                        "query_timeout",
                        level="warn",
                        deadline_seconds=error.deadline_seconds,
                        rows_produced=error.rows_produced,
                    )
                raise

    def _fallback_plan(self, entry):
        """The entry's conservative static plan, compiled once.

        Returns ``None`` when static optimization cannot produce one
        (the caller then keeps re-deciding the dynamic plan instead).
        """
        with entry.lock:
            if entry.fallback_plan is None:
                from repro.optimizer.optimizer import optimize_static

                try:
                    entry.fallback_plan = optimize_static(
                        self.catalog, entry.query
                    ).plan
                except OptimizationError:
                    return None
            return entry.fallback_plan

    def submit(
        self,
        query,
        bindings,
        execute=None,
        tag=None,
        execution_mode=None,
        deadline_seconds=None,
        reopt_policy=None,
    ):
        """Serve one invocation on the pool; returns a Future."""
        return self._pool.submit(
            self.run,
            query,
            bindings,
            execute,
            tag,
            execution_mode,
            deadline_seconds,
            reopt_policy,
        )

    def run_batch(self, requests):
        """Serve many requests concurrently, preserving request order.

        ``requests`` is an iterable of :class:`ServiceRequest`.  The
        result list aligns with the request list regardless of the
        order in which pool threads finish.
        """
        futures = [
            self.submit(
                request.query,
                request.bindings,
                request.execute,
                request.tag,
                request.execution_mode,
                request.deadline_seconds,
                request.reopt_policy,
            )
            for request in requests
        ]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------

    def stats(self):
        """A :class:`ServiceStatistics` snapshot."""
        with self._stats_lock:
            startup = list(self._startup_seconds)
            optimize = list(self._optimize_seconds)
            requests = self._requests
            resilience = dict(self._resilience_counts)
        return ServiceStatistics(
            requests,
            self.cache.stats_snapshot(),
            startup,
            optimize,
            resilience,
        )

    def shutdown(self, wait=True):
        """Stop the pool; the cache stays readable."""
        self._pool.shutdown(wait=wait)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.shutdown()
        return False

    def __repr__(self):
        return "QueryService(%d cached plans, %d requests)" % (
            len(self.cache),
            self._requests,
        )
