"""The long-lived query service: cached plans, concurrent start-up.

:class:`QueryService` fronts the optimizer and executor with the
paper's embedded-SQL amortization: the *first* invocation of a query
pays full dynamic-plan optimization; every later invocation finds the
compiled plan in the LRU cache and pays only the choose-plan start-up
decision under its fresh bindings, then (optionally) executes the
chosen static plan.

Concurrency model:

* start-up decisions (:func:`~repro.executor.startup.activate_plan`)
  are re-entrant over a shared plan DAG, so any number of pool threads
  resolve the same cached plan simultaneously without locking;
* plan *compilation* and staleness-driven re-optimization mutate the
  cache entry and therefore run under the per-entry lock
  (single-flight: a burst of first requests optimizes once);
* actual data execution mutates the shared database's I/O counters,
  so it is serialized by a database lock — the measured quantity of
  this subsystem is start-up cost, which stays fully concurrent.

Determinism: the service itself draws no randomness.  Workload
generation and replay derive every stream from explicit seeds via
:mod:`repro.common.rng`, and requests are generated *before* they are
submitted to the pool, so thread scheduling cannot perturb any RNG
stream (see :mod:`repro.workloads.service`).
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.common.errors import ExecutionError
from repro.executor.engine import EXECUTION_MODES, execute_plan
from repro.executor.startup import activate_plan
from repro.service.cache import PlanCache
from repro.service.decision import CompiledDecision, DecisionCompilationError


def percentile(values, fraction):
    """Linear-interpolation percentile of a non-empty value list."""
    if not values:
        raise ValueError("percentile of an empty list")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = fraction * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


class ServiceRequest:
    """One invocation: a query plus its start-up bindings."""

    __slots__ = ("query", "bindings", "execute", "tag", "execution_mode")

    def __init__(self, query, bindings, execute=None, tag=None, execution_mode=None):
        self.query = query
        self.bindings = bindings
        #: None inherits the service default; True/False overrides it.
        self.execute = execute
        self.tag = tag
        #: None inherits the service default; ``"row"``/``"batch"``
        #: overrides it for this invocation alone.
        self.execution_mode = execution_mode

    def __repr__(self):
        return "ServiceRequest(%s, tag=%r)" % (self.query.name, self.tag)


class ServiceResult:
    """Everything one invocation through the service produced."""

    __slots__ = (
        "digest",
        "cache_hit",
        "reoptimized",
        "chosen",
        "startup_report",
        "optimize_seconds",
        "startup_seconds",
        "execution",
        "total_seconds",
        "tag",
    )

    def __init__(
        self,
        digest,
        cache_hit,
        reoptimized,
        chosen,
        startup_report,
        optimize_seconds,
        startup_seconds,
        execution,
        total_seconds,
        tag=None,
    ):
        self.digest = digest
        self.cache_hit = cache_hit
        self.reoptimized = reoptimized
        #: The fully static plan the decision procedures chose.
        self.chosen = chosen
        self.startup_report = startup_report
        #: Wall-clock seconds spent optimizing (0.0 on a cache hit).
        self.optimize_seconds = optimize_seconds
        #: Wall-clock seconds of the start-up decision pass.
        self.startup_seconds = startup_seconds
        self.execution = execution
        self.total_seconds = total_seconds
        self.tag = tag

    @property
    def row_count(self):
        """Rows produced, or ``None`` when execution was skipped."""
        return None if self.execution is None else self.execution.row_count

    def __repr__(self):
        return "ServiceResult(%s, hit=%s, startup=%.6fs, optimize=%.6fs)" % (
            self.digest,
            self.cache_hit,
            self.startup_seconds,
            self.optimize_seconds,
        )


class ServiceStatistics:
    """Point-in-time summary of service behaviour."""

    __slots__ = (
        "requests",
        "cache",
        "startup_p50",
        "startup_p95",
        "startup_mean",
        "optimize_mean",
        "optimize_count",
        "amortization",
    )

    def __init__(self, requests, cache, startup_seconds, optimize_seconds):
        self.requests = requests
        #: Snapshot dict of the plan cache's counters.
        self.cache = cache
        self.startup_p50 = percentile(startup_seconds, 0.50) if startup_seconds else 0.0
        self.startup_p95 = percentile(startup_seconds, 0.95) if startup_seconds else 0.0
        self.startup_mean = (
            sum(startup_seconds) / len(startup_seconds) if startup_seconds else 0.0
        )
        self.optimize_mean = (
            sum(optimize_seconds) / len(optimize_seconds) if optimize_seconds else 0.0
        )
        self.optimize_count = len(optimize_seconds)
        #: Mean optimization cost over mean start-up cost: how many
        #: times cheaper a cached invocation is than re-optimizing.
        if self.startup_mean > 0.0 and self.optimize_mean > 0.0:
            self.amortization = self.optimize_mean / self.startup_mean
        else:
            self.amortization = 0.0

    @property
    def hit_rate(self):
        """Fraction of requests served from the plan cache."""
        return self.cache["hit_rate"]

    def __repr__(self):
        return (
            "ServiceStatistics(requests=%d, hit_rate=%.2f, "
            "startup_p50=%.6fs, startup_p95=%.6fs, amortization=%.1fx)"
            % (
                self.requests,
                self.hit_rate,
                self.startup_p50,
                self.startup_p95,
                self.amortization,
            )
        )


class QueryService:
    """A thread-pooled query front end with a dynamic-plan cache.

    Parameters
    ----------
    database:
        The :class:`~repro.storage.database.Database` served; its
        catalog is the compilation context for every cached plan (one
        service instance per catalog — the cache key assumes it).
    capacity:
        LRU plan-cache capacity, in entries.
    max_workers:
        Thread-pool width for :meth:`submit` / :meth:`run_batch`.
    optimize:
        Optimizer entry point, ``optimize_dynamic`` by default.
    execute:
        Service-wide default for running the chosen plan against the
        database after the start-up decision.
    branch_and_bound:
        Forwarded to the start-up decision procedure.
    validate:
        Validate plans against the catalog when they are installed in
        the cache (the paper's [CAK81] check, once per compilation
        rather than once per start-up — catalogs here are static).
    compiled:
        Compile each cached plan's start-up decision procedure into a
        scalar evaluation program (:mod:`repro.service.decision`).
        Plans the compiler cannot handle fall back to the interpreted
        :func:`~repro.executor.startup.resolve_dynamic_plan` path,
        which makes identical decisions, just slower.
    metrics:
        Optional :class:`~repro.observability.metrics.MetricsRegistry`.
        When given, the service records request/re-optimization
        counters, start-up and optimization latency histograms, and an
        in-flight gauge, and the plan cache mirrors its hit/miss
        counters into the same registry.  ``None`` (the default) keeps
        the hot path free of instrument updates.
    tracer:
        Optional :class:`~repro.observability.trace.Tracer` forwarded
        to plan execution, recording per-operator spans.  ``None``
        costs one ``is None`` test per iterator open.
    execution_mode:
        Service-wide default engine for plan execution: ``"row"``
        (record-at-a-time Volcano iterators, the default) or
        ``"batch"`` (the vectorized executor).  Individual requests
        override it via :attr:`ServiceRequest.execution_mode`.
    batch_size:
        Records per batch in ``"batch"`` mode; ``None`` uses the
        engine default.
    """

    def __init__(
        self,
        database,
        capacity=64,
        max_workers=8,
        optimize=None,
        execute=True,
        branch_and_bound=False,
        validate=False,
        compiled=True,
        metrics=None,
        tracer=None,
        execution_mode="row",
        batch_size=None,
    ):
        if optimize is None:
            from repro.optimizer.optimizer import optimize_dynamic

            optimize = optimize_dynamic
        if execution_mode not in EXECUTION_MODES:
            raise ExecutionError(
                "execution_mode must be one of %r, got %r"
                % (EXECUTION_MODES, execution_mode)
            )
        self.database = database
        self.catalog = database.catalog
        self.cache = PlanCache(capacity, metrics=metrics)
        self.default_execute = bool(execute)
        self.execution_mode = execution_mode
        self.batch_size = batch_size
        self.branch_and_bound = bool(branch_and_bound)
        self.validate = bool(validate)
        self.compiled = bool(compiled)
        self.metrics = metrics
        self.tracer = tracer
        self._optimize = optimize
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-service"
        )
        self._db_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._startup_seconds = []
        self._optimize_seconds = []
        self._requests = 0
        #: One token per in-flight request; list append/pop are atomic
        #: under the GIL, so ``len`` is an exact lock-free gauge.
        self._inflight_tokens = []
        if metrics is not None:
            metrics.counter(
                "service_requests_total",
                "Invocations served",
                callback=self._request_count,
            )
            self._m_reoptimizations = metrics.counter(
                "service_reoptimizations_total",
                "Staleness-driven in-place re-optimizations",
            )
            self._m_rows = metrics.counter(
                "service_execution_rows_total", "Result rows produced"
            )
            self._m_startup = metrics.histogram(
                "service_startup_seconds",
                "Start-up decision latency per invocation",
            )
            self._m_optimize = metrics.histogram(
                "service_optimize_seconds",
                "Plan compilation latency (misses and re-optimizations)",
            )
            metrics.gauge(
                "service_inflight_requests",
                "Invocations currently running",
                callback=self._inflight_tokens.__len__,
            )
        else:
            self._m_reoptimizations = self._m_rows = None
            self._m_startup = self._m_optimize = None

    def _request_count(self):
        """Exact served-request total (pull-style metric callback)."""
        with self._stats_lock:
            return self._requests

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def run(self, query, bindings, execute=None, tag=None, execution_mode=None):
        """Serve one invocation synchronously on the calling thread."""
        self._inflight_tokens.append(None)
        try:
            return self._run(query, bindings, execute, tag, execution_mode)
        finally:
            self._inflight_tokens.pop()

    def _run(self, query, bindings, execute, tag, execution_mode=None):
        started = time.perf_counter()
        entry, cache_hit = self.cache.entry_for(query)
        optimize_seconds = 0.0

        if not cache_hit:
            with entry.lock:
                if entry.plan is None:
                    optimize_seconds += self._compile(entry, entry.query)

        reoptimized = False
        stale = entry.stale_parameters(bindings)
        if stale:
            with entry.lock:
                stale = entry.stale_parameters(bindings)
                if stale:
                    widened = entry.widened_query(stale)
                    optimize_seconds += self._compile(entry, widened)
                    entry.reoptimizations += 1
                    self.cache.record_reoptimization()
                    reoptimized = True
        entry.observe(bindings)

        plan, parameter_space, decision = entry.snapshot()
        decision_started = time.perf_counter()
        if decision is not None:
            chosen, report = decision.choose(bindings)
        else:
            chosen, report = activate_plan(
                plan,
                self.catalog,
                parameter_space,
                bindings,
                branch_and_bound=self.branch_and_bound,
                validate=False,
            )
        startup_seconds = time.perf_counter() - decision_started

        execution = None
        do_execute = self.default_execute if execute is None else execute
        if do_execute:
            mode = self.execution_mode if execution_mode is None else execution_mode
            with self._db_lock:
                execution = execute_plan(
                    chosen,
                    self.database,
                    bindings,
                    parameter_space,
                    tracer=self.tracer,
                    execution_mode=mode,
                    batch_size=self.batch_size,
                )

        total_seconds = time.perf_counter() - started
        with self._stats_lock:
            self._requests += 1
            self._startup_seconds.append(startup_seconds)
            if optimize_seconds > 0.0:
                self._optimize_seconds.append(optimize_seconds)
        if self.metrics is not None:
            self._m_startup.observe(startup_seconds)
            if optimize_seconds > 0.0:
                self._m_optimize.observe(optimize_seconds)
            if reoptimized:
                self._m_reoptimizations.inc()
            if execution is not None:
                self._m_rows.inc(execution.row_count)
        return ServiceResult(
            entry.digest,
            cache_hit and not reoptimized,
            reoptimized,
            chosen,
            report,
            optimize_seconds,
            startup_seconds,
            execution,
            total_seconds,
            tag=tag,
        )

    def _compile(self, entry, query):
        """Optimize ``query`` into ``entry`` (entry lock held); seconds."""
        compile_started = time.perf_counter()
        result = self._optimize(self.catalog, query)
        plan = result.plan
        if self.validate:
            from repro.executor.validation import validate_plan

            plan = validate_plan(plan, self.catalog)
        decision = None
        if self.compiled:
            try:
                decision = CompiledDecision(plan, self.catalog, query.parameter_space)
            except DecisionCompilationError:
                decision = None
        entry.install(plan, query.parameter_space, decision)
        return time.perf_counter() - compile_started

    def submit(self, query, bindings, execute=None, tag=None, execution_mode=None):
        """Serve one invocation on the pool; returns a Future."""
        return self._pool.submit(
            self.run, query, bindings, execute, tag, execution_mode
        )

    def run_batch(self, requests):
        """Serve many requests concurrently, preserving request order.

        ``requests`` is an iterable of :class:`ServiceRequest`.  The
        result list aligns with the request list regardless of the
        order in which pool threads finish.
        """
        futures = [
            self.submit(
                request.query,
                request.bindings,
                request.execute,
                request.tag,
                request.execution_mode,
            )
            for request in requests
        ]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------

    def stats(self):
        """A :class:`ServiceStatistics` snapshot."""
        with self._stats_lock:
            startup = list(self._startup_seconds)
            optimize = list(self._optimize_seconds)
            requests = self._requests
        return ServiceStatistics(
            requests, self.cache.stats.snapshot(), startup, optimize
        )

    def shutdown(self, wait=True):
        """Stop the pool; the cache stays readable."""
        self._pool.shutdown(wait=wait)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.shutdown()
        return False

    def __repr__(self):
        return "QueryService(%d cached plans, %d requests)" % (
            len(self.cache),
            self._requests,
        )
