"""An LRU cache of optimized dynamic plans, keyed by query signature.

The cache stores one :class:`PlanCacheEntry` per canonical query
signature (:func:`repro.optimizer.query.canonical_signature`).  An
entry owns the compiled dynamic plan, the parameter space it was
optimized for, per-entry usage statistics, and the *covered bounds*:
the parameter intervals the plan's choose-plan alternatives were
constructed over.

Staleness (the paper's "plan becomes stale" case): a dynamic plan is
provably optimal only for bindings inside the compile-time intervals.
When an invocation's bindings drift outside the covered bounds, the
entry is re-optimized over bounds widened to include the observed
values, and the fresh plan replaces the stale one in place — under the
entry's lock, so concurrent readers never see a torn entry.

Thread safety: the cache-level lock guards only the LRU map and the
counters; plan compilation happens under the per-entry lock, so a
burst of concurrent first requests for the same query optimizes once
(single-flight) while requests for *different* queries compile in
parallel.
"""

import threading
from collections import OrderedDict

from repro.algebra.expressions import SelectionPredicate
from repro.common.intervals import Interval
from repro.cost.parameters import MEMORY_PARAMETER, Parameter
from repro.optimizer.query import QuerySpec, canonical_signature, signature_digest


class CacheStatistics:
    """Mutable counters describing cache behaviour."""

    __slots__ = ("lookups", "hits", "misses", "evictions", "invalidations")

    def __init__(self):
        self.lookups = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    @property
    def hit_rate(self):
        """Fraction of lookups that found a compiled plan."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def snapshot(self):
        """A copy of the counters as a dict.

        Reads the fields one by one, so a concurrent writer can be
        observed mid-update; callers needing an internally consistent
        view take :meth:`PlanCache.stats_snapshot`, which holds the
        cache lock across the whole copy.
        """
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }

    def __repr__(self):
        return (
            "CacheStatistics(lookups=%d, hits=%d, misses=%d, "
            "evictions=%d, invalidations=%d)"
            % (
                self.lookups,
                self.hits,
                self.misses,
                self.evictions,
                self.invalidations,
            )
        )


class PlanCacheEntry:
    """One cached dynamic plan plus its usage accounting.

    ``covered_bounds`` maps each uncertain parameter name to the
    :class:`~repro.common.intervals.Interval` the current plan was
    optimized over; ``observed`` tracks the (lo, hi) range of bindings
    actually seen, which drives the re-optimization decision and is
    reported by the service statistics.
    """

    def __init__(self, signature, query):
        self.signature = signature
        self.digest = signature_digest(signature)
        self.query = query
        self.plan = None
        #: Compiled start-up decision procedure, or None for the
        #: interpreted fallback (see :mod:`repro.service.decision`).
        self.decision = None
        #: Generated fused-pipeline cache
        #: (:class:`~repro.executor.compiled.CompiledPlanProgram`) for
        #: the installed plan, or None until compiled execution first
        #: needs it.  Invalidated together with ``decision``: every
        #: ``install`` — first compilation or staleness
        #: re-optimization — drops both.
        self.pipelines = None
        self.parameter_space = query.parameter_space
        self.covered_bounds = _covered_bounds(query.parameter_space)
        self.observed = {}
        self.hits = 0
        self.reoptimizations = 0
        #: Mid-query re-decision passes run over this plan's breakers
        #: (see :mod:`repro.executor.midquery`).
        self.midquery_redecisions = 0
        #: Mid-query passes that switched to a cheaper alternative.
        self.midquery_switches = 0
        #: Conservative static plan compiled on demand when graceful
        #: degradation exhausts its restart budget (see
        #: :mod:`repro.resilience`); ``None`` until first needed.
        self.fallback_plan = None
        #: Decision-outcome -> rebuilt static plan memo used by the
        #: sharded serving fast path: one query shape has only a few
        #: distinct choose-plan outcomes, so the chosen static plan is
        #: rebuilt once per outcome instead of once per invocation.
        #: Replaced (never mutated in place) by ``install``, so a
        #: reader holding the old dict can finish against the plan the
        #: dict was built for.
        self.chosen_memo = {}
        self.lock = threading.RLock()

    def install(self, plan, parameter_space, decision=None, pipelines=None):
        """Publish a compiled plan (call with ``self.lock`` held).

        Replaces the start-up decision program *and* the generated
        pipeline cache atomically with the plan: stale generated code
        can never outlive the plan it was generated for.
        """
        self.plan = plan
        self.decision = decision
        self.pipelines = pipelines
        self.chosen_memo = {}
        self.parameter_space = parameter_space
        self.covered_bounds = _covered_bounds(parameter_space)

    def snapshot(self):
        """Consistent ``(plan, parameter_space, decision)`` for start-up."""
        with self.lock:
            return self.plan, self.parameter_space, self.decision

    def stale_parameters(self, bindings):
        """Bound parameters falling outside the covered intervals.

        Returns a list of ``(name, value)`` pairs; an empty list means
        the cached plan's optimality argument covers these bindings.
        """
        stale = []
        with self.lock:
            for name, bounds in self.covered_bounds.items():
                if not bindings.has_parameter(name):
                    continue
                value = bindings.parameter(name)
                if not bounds.contains(value):
                    stale.append((name, value))
        return stale

    def observe(self, bindings):
        """Record the binding values of one invocation."""
        with self.lock:
            for name in self.covered_bounds:
                if not bindings.has_parameter(name):
                    continue
                value = bindings.parameter(name)
                seen = self.observed.get(name)
                if seen is None:
                    self.observed[name] = (value, value)
                else:
                    self.observed[name] = (min(seen[0], value), max(seen[1], value))

    def check_and_observe(self, bindings):
        """One-lock fusion of :meth:`stale_parameters` + :meth:`observe`.

        The serving hot path needs both on every invocation; doing
        them in one pass under one lock acquisition halves the
        per-request entry-lock traffic.  Returns the stale
        ``(name, value)`` list.  Observation is order-insensitive with
        respect to re-optimization: the observed (lo, hi) fold depends
        only on the parameter *names*, which widening preserves, so
        observing before a re-optimization records exactly what
        observing after it would.
        """
        stale = []
        with self.lock:
            observed = self.observed
            for name, bounds in self.covered_bounds.items():
                value = bindings.get_parameter(name)
                if value is None:
                    continue
                if not bounds.contains(value):
                    stale.append((name, value))
                seen = observed.get(name)
                if seen is None:
                    observed[name] = (value, value)
                elif value < seen[0] or value > seen[1]:
                    observed[name] = (
                        min(seen[0], value),
                        max(seen[1], value),
                    )
        return stale

    def widened_query(self, stale):
        """The entry's query with bounds widened to cover stale values.

        ``stale`` is the ``(name, value)`` list from
        :meth:`stale_parameters`.  Selection-selectivity parameters are
        widened on their predicates (the parameter space is rebuilt by
        the :class:`~repro.optimizer.query.QuerySpec` constructor); an
        out-of-bounds memory binding widens the memory parameter
        directly on the rebuilt space.
        """
        drift = dict(stale)
        selections = {}
        for relation_name, predicate in self.query.selections.items():
            name = predicate.selectivity_parameter
            if predicate.is_uncertain and name in drift:
                bounds = predicate.selectivity_bounds
                lower = min(bounds.lower, drift[name])
                upper = max(bounds.upper, drift[name])
                predicate = SelectionPredicate(
                    predicate.comparison,
                    selectivity_parameter=name,
                    selectivity_bounds=(lower, upper),
                    expected_selectivity=predicate.expected_selectivity,
                )
            selections[relation_name] = predicate
        widened = QuerySpec(
            self.query.relations,
            selections,
            self.query.join_predicates,
            memory_uncertain=self.query.memory_uncertain,
            name=self.query.name,
            projection=self.query.projection,
        )
        if MEMORY_PARAMETER in drift:
            memory = widened.parameter_space.get(MEMORY_PARAMETER)
            lower = min(memory.bounds.lower, drift[MEMORY_PARAMETER])
            upper = max(memory.bounds.upper, drift[MEMORY_PARAMETER])
            widened.parameter_space.add(
                Parameter(
                    MEMORY_PARAMETER,
                    (lower, upper),
                    memory.expected,
                    uncertain=memory.uncertain,
                )
            )
        return widened

    def __repr__(self):
        return "PlanCacheEntry(%s, hits=%d, reoptimizations=%d, compiled=%s)" % (
            self.digest,
            self.hits,
            self.reoptimizations,
            self.plan is not None,
        )


def _covered_bounds(parameter_space):
    """Intervals of the uncertain parameters a plan was built over."""
    bounds = {}
    for name in parameter_space.uncertain_names():
        parameter = parameter_space.get(name)
        bounds[name] = Interval(parameter.bounds.lower, parameter.bounds.upper)
    return bounds


class PlanCache:
    """Thread-safe LRU map from canonical query signature to entry.

    With a :class:`~repro.observability.metrics.MetricsRegistry` the
    cache exposes its counters as pull-style ``plan_cache_*`` metrics
    (lookups, hits, misses, evictions, invalidations, entries): the
    registry reads :class:`CacheStatistics` — already exact under the
    cache lock — at scrape time, so the lookup hot path pays nothing.
    ``metrics=None`` (the default) skips registration entirely.
    """

    def __init__(self, capacity=64, metrics=None):
        if capacity < 1:
            raise ValueError("plan cache capacity must be at least 1")
        self.capacity = int(capacity)
        self.stats = CacheStatistics()
        self._entries = OrderedDict()
        self._lock = threading.Lock()
        if metrics is not None:
            self._register_metrics(metrics)

    def _register_metrics(self, metrics):
        """Mirror the cache counters into pull-style instruments."""

        def stat(field):
            def read():
                with self._lock:
                    return getattr(self.stats, field)

            return read

        metrics.counter(
            "plan_cache_lookups_total",
            "Plan-cache lookups",
            callback=stat("lookups"),
        )
        metrics.counter(
            "plan_cache_hits_total",
            "Lookups that found a compiled plan",
            callback=stat("hits"),
        )
        metrics.counter(
            "plan_cache_misses_total",
            "Lookups without a compiled plan",
            callback=stat("misses"),
        )
        metrics.counter(
            "plan_cache_evictions_total",
            "LRU evictions",
            callback=stat("evictions"),
        )
        metrics.counter(
            "plan_cache_invalidations_total",
            "Explicit invalidations plus staleness re-optimizations",
            callback=stat("invalidations"),
        )
        metrics.gauge(
            "plan_cache_entries",
            "Entries currently cached",
            callback=self.__len__,
        )

    def entry_for(self, query):
        """Look up (or create) the entry for a query.

        Returns ``(entry, compiled)`` where ``compiled`` says whether a
        plan was already installed at lookup time — the hit/miss
        classification.  Creating an entry may evict the least recently
        used one.  The caller compiles missing plans under
        ``entry.lock`` and publishes them with ``entry.install``.
        """
        return self.entry_for_signature(canonical_signature(query), query)

    def entry_for_signature(self, signature, query):
        """:meth:`entry_for` with the canonical signature precomputed.

        The sharded gateway canonicalizes each query once to route it,
        then hands the signature down so the owning shard's lookup does
        not recompute it; hit/miss/eviction accounting and LRU order
        are identical to :meth:`entry_for`.
        """
        with self._lock:
            self.stats.lookups += 1
            entry = self._entries.get(signature)
            if entry is not None:
                self._entries.move_to_end(signature)
                compiled = entry.plan is not None
                if compiled:
                    self.stats.hits += 1
                    entry.hits += 1
                else:
                    self.stats.misses += 1
                return entry, compiled
            entry = PlanCacheEntry(signature, query)
            self._entries[signature] = entry
            self.stats.misses += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
            return entry, False

    def seed_entry(self, signature, query):
        """Insert an entry for restore, outside the lookup accounting.

        The snapshot-restore path (:mod:`repro.service.durability`)
        pre-populates the cache before any request arrives; counting
        those insertions as lookups/misses would make the hit-rate lie
        about serving behaviour, so this touches only the LRU map (and
        the eviction counter, which stays exact).  Returns ``(entry,
        created)``; an existing entry is returned untouched so restore
        never clobbers a partition that already warmed itself.
        """
        with self._lock:
            entry = self._entries.get(signature)
            if entry is not None:
                return entry, False
            entry = PlanCacheEntry(signature, query)
            self._entries[signature] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
            return entry, True

    def get(self, query):
        """The entry for a query, or ``None`` (no statistics side effects)."""
        signature = canonical_signature(query)
        with self._lock:
            return self._entries.get(signature)

    def invalidate(self, query):
        """Drop a query's entry; returns True when one was removed."""
        signature = canonical_signature(query)
        with self._lock:
            removed = self._entries.pop(signature, None) is not None
            if removed:
                self.stats.invalidations += 1
            return removed

    def record_reoptimization(self):
        """Count one staleness-driven in-place re-optimization."""
        with self._lock:
            self.stats.invalidations += 1

    def stats_snapshot(self):
        """An internally consistent counter snapshot (plus entry count).

        Unlike ``self.stats.snapshot()`` — which reads field by field
        while lookups may be updating them — this holds the cache lock
        across the whole copy, so the returned counts describe one
        instant: ``hits + misses == lookups`` always, and aggregating
        the snapshots of several shard caches loses no counts.
        """
        with self._lock:
            snapshot = self.stats.snapshot()
            snapshot["entries"] = len(self._entries)
            return snapshot

    def entries(self):
        """Entries in LRU order (least recently used first)."""
        with self._lock:
            return list(self._entries.values())

    def clear(self):
        """Remove every entry (statistics are retained)."""
        with self._lock:
            self._entries.clear()

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def __contains__(self, query):
        return self.get(query) is not None

    def __repr__(self):
        return "PlanCache(%d/%d entries, %r)" % (
            len(self),
            self.capacity,
            self.stats,
        )
