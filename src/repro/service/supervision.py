"""Shard supervision: health checks, crash/hang detection, restarts.

The sharded gateway's weak point is a shard whose worker dies or
wedges: its plan-cache partition — and every signature hashed to it —
goes dark.  The :class:`ShardSupervisor` watches each shard through
two deterministic signals and drives a small state machine:

::

    healthy ──(no progress while requests pending)──▶ suspect
    suspect ──(progress resumed)──▶ healthy
    suspect ──(still no progress)──▶ down
    any     ──(worker dead)──▶ down
    down    ──(restart: fresh service + executor + breaker)──▶ restarting
    restarting ──(optionally re-warmed from snapshot)──▶ healthy

The signals are **counters, not wall clocks**: a shard is making
progress when its completed-serve counter advanced since the last
check; it is wedged when requests are pending (or its worker reports
hanging) and the counter did not move.  Count-based detection makes
every transition reproducible under replay — the chaos harness calls
:meth:`check` at fixed request indexes and asserts the exact
transition sequence.  A background checking thread is available
(:meth:`start`) for wall-clock deployments but is off by default.

Restarting rebuilds the shard's :class:`~repro.service.service.QueryService`
from the gateway's construction recipe: a fresh plan-cache partition,
a fresh resilience policy from the gateway's factory (circuit-breaker
state never survives the worker that accumulated it), and a fresh
single-thread executor.  Requests in flight on the dead worker are
not lost: their futures resolve with
:class:`~repro.common.errors.ShardDownError` (or are cancelled), and
the gateway's done-callbacks route every one to the degraded path and
count it.  When the gateway has durable snapshots enabled, the
restarted partition is re-warmed from the last snapshot on disk.
"""

import threading

from repro.common.errors import ShardDownError

__all__ = [
    "DOWN",
    "HEALTHY",
    "RESTARTING",
    "SHARD_STATES",
    "SUSPECT",
    "ShardSupervisor",
]

HEALTHY = "healthy"
SUSPECT = "suspect"
DOWN = "down"
RESTARTING = "restarting"

#: The supervision state machine's states, in escalation order.
SHARD_STATES = (HEALTHY, SUSPECT, DOWN, RESTARTING)


class _ShardHealth:
    """Supervisor-side record for one shard (guarded by the supervisor lock)."""

    __slots__ = ("state", "last_served", "last_stalls", "strikes")

    def __init__(self, shard):
        self.state = HEALTHY
        self.last_served = shard.served
        self.last_stalls = shard.stalls
        self.strikes = 0


class ShardSupervisor:
    """Health-checks a gateway's shards and restarts dead ones.

    Parameters
    ----------
    gateway:
        The owning :class:`~repro.service.sharding.ShardedQueryService`.
    down_after:
        Consecutive no-progress checks (strikes) before a wedged shard
        is declared down.  The first strike only marks it suspect, so
        one slow check interval never triggers a restart.
    auto_restart:
        Restart a shard as soon as a check finds it down.  When off,
        the shard stays down (requests keep failing over) until
        :meth:`restart_shard` is called explicitly.
    """

    def __init__(self, gateway, down_after=2, auto_restart=True):
        self.gateway = gateway
        self.down_after = int(down_after)
        self.auto_restart = bool(auto_restart)
        self._lock = threading.Lock()
        self._health = {
            shard.index: _ShardHealth(shard) for shard in gateway.shards
        }
        self._counts = {"checks": 0, "suspects": 0, "downs": 0, "restarts": 0}
        #: Every state transition, as ``(shard, from, to)`` — a
        #: deterministic audit trail the chaos report embeds.
        self.transitions = []
        self._thread = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def state(self, index):
        """The supervision state of shard ``index``."""
        with self._lock:
            return self._health[index].state

    def states(self):
        """``{shard index: state}`` snapshot."""
        with self._lock:
            return {index: health.state for index, health in self._health.items()}

    def counts(self):
        """Snapshot of the supervision counters."""
        with self._lock:
            return dict(self._counts)

    def is_servable(self, shard):
        """Whether the gateway may route new work at this shard.

        Suspect shards still serve — suspicion is a grace period, not
        an outage — so only down/restarting shards (or a dead worker
        the checker has not seen yet) are routed around.
        """
        if not shard.alive:
            return False
        with self._lock:
            return self._health[shard.index].state not in (DOWN, RESTARTING)

    # ------------------------------------------------------------------
    # Checking
    # ------------------------------------------------------------------

    def _transition(self, shard, health, new_state):
        if health.state == new_state:
            return
        self.transitions.append((shard.index, health.state, new_state))
        health.state = new_state
        if new_state == SUSPECT:
            self._counts["suspects"] += 1
        elif new_state == DOWN:
            self._counts["downs"] += 1

    def check(self):
        """One supervision sweep; returns the transitions it caused.

        Deterministic given the shard counters it reads: the chaos
        harness calls this at fixed points in a replay and asserts the
        exact resulting transition sequence.
        """
        to_restart = []
        sweep = []
        with self._lock:
            self._counts["checks"] += 1
            for shard in self.gateway.shards:
                health = self._health[shard.index]
                before = len(self.transitions)
                served = shard.served
                stalls = shard.stalls
                if not shard.alive:
                    self._transition(shard, health, DOWN)
                elif shard.hanging or (
                    shard.pending > 0 and served == health.last_served
                ):
                    health.strikes += 1
                    if health.strikes >= self.down_after:
                        self._transition(shard, health, DOWN)
                    else:
                        self._transition(shard, health, SUSPECT)
                elif stalls > health.last_stalls:
                    # Progressing, but the shard reported slow serves:
                    # suspect without escalating toward restart.
                    health.strikes = 0
                    self._transition(shard, health, SUSPECT)
                else:
                    health.strikes = 0
                    self._transition(shard, health, HEALTHY)
                health.last_served = served
                health.last_stalls = stalls
                if health.state == DOWN and self.auto_restart:
                    to_restart.append(shard)
                sweep.extend(self.transitions[before:])
        for shard in to_restart:
            with self._lock:
                before = len(self.transitions)
            self.restart_shard(shard)
            with self._lock:
                sweep.extend(self.transitions[before:])
        return sweep

    # ------------------------------------------------------------------
    # Restart
    # ------------------------------------------------------------------

    def restart_shard(self, shard):
        """Rebuild one shard: fresh service, executor, breaker state.

        Safe to call on a shard in any state (an operator can force a
        restart of a merely suspect shard).  In-flight work on the old
        worker resolves as :class:`ShardDownError`/cancellation and is
        failed over by the gateway's completion callbacks — restart
        never drops a request on the floor.
        """
        with self._lock:
            health = self._health[shard.index]
            self._transition(shard, health, RESTARTING)
            self._counts["restarts"] += 1
        self.gateway._rebuild_shard(shard)
        with self._lock:
            health = self._health[shard.index]
            health.strikes = 0
            health.last_served = shard.served
            health.last_stalls = shard.stalls
            self.transitions.append((shard.index, RESTARTING, HEALTHY))
            health.state = HEALTHY

    def down_error(self, shard, signature=None):
        """The typed error for a request hitting a non-servable shard."""
        return ShardDownError(
            "shard %d is not serving (worker %s)"
            % (shard.index, "dead" if not shard.alive else "restarting"),
            shard=shard.index,
            signature=signature,
            reason="crashed" if not shard.alive else "restarting",
        )

    # ------------------------------------------------------------------
    # Optional wall-clock checking thread
    # ------------------------------------------------------------------

    def start(self, interval_seconds=1.0):
        """Run :meth:`check` every ``interval_seconds`` in the background.

        For wall-clock deployments; tests and the chaos harness call
        :meth:`check` explicitly instead, keeping every transition
        deterministic.
        """
        if self._thread is not None:
            return
        self._stop.clear()

        def loop():
            while not self._stop.wait(interval_seconds):
                self.check()

        self._thread = threading.Thread(
            target=loop, name="repro-shard-supervisor", daemon=True
        )
        self._thread.start()

    def stop(self):
        """Stop the background checking thread, if running."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None

    def __repr__(self):
        with self._lock:
            return "ShardSupervisor(%d shards, %r)" % (
                len(self._health),
                dict(self._counts),
            )
