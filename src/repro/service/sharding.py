"""A sharded serving tier: partitioned plan cache behind one gateway.

The single :class:`~repro.service.service.QueryService` of PR 2 puts
every request through one plan cache guarded by one lock and one
thread pool — fine for a benchmark harness, a bottleneck for the
ROADMAP's "heavy traffic from millions of users" regime.  This module
scales that front end out without changing what any single request
observes:

* :class:`ShardedQueryService` (the **gateway**) canonicalizes each
  query once, hashes its signature digest, and routes the request to
  one of N :class:`ServiceShard`\\ s.  Routing is pure function of the
  canonical signature, so every invocation of one query shape lands on
  the same shard and the optimize-once/execute-many amortization is
  preserved per partition.
* each **shard** owns a full :class:`~repro.service.service.QueryService`
  — its own :class:`~repro.service.cache.PlanCache` partition with its
  own lock, its own worker thread, and its own staleness/circuit-
  breaker state — so requests for *different* signatures never
  serialize on a shared cache lock.  Shards share one database lock,
  so data execution is serialized exactly as in a single service.
* **admission control**: each shard's queue is bounded; when it is
  full — or the requesting tenant is at its in-flight quota — the
  gateway fast-rejects at submit time with a typed
  :class:`~repro.common.errors.ServiceOverloadError` instead of
  letting queues grow without bound.  Rejections are counted per
  reason and mirrored into metrics.
* **exact statistics**: :meth:`ShardedQueryService.stats` aggregates
  the per-shard :class:`~repro.service.service.ServiceStatistics`
  snapshots with :meth:`ServiceStatistics.aggregate` — counters
  summed, percentiles recomputed over the union of raw samples — so
  the gateway view loses no counts, and per-shard pending/cache-size
  gauges are exported when a metrics registry is attached.

The serving fast path (:meth:`ServiceShard.serve`) is the perf story:
compared with ``QueryService.run`` it skips the per-request canonical-
signature recomputation (the gateway routes with it, then hands it
down), reuses the entry's decision-outcome memo so the chosen static
plan is *rebuilt* once per distinct outcome instead of once per
invocation (:meth:`~repro.service.decision.CompiledDecision.choose_memoized`),
and processes batched traffic in per-shard chunks so the pool pays one
future per shard instead of one per request.  Freshness handling —
plan compilation, staleness re-optimization, circuit breaking, bounds
observation — is the *same code* (``QueryService._refresh``), so the
fast path makes bit-identical decisions to the single-lock service;
the differential test suite asserts exactly that.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.common.errors import (
    ReproError,
    ServiceExecutionError,
    ServiceOverloadError,
)
from repro.executor.startup import activate_plan
from repro.optimizer.query import canonical_signature, signature_digest
from repro.resilience.deadline import Deadline
from repro.service.service import (
    QueryService,
    ServiceRequest,
    ServiceResult,
    ServiceStatistics,
    _coerce_reopt,
)

__all__ = [
    "ServiceShard",
    "ShardedQueryService",
    "ShardedServiceStatistics",
    "shard_index_for",
]

#: Overload rejection reasons (keys of the gateway's rejection counters).
OVERLOAD_REASONS = ("shard_queue_full", "tenant_quota")

#: Routing-memo size bound: the gateway caches (signature, shard) per
#: query *object*; past this many distinct objects the memo is cleared
#: (workloads reuse a handful of query objects, so this never triggers
#: in practice — it only bounds pathological callers).
_ROUTE_MEMO_LIMIT = 4096


def shard_index_for(signature, shard_count):
    """The shard owning ``signature``: digest hash modulo shard count.

    Deterministic across processes (the digest is SHA-256-derived, not
    ``hash()``), so replaying a workload always routes identically.
    """
    return int(signature_digest(signature), 16) % shard_count


class ServiceShard:
    """One partition: a private plan cache, worker, and breaker state.

    Wraps a dedicated :class:`~repro.service.service.QueryService` (its
    cache *is* the partition) plus a single-thread executor and a
    bounded pending-queue counter.  The shard never sees a query whose
    signature hashes elsewhere, so its cache lock is contended only by
    requests for signatures it owns.
    """

    def __init__(self, index, service, max_pending):
        self.index = index
        self.service = service
        self.max_pending = int(max_pending)
        self._pending = 0
        self._pending_lock = threading.Lock()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-shard-%d" % index
        )

    @property
    def pending(self):
        """Requests admitted but not yet completed (exact gauge)."""
        with self._pending_lock:
            return self._pending

    def try_admit(self, amount=1):
        """Reserve queue slots or fast-reject; never blocks.

        Raises :class:`ServiceOverloadError` (``reason=
        "shard_queue_full"``) when the reservation would push the
        pending count past ``max_pending``.
        """
        with self._pending_lock:
            if self._pending + amount > self.max_pending:
                raise ServiceOverloadError(
                    "shard %d queue full (%d pending, limit %d)"
                    % (self.index, self._pending, self.max_pending),
                    reason="shard_queue_full",
                    shard=self.index,
                    pending=self._pending,
                    limit=self.max_pending,
                )
            self._pending += amount

    def reserve(self, amount):
        """Reserve queue slots *without* the admission bound.

        The batched-replay path: the caller already holds the whole
        batch, so the queue cannot grow unboundedly — the reservation
        only keeps the pending gauge honest while the chunk runs.
        """
        with self._pending_lock:
            self._pending += amount

    def release(self, amount=1):
        """Return queue slots reserved by :meth:`try_admit`/:meth:`reserve`."""
        with self._pending_lock:
            self._pending -= amount

    def serve(self, signature, request):
        """Serve one routed request on the calling thread (fast path).

        Semantically :meth:`QueryService.run` with the signature
        precomputed: identical cache accounting
        (:meth:`~repro.service.cache.PlanCache.entry_for_signature`),
        identical freshness/breaker handling (``_refresh``), identical
        execution resilience, identical error wrapping — minus the
        per-request signature canonicalization and, via the entry's
        decision-outcome memo, minus the per-request chosen-plan
        rebuild.
        """
        svc = self.service
        svc._inflight_tokens.append(None)
        info = {"cache_hit": None, "attempts": 0}
        try:
            return self._serve(signature, request, info)
        except ReproError as error:
            raise ServiceExecutionError(
                "request tag=%r query=%r failed: %s"
                % (request.tag, request.query.name, error),
                tag=request.tag,
                query_name=request.query.name,
                cache_hit=info["cache_hit"],
                attempts=info["attempts"],
                cause=error,
            ) from error
        finally:
            svc._inflight_tokens.pop()

    def _serve(self, signature, request, info):
        svc = self.service
        started = time.perf_counter()
        entry, cache_hit = svc.cache.entry_for_signature(signature, request.query)
        info["cache_hit"] = cache_hit
        optimize_seconds, reoptimized = svc._refresh(
            entry, cache_hit, request.bindings
        )

        with entry.lock:
            plan = entry.plan
            parameter_space = entry.parameter_space
            decision = entry.decision
            memo = entry.chosen_memo
        decision_started = time.perf_counter()
        if decision is not None:
            chosen, report = decision.choose_memoized(request.bindings, memo)
        else:
            chosen, report = activate_plan(
                plan,
                svc.catalog,
                parameter_space,
                request.bindings,
                branch_and_bound=svc.branch_and_bound,
                validate=False,
            )
        startup_seconds = time.perf_counter() - decision_started

        execution = None
        do_execute = (
            svc.default_execute if request.execute is None else request.execute
        )
        if do_execute:
            mode = (
                svc.execution_mode
                if request.execution_mode is None
                else request.execution_mode
            )
            deadline_seconds = request.deadline_seconds
            if deadline_seconds is None:
                deadline_seconds = svc.resilience.deadline_seconds
            reopt = (
                svc.reopt_policy
                if request.reopt_policy is None
                else _coerce_reopt(request.reopt_policy)
            )
            execution, chosen, report = svc._execute_with_resilience(
                entry,
                chosen,
                report,
                decision,
                plan,
                parameter_space,
                request.bindings,
                mode,
                Deadline.ensure(deadline_seconds),
                reopt,
                info,
            )

        total_seconds = time.perf_counter() - started
        svc._record(startup_seconds, optimize_seconds, reoptimized, execution)
        return ServiceResult(
            entry.digest,
            cache_hit and not reoptimized,
            reoptimized,
            chosen,
            report,
            optimize_seconds,
            startup_seconds,
            execution,
            total_seconds,
            tag=request.tag,
        )

    def submit(self, signature, request, on_done):
        """Queue one admitted request on the shard worker."""

        def task():
            try:
                return self.serve(signature, request)
            finally:
                on_done()

        return self._executor.submit(task)

    def serve_chunk(self, chunk):
        """Serve ``[(index, signature, request), ...]`` on the worker.

        The batched-replay path: one pool future covers the whole
        chunk, and the tight loop keeps each request's cost at the
        fast-path floor.  Returns ``[(index, outcome, is_error)]`` so
        the gateway can reassemble results in request order and
        re-raise the earliest failure exactly like
        :meth:`QueryService.run_batch` does.
        """
        outcomes = []
        serve = self.serve
        for index, signature, request in chunk:
            try:
                outcomes.append((index, serve(signature, request), False))
            except Exception as error:  # re-raised in request order
                outcomes.append((index, error, True))
        return outcomes

    def shutdown(self, wait=True):
        """Stop the shard worker and its wrapped service."""
        self._executor.shutdown(wait=wait)
        self.service.shutdown(wait=wait)

    def __repr__(self):
        return "ServiceShard(%d, pending=%d, %d cached plans)" % (
            self.index,
            self.pending,
            len(self.service.cache),
        )


class ShardedServiceStatistics:
    """Gateway statistics: exact aggregate plus the per-shard parts.

    ``total`` is :meth:`ServiceStatistics.aggregate` over the shard
    snapshots — counters summed, hit rate and percentiles recomputed
    from merged raw state, nothing approximated — and ``per_shard``
    keeps the individual snapshots for skew inspection.  ``overload``
    counts gateway fast-rejections by reason; rejected requests never
    reach a shard, so they appear *only* here (total requests served
    plus rejections equals requests submitted).
    """

    __slots__ = ("total", "per_shard", "overload")

    def __init__(self, per_shard, overload):
        self.per_shard = tuple(per_shard)
        self.total = ServiceStatistics.aggregate(self.per_shard)
        self.overload = dict(overload)

    @property
    def requests(self):
        return self.total.requests

    @property
    def hit_rate(self):
        return self.total.hit_rate

    @property
    def rejections(self):
        """Total overload fast-rejections across all reasons."""
        return sum(self.overload.values())

    def __repr__(self):
        return (
            "ShardedServiceStatistics(%d shards, requests=%d, "
            "hit_rate=%.2f, rejections=%d)"
            % (
                len(self.per_shard),
                self.total.requests,
                self.total.hit_rate,
                self.rejections,
            )
        )


class ShardedQueryService:
    """Gateway over N service shards partitioning the plan cache.

    Parameters
    ----------
    database:
        The shared :class:`~repro.storage.database.Database`.  All
        shards execute against it under one shared lock, so I/O
        accounting matches a single-lock service exactly.
    shards:
        Number of partitions.  Each shard is a full
        :class:`~repro.service.service.QueryService` with its own
        cache, lock, worker thread, and breaker state.
    capacity:
        Plan-cache capacity *per shard*, in entries.
    max_pending:
        Admission bound per shard: requests admitted (via
        :meth:`submit`) beyond this many in flight on one shard are
        fast-rejected with
        :class:`~repro.common.errors.ServiceOverloadError`
        (``reason="shard_queue_full"``).
    tenant_quota:
        Default per-tenant in-flight quota, or ``None`` for no tenant
        limiting.  Requests carrying ``tenant=None`` are never quota
        limited.
    tenant_quotas:
        Optional dict of per-tenant overrides of ``tenant_quota``.
    resilience_factory:
        Zero-argument callable producing one
        :class:`~repro.resilience.policy.ResiliencePolicy` *per shard*
        — policies hold mutable circuit-breaker state, so shards must
        not share one instance.  ``None`` gives each shard the policy
        defaults.
    metrics:
        Optional registry.  The gateway registers its own overload
        counters and per-shard gauges (``service_shard<i>_pending``,
        ``service_shard<i>_cache_entries``); shards are created
        *without* a registry — their exact counters are aggregated by
        :meth:`stats` instead, which avoids N-way metric-name
        collisions in a registry that has no label dimension.

    Remaining keyword arguments (``execute``, ``execution_mode``,
    ``batch_size``, ``compile_pipelines``, ``compiled``,
    ``branch_and_bound``, ``validate``, ``optimize``, ``tracer``,
    ``reopt_policy``) are forwarded to every shard's ``QueryService``
    unchanged.
    """

    def __init__(
        self,
        database,
        shards=8,
        capacity=64,
        max_pending=256,
        tenant_quota=None,
        tenant_quotas=None,
        resilience_factory=None,
        metrics=None,
        **service_kwargs,
    ):
        if shards < 1:
            raise ValueError("shard count must be at least 1")
        self.database = database
        self.metrics = metrics
        self.tenant_quota = tenant_quota
        self.tenant_quotas = dict(tenant_quotas or {})
        #: One lock serializing all shards' data execution against the
        #: shared database — identical serialization to one service.
        self._db_lock = threading.Lock()
        self.shards = []
        for index in range(shards):
            resilience = (
                resilience_factory() if resilience_factory is not None else None
            )
            service = QueryService(
                database,
                capacity=capacity,
                max_workers=1,
                metrics=None,
                resilience=resilience,
                db_lock=self._db_lock,
                **service_kwargs,
            )
            self.shards.append(ServiceShard(index, service, max_pending))
        self._tenant_lock = threading.Lock()
        self._tenant_inflight = {}
        self._overload_lock = threading.Lock()
        self._overload_counts = {reason: 0 for reason in OVERLOAD_REASONS}
        #: id(query) -> (query, signature, shard index).  The strong
        #: query reference keeps the id stable for the memo's lifetime.
        self._route_memo = {}
        if metrics is not None:
            self._m_overload = {
                reason: metrics.counter(
                    "service_overload_%s_total" % reason,
                    "Admission fast-rejections: %s" % reason.replace("_", " "),
                )
                for reason in OVERLOAD_REASONS
            }
            metrics.counter(
                "service_overload_rejections_total",
                "Admission fast-rejections, all reasons",
                callback=self._rejection_count,
            )
            for shard in self.shards:
                metrics.gauge(
                    "service_shard%d_pending" % shard.index,
                    "Requests in flight on shard %d" % shard.index,
                    callback=lambda s=shard: s.pending,
                )
                metrics.gauge(
                    "service_shard%d_cache_entries" % shard.index,
                    "Plans cached on shard %d" % shard.index,
                    callback=lambda s=shard: len(s.service.cache),
                )
        else:
            self._m_overload = None

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def route(self, query):
        """The ``(signature, shard)`` owning ``query``.

        Memoized by query object identity: a serving workload reuses a
        handful of query objects across thousands of requests, so the
        canonical signature is computed once per object, not once per
        request.  The memo holds strong references (id stability) and
        is cleared past :data:`_ROUTE_MEMO_LIMIT` objects.
        """
        memoized = self._route_memo.get(id(query))
        if memoized is not None and memoized[0] is query:
            return memoized[1], self.shards[memoized[2]]
        signature = canonical_signature(query)
        index = shard_index_for(signature, len(self.shards))
        if len(self._route_memo) >= _ROUTE_MEMO_LIMIT:
            self._route_memo.clear()
        self._route_memo[id(query)] = (query, signature, index)
        return signature, self.shards[index]

    def shard_for(self, query):
        """The :class:`ServiceShard` that owns ``query``."""
        return self.route(query)[1]

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------

    def _reject(self, error):
        with self._overload_lock:
            self._overload_counts[error.reason] += 1
        if self._m_overload is not None:
            self._m_overload[error.reason].inc()
        raise error

    def _rejection_count(self):
        with self._overload_lock:
            return sum(self._overload_counts.values())

    def _quota_for(self, tenant):
        return self.tenant_quotas.get(tenant, self.tenant_quota)

    def _admit_tenant(self, tenant, shard_index):
        """Reserve one tenant in-flight slot or raise (counted by caller)."""
        quota = self._quota_for(tenant)
        if tenant is None or quota is None:
            return
        with self._tenant_lock:
            inflight = self._tenant_inflight.get(tenant, 0)
            if inflight >= quota:
                raise ServiceOverloadError(
                    "tenant %r at quota (%d in flight, limit %d)"
                    % (tenant, inflight, quota),
                    reason="tenant_quota",
                    shard=shard_index,
                    tenant=tenant,
                    pending=inflight,
                    limit=quota,
                )
            self._tenant_inflight[tenant] = inflight + 1

    def _release_tenant(self, tenant):
        if tenant is None or self._quota_for(tenant) is None:
            return
        with self._tenant_lock:
            remaining = self._tenant_inflight.get(tenant, 0) - 1
            if remaining > 0:
                self._tenant_inflight[tenant] = remaining
            else:
                self._tenant_inflight.pop(tenant, None)

    def _admit(self, shard, tenant):
        """Shard-queue then tenant-quota admission; all-or-nothing."""
        try:
            shard.try_admit()
        except ServiceOverloadError as error:
            self._reject(error)
        try:
            self._admit_tenant(tenant, shard.index)
        except ServiceOverloadError as error:
            shard.release()
            self._reject(error)

    def tenant_inflight(self, tenant):
        """Current in-flight count for ``tenant`` (exact gauge)."""
        with self._tenant_lock:
            return self._tenant_inflight.get(tenant, 0)

    def overload_counts(self):
        """Snapshot dict of fast-rejections by reason."""
        with self._overload_lock:
            return dict(self._overload_counts)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def submit(
        self,
        query,
        bindings,
        execute=None,
        tag=None,
        execution_mode=None,
        deadline_seconds=None,
        reopt_policy=None,
        tenant=None,
    ):
        """Route, admit, and queue one invocation; returns a Future.

        Raises :class:`~repro.common.errors.ServiceOverloadError`
        *synchronously* — before any optimizer or executor work — when
        the owning shard's queue is at its bound or the tenant is at
        its quota.  The backpressure contract: callers that see the
        typed rejection slow down; callers holding a future know their
        request was admitted and will complete (or fail typed).
        """
        request = ServiceRequest(
            query,
            bindings,
            execute=execute,
            tag=tag,
            execution_mode=execution_mode,
            deadline_seconds=deadline_seconds,
            reopt_policy=reopt_policy,
            tenant=tenant,
        )
        signature, shard = self.route(query)
        self._admit(shard, tenant)

        def on_done():
            shard.release()
            self._release_tenant(tenant)

        return shard.submit(signature, request, on_done)

    def run(
        self,
        query,
        bindings,
        execute=None,
        tag=None,
        execution_mode=None,
        deadline_seconds=None,
        reopt_policy=None,
        tenant=None,
    ):
        """Serve one invocation synchronously (admission still applies)."""
        request = ServiceRequest(
            query,
            bindings,
            execute=execute,
            tag=tag,
            execution_mode=execution_mode,
            deadline_seconds=deadline_seconds,
            reopt_policy=reopt_policy,
            tenant=tenant,
        )
        signature, shard = self.route(query)
        self._admit(shard, tenant)
        try:
            return shard.serve(signature, request)
        finally:
            shard.release()
            self._release_tenant(tenant)

    def run_batch(self, requests):
        """Serve many requests, results aligned with request order.

        The closed-loop replay path: requests are partitioned by
        owning shard and each shard worker runs its chunk in one tight
        loop, so the pool overhead is one future per *shard* rather
        than one per request.  Replay is bounded by construction (the
        caller holds the whole batch), so per-request admission is
        skipped; the pending gauge still reflects each chunk in
        flight.  Failures re-raise in request order, matching
        :meth:`QueryService.run_batch`.
        """
        requests = list(requests)
        chunks = [[] for _ in self.shards]
        for index, request in enumerate(requests):
            signature, shard = self.route(request.query)
            chunks[shard.index].append((index, signature, request))

        futures = []
        for shard, chunk in zip(self.shards, chunks):
            if not chunk:
                continue
            shard.reserve(len(chunk))

            def task(shard=shard, chunk=chunk):
                try:
                    return shard.serve_chunk(chunk)
                finally:
                    shard.release(len(chunk))

            futures.append(shard._executor.submit(task))

        outcomes = [None] * len(requests)
        for future in futures:
            for index, outcome, is_error in future.result():
                outcomes[index] = (outcome, is_error)
        results = []
        for outcome, is_error in outcomes:
            if is_error:
                raise outcome
            results.append(outcome)
        return results

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------

    def stats(self):
        """A :class:`ShardedServiceStatistics` snapshot (exact aggregate)."""
        return ShardedServiceStatistics(
            [shard.service.stats() for shard in self.shards],
            self.overload_counts(),
        )

    def shutdown(self, wait=True):
        """Stop every shard's worker and wrapped service."""
        for shard in self.shards:
            shard.shutdown(wait=wait)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.shutdown()
        return False

    def __len__(self):
        return len(self.shards)

    def __repr__(self):
        return "ShardedQueryService(%d shards, %d cached plans)" % (
            len(self.shards),
            sum(len(shard.service.cache) for shard in self.shards),
        )
