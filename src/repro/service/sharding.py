"""A sharded serving tier: partitioned plan cache behind one gateway.

The single :class:`~repro.service.service.QueryService` of PR 2 puts
every request through one plan cache guarded by one lock and one
thread pool — fine for a benchmark harness, a bottleneck for the
ROADMAP's "heavy traffic from millions of users" regime.  This module
scales that front end out without changing what any single request
observes:

* :class:`ShardedQueryService` (the **gateway**) canonicalizes each
  query once, hashes its signature digest, and routes the request to
  one of N :class:`ServiceShard`\\ s.  Routing is pure function of the
  canonical signature, so every invocation of one query shape lands on
  the same shard and the optimize-once/execute-many amortization is
  preserved per partition.
* each **shard** owns a full :class:`~repro.service.service.QueryService`
  — its own :class:`~repro.service.cache.PlanCache` partition with its
  own lock, its own worker thread, and its own staleness/circuit-
  breaker state — so requests for *different* signatures never
  serialize on a shared cache lock.  Shards share one database lock,
  so data execution is serialized exactly as in a single service.
* **admission control**: each shard's queue is bounded; when it is
  full — or the requesting tenant is at its in-flight quota — the
  gateway fast-rejects at submit time with a typed
  :class:`~repro.common.errors.ServiceOverloadError` instead of
  letting queues grow without bound.  Rejections are counted per
  reason and mirrored into metrics.
* **exact statistics**: :meth:`ShardedQueryService.stats` aggregates
  the per-shard :class:`~repro.service.service.ServiceStatistics`
  snapshots with :meth:`ServiceStatistics.aggregate` — counters
  summed, percentiles recomputed over the union of raw samples — so
  the gateway view loses no counts, and per-shard pending/cache-size
  gauges are exported when a metrics registry is attached.

The serving fast path (:meth:`ServiceShard.serve`) is the perf story:
compared with ``QueryService.run`` it skips the per-request canonical-
signature recomputation (the gateway routes with it, then hands it
down), reuses the entry's decision-outcome memo so the chosen static
plan is *rebuilt* once per distinct outcome instead of once per
invocation (:meth:`~repro.service.decision.CompiledDecision.choose_memoized`),
and processes batched traffic in per-shard chunks so the pool pays one
future per shard instead of one per request.  Freshness handling —
plan compilation, staleness re-optimization, circuit breaking, bounds
observation — is the *same code* (``QueryService._refresh``), so the
fast path makes bit-identical decisions to the single-lock service;
the differential test suite asserts exactly that.
"""

import logging
import threading
import time
from concurrent.futures import CancelledError, Future, ThreadPoolExecutor

from repro.common.errors import (
    ReproError,
    ServiceExecutionError,
    ServiceOverloadError,
    ShardDownError,
    SnapshotError,
)
from repro.executor.startup import activate_plan
from repro.optimizer.query import canonical_signature, signature_digest
from repro.resilience.deadline import Deadline
from repro.resilience.policy import backoff_hint
from repro.service.durability import (
    DurabilityConfig,
    build_snapshot,
    read_snapshot,
    restore_gateway,
    write_snapshot,
)
from repro.service.service import (
    QueryService,
    ServiceRequest,
    ServiceResult,
    ServiceStatistics,
    _coerce_reopt,
)
from repro.service.supervision import ShardSupervisor

logger = logging.getLogger(__name__)

__all__ = [
    "REQUEST_OUTCOMES",
    "ServiceShard",
    "ShardedQueryService",
    "ShardedServiceStatistics",
    "shard_index_for",
]

#: Overload rejection reasons (keys of the gateway's rejection counters).
OVERLOAD_REASONS = ("shard_queue_full", "tenant_quota")

#: Terminal outcomes of an accepted request.  Conservation invariant:
#: every submitted request ends in exactly one of these (or was
#: fast-rejected), so ``submitted == completed + failed_over + failed
#: + rejected`` at quiescence — the chaos harness asserts the equality
#: exactly.
REQUEST_OUTCOMES = ("completed", "failed_over", "failed")

#: Deterministic shard fault kinds accepted by
#: :meth:`ServiceShard.inject_fault` (the service-tier chaos hooks).
SHARD_FAULT_KINDS = ("crash", "hang", "slow")

#: Routing-memo size bound: the gateway caches (signature, shard) per
#: query *object*; past this many distinct objects the memo is cleared
#: (workloads reuse a handful of query objects, so this never triggers
#: in practice — it only bounds pathological callers).
_ROUTE_MEMO_LIMIT = 4096


def shard_index_for(signature, shard_count):
    """The shard owning ``signature``: digest hash modulo shard count.

    Deterministic across processes (the digest is SHA-256-derived, not
    ``hash()``), so replaying a workload always routes identically.
    """
    return int(signature_digest(signature), 16) % shard_count


class ServiceShard:
    """One partition: a private plan cache, worker, and breaker state.

    Wraps a dedicated :class:`~repro.service.service.QueryService` (its
    cache *is* the partition) plus a single-thread executor and a
    bounded pending-queue counter.  The shard never sees a query whose
    signature hashes elsewhere, so its cache lock is contended only by
    requests for signatures it owns.
    """

    def __init__(self, index, service, max_pending):
        self.index = index
        self.service = service
        self.max_pending = int(max_pending)
        #: False once the worker crashed or was killed; flipped back by
        #: :meth:`restart`.  Reads are racy by design (a health check
        #: may see a just-killed shard as alive for one sweep) — the
        #: serve path re-checks and raises typed.
        self.alive = True
        #: Bumped by every :meth:`restart`; lets tests assert a shard
        #: was actually rebuilt rather than merely marked healthy.
        self.generation = 0
        self._pending = 0
        self._served = 0
        self._stalls = 0
        self._pending_lock = threading.Lock()
        self._fault_lock = threading.Lock()
        #: Pending injected faults, ``[kind, remaining_serves]`` —
        #: deterministic chaos hooks, empty in production.
        self._injected = []
        #: Set while the worker is wedged inside an injected hang; the
        #: supervisor reads it as a no-progress signal and the chaos
        #: harness waits on it to synchronize deterministically.
        self._hanging = threading.Event()
        self._resume = threading.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-shard-%d" % index
        )

    @property
    def pending(self):
        """Requests admitted but not yet completed (exact gauge)."""
        with self._pending_lock:
            return self._pending

    @property
    def served(self):
        """Requests this shard finished serving (progress heartbeat).

        Counts typed failures too — a shard that fails requests
        quickly is unhealthy in a way admission control sees, but it
        is *making progress*, which is what supervision watches.
        """
        with self._pending_lock:
            return self._served

    @property
    def stalls(self):
        """Injected slow-serve marks seen so far (chaos hook gauge)."""
        with self._pending_lock:
            return self._stalls

    @property
    def hanging(self):
        """Whether the worker is currently wedged in an injected hang."""
        return self._hanging.is_set()

    # ------------------------------------------------------------------
    # Deterministic fault hooks (chaos harness / supervision tests)
    # ------------------------------------------------------------------

    def inject_fault(self, kind, after=0, count=1):
        """Arm a deterministic fault on this shard's serve path.

        ``kind`` is ``"crash"`` (the serve raises
        :class:`ShardDownError` and the shard marks itself dead),
        ``"hang"`` (the serving thread blocks until :meth:`restart` or
        :meth:`kill` releases it, then fails over), or ``"slow"``
        (the serve completes normally but bumps the stall gauge the
        supervisor reads as a slow-shard signal).  The fault fires on
        the ``after``-th next serve (0 = the very next), ``count``
        times for ``"slow"``.
        """
        if kind not in SHARD_FAULT_KINDS:
            raise ShardDownError(
                "unknown shard fault kind %r" % kind,
                shard=self.index,
                reason="bad_fault",
            )
        with self._fault_lock:
            for _ in range(count if kind == "slow" else 1):
                self._injected.append([kind, int(after)])

    def _check_faults(self):
        fired = None
        with self._fault_lock:
            for fault in self._injected:
                if fault[1] > 0:
                    fault[1] -= 1
                elif fired is None:
                    fired = fault[0]
            if fired is not None:
                self._injected.remove([fired, 0])
        if fired == "slow":
            with self._pending_lock:
                self._stalls += 1
        elif fired == "crash":
            self.alive = False
            raise ShardDownError(
                "shard %d worker crashed (injected)" % self.index,
                shard=self.index,
                reason="crashed",
            )
        elif fired == "hang":
            self._resume.clear()
            self._hanging.set()
            self._resume.wait()
            self._hanging.clear()
            raise ShardDownError(
                "shard %d worker hung and was recovered" % self.index,
                shard=self.index,
                reason="hung",
            )

    def kill(self):
        """Abruptly lose the worker (chaos hook / operator action).

        Marks the shard dead, releases any wedged serve, and cancels
        queued work.  Queued futures resolve cancelled and in-flight
        serves resolve with :class:`ShardDownError`; the gateway's
        completion callbacks fail every one of them over — the kill
        loses capacity, never requests.
        """
        self.alive = False
        self._resume.set()
        self._executor.shutdown(wait=False, cancel_futures=True)

    def restart(self, service):
        """Install a rebuilt service and a fresh worker.

        The old executor is shut down (releasing a wedged serve, which
        then fails typed and is failed over), the old service's pool
        stops, and the shard comes back alive with a cold cache
        partition and fresh breaker state — per-shard state is
        *rebuilt*, never resurrected from a worker whose history is
        suspect.  Pending-slot accounting survives: slots held by
        in-flight requests are released by their completion callbacks,
        so the gauge converges to exact without a reset.
        """
        old_service = self.service
        self._resume.set()
        self._executor.shutdown(wait=False, cancel_futures=True)
        with self._fault_lock:
            self._injected.clear()
        self.service = service
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-shard-%d" % self.index
        )
        self.generation += 1
        self.alive = True
        old_service.shutdown(wait=False)

    def try_admit(self, amount=1):
        """Reserve queue slots or fast-reject; never blocks.

        Raises :class:`ServiceOverloadError` (``reason=
        "shard_queue_full"``) when the reservation would push the
        pending count past ``max_pending``.
        """
        with self._pending_lock:
            if self._pending + amount > self.max_pending:
                raise ServiceOverloadError(
                    "shard %d queue full (%d pending, limit %d)"
                    % (self.index, self._pending, self.max_pending),
                    reason="shard_queue_full",
                    shard=self.index,
                    pending=self._pending,
                    limit=self.max_pending,
                )
            self._pending += amount

    def reserve(self, amount):
        """Reserve queue slots *without* the admission bound.

        The batched-replay path: the caller already holds the whole
        batch, so the queue cannot grow unboundedly — the reservation
        only keeps the pending gauge honest while the chunk runs.
        """
        with self._pending_lock:
            self._pending += amount

    def release(self, amount=1):
        """Return queue slots reserved by :meth:`try_admit`/:meth:`reserve`."""
        with self._pending_lock:
            self._pending -= amount

    def serve(self, signature, request):
        """Serve one routed request on the calling thread (fast path).

        Semantically :meth:`QueryService.run` with the signature
        precomputed: identical cache accounting
        (:meth:`~repro.service.cache.PlanCache.entry_for_signature`),
        identical freshness/breaker handling (``_refresh``), identical
        execution resilience, identical error wrapping — minus the
        per-request signature canonicalization and, via the entry's
        decision-outcome memo, minus the per-request chosen-plan
        rebuild.
        """
        if not self.alive:
            raise ShardDownError(
                "shard %d worker is dead" % self.index,
                shard=self.index,
                signature=signature,
                reason="crashed",
            )
        self._check_faults()
        svc = self.service
        svc._inflight_tokens.append(None)
        info = {"cache_hit": None, "attempts": 0}
        try:
            result = self._serve(signature, request, info)
        except ShardDownError:
            raise
        except ReproError as error:
            raise ServiceExecutionError(
                "request tag=%r query=%r failed: %s"
                % (request.tag, request.query.name, error),
                tag=request.tag,
                query_name=request.query.name,
                cache_hit=info["cache_hit"],
                attempts=info["attempts"],
                cause=error,
                shard=self.index,
                signature=signature,
            ) from error
        else:
            return result
        finally:
            svc._inflight_tokens.pop()
            with self._pending_lock:
                self._served += 1

    def _serve(self, signature, request, info):
        svc = self.service
        started = time.perf_counter()
        entry, cache_hit = svc.cache.entry_for_signature(signature, request.query)
        info["cache_hit"] = cache_hit
        optimize_seconds, reoptimized = svc._refresh(
            entry, cache_hit, request.bindings
        )

        with entry.lock:
            plan = entry.plan
            parameter_space = entry.parameter_space
            decision = entry.decision
            memo = entry.chosen_memo
        decision_started = time.perf_counter()
        if decision is not None:
            chosen, report = decision.choose_memoized(request.bindings, memo)
        else:
            chosen, report = activate_plan(
                plan,
                svc.catalog,
                parameter_space,
                request.bindings,
                branch_and_bound=svc.branch_and_bound,
                validate=False,
            )
        startup_seconds = time.perf_counter() - decision_started

        execution = None
        do_execute = (
            svc.default_execute if request.execute is None else request.execute
        )
        if do_execute:
            mode = (
                svc.execution_mode
                if request.execution_mode is None
                else request.execution_mode
            )
            deadline_seconds = request.deadline_seconds
            if deadline_seconds is None:
                deadline_seconds = svc.resilience.deadline_seconds
            reopt = (
                svc.reopt_policy
                if request.reopt_policy is None
                else _coerce_reopt(request.reopt_policy)
            )
            execution, chosen, report = svc._execute_with_resilience(
                entry,
                chosen,
                report,
                decision,
                plan,
                parameter_space,
                request.bindings,
                mode,
                Deadline.ensure(deadline_seconds),
                reopt,
                info,
            )

        total_seconds = time.perf_counter() - started
        svc._record(startup_seconds, optimize_seconds, reoptimized, execution)
        return ServiceResult(
            entry.digest,
            cache_hit and not reoptimized,
            reoptimized,
            chosen,
            report,
            optimize_seconds,
            startup_seconds,
            execution,
            total_seconds,
            tag=request.tag,
        )

    def submit(self, signature, request, on_done):
        """Queue one admitted request on the shard worker."""

        def task():
            try:
                return self.serve(signature, request)
            finally:
                on_done()

        return self._executor.submit(task)

    def serve_chunk(self, chunk):
        """Serve ``[(index, signature, request), ...]`` on the worker.

        The batched-replay path: one pool future covers the whole
        chunk, and the tight loop keeps each request's cost at the
        fast-path floor.  Returns ``[(index, outcome, is_error)]`` so
        the gateway can reassemble results in request order and
        re-raise the earliest failure exactly like
        :meth:`QueryService.run_batch` does.
        """
        outcomes = []
        serve = self.serve
        for index, signature, request in chunk:
            try:
                outcomes.append((index, serve(signature, request), False))
            except Exception as error:  # re-raised in request order
                outcomes.append((index, error, True))
        return outcomes

    def shutdown(self, wait=True):
        """Stop the shard worker and its wrapped service.

        Releases a wedged serve first so a hung worker cannot block
        shutdown forever.
        """
        self._resume.set()
        self._executor.shutdown(wait=wait)
        self.service.shutdown(wait=wait)

    def __repr__(self):
        return "ServiceShard(%d, pending=%d, %d cached plans)" % (
            self.index,
            self.pending,
            len(self.service.cache),
        )


class ShardedServiceStatistics:
    """Gateway statistics: exact aggregate plus the per-shard parts.

    ``total`` is :meth:`ServiceStatistics.aggregate` over the shard
    snapshots — counters summed, hit rate and percentiles recomputed
    from merged raw state, nothing approximated — and ``per_shard``
    keeps the individual snapshots for skew inspection.  ``overload``
    counts gateway fast-rejections by reason; rejected requests never
    reach a shard, so they appear *only* here (total requests served
    plus rejections equals requests submitted).
    """

    __slots__ = ("total", "per_shard", "overload")

    def __init__(self, per_shard, overload):
        self.per_shard = tuple(per_shard)
        self.total = ServiceStatistics.aggregate(self.per_shard)
        self.overload = dict(overload)

    @property
    def requests(self):
        return self.total.requests

    @property
    def hit_rate(self):
        return self.total.hit_rate

    @property
    def rejections(self):
        """Total overload fast-rejections across all reasons."""
        return sum(self.overload.values())

    def __repr__(self):
        return (
            "ShardedServiceStatistics(%d shards, requests=%d, "
            "hit_rate=%.2f, rejections=%d)"
            % (
                len(self.per_shard),
                self.total.requests,
                self.total.hit_rate,
                self.rejections,
            )
        )


class ShardedQueryService:
    """Gateway over N service shards partitioning the plan cache.

    Parameters
    ----------
    database:
        The shared :class:`~repro.storage.database.Database`.  All
        shards execute against it under one shared lock, so I/O
        accounting matches a single-lock service exactly.
    shards:
        Number of partitions.  Each shard is a full
        :class:`~repro.service.service.QueryService` with its own
        cache, lock, worker thread, and breaker state.
    capacity:
        Plan-cache capacity *per shard*, in entries.
    max_pending:
        Admission bound per shard: requests admitted (via
        :meth:`submit`) beyond this many in flight on one shard are
        fast-rejected with
        :class:`~repro.common.errors.ServiceOverloadError`
        (``reason="shard_queue_full"``).
    tenant_quota:
        Default per-tenant in-flight quota, or ``None`` for no tenant
        limiting.  Requests carrying ``tenant=None`` are never quota
        limited.
    tenant_quotas:
        Optional dict of per-tenant overrides of ``tenant_quota``.
    resilience_factory:
        Zero-argument callable producing one
        :class:`~repro.resilience.policy.ResiliencePolicy` *per shard*
        — policies hold mutable circuit-breaker state, so shards must
        not share one instance.  ``None`` gives each shard the policy
        defaults.
    metrics:
        Optional registry.  The gateway registers its own overload
        counters and per-shard gauges (``service_shard<i>_pending``,
        ``service_shard<i>_cache_entries``); shards are created
        *without* a registry — their exact counters are aggregated by
        :meth:`stats` instead, which avoids N-way metric-name
        collisions in a registry that has no label dimension.

    Remaining keyword arguments (``execute``, ``execution_mode``,
    ``batch_size``, ``compile_pipelines``, ``compiled``,
    ``branch_and_bound``, ``validate``, ``optimize``, ``tracer``,
    ``reopt_policy``) are forwarded to every shard's ``QueryService``
    unchanged.
    """

    def __init__(
        self,
        database,
        shards=8,
        capacity=64,
        max_pending=256,
        tenant_quota=None,
        tenant_quotas=None,
        resilience_factory=None,
        metrics=None,
        durability=None,
        backoff_seed=0,
        supervisor_down_after=2,
        supervisor_auto_restart=True,
        **service_kwargs,
    ):
        if shards < 1:
            raise ValueError("shard count must be at least 1")
        self.database = database
        self.metrics = metrics
        self.tenant_quota = tenant_quota
        self.tenant_quotas = dict(tenant_quotas or {})
        #: One lock serializing all shards' data execution against the
        #: shared database — identical serialization to one service.
        self._db_lock = threading.Lock()
        #: The shard construction recipe, kept so the supervisor can
        #: rebuild a crashed shard bit-identically to its original.
        self._capacity = capacity
        self._max_pending = max_pending
        self._resilience_factory = resilience_factory
        self._service_kwargs = dict(service_kwargs)
        self.shards = []
        for index in range(shards):
            self.shards.append(
                ServiceShard(index, self._make_service(), max_pending)
            )
        self._tenant_lock = threading.Lock()
        self._tenant_inflight = {}
        self._overload_lock = threading.Lock()
        self._overload_counts = {reason: 0 for reason in OVERLOAD_REASONS}
        self._backoff_seed = backoff_seed
        #: Terminal request accounting: every accepted request ends in
        #: exactly one of REQUEST_OUTCOMES; with the rejection counts
        #: this gives the conservation equality the chaos suite checks.
        self._outcome_lock = threading.Lock()
        self._outcomes = {name: 0 for name in REQUEST_OUTCOMES}
        self._submitted = 0
        self._failover_reasons = {}
        #: Lazily created unsharded fallback service — the "re-optimize
        #: fresh" degraded path when no sibling shard is servable.
        self._standby = None
        self._standby_lock = threading.Lock()
        self.supervisor = ShardSupervisor(
            self,
            down_after=supervisor_down_after,
            auto_restart=supervisor_auto_restart,
        )
        self.durability = DurabilityConfig.coerce(durability)
        self._snapshot_lock = threading.Lock()
        self._completed_since_snapshot = 0
        self._snapshots_written = 0
        self._snapshot_failures = 0
        self.restore_stats = None
        if self.durability is not None and self.durability.restore_on_start:
            self.restore_stats = self._restore_from_disk()
        #: id(query) -> (query, signature, shard index).  The strong
        #: query reference keeps the id stable for the memo's lifetime.
        self._route_memo = {}
        if metrics is not None:
            self._m_overload = {
                reason: metrics.counter(
                    "service_overload_%s_total" % reason,
                    "Admission fast-rejections: %s" % reason.replace("_", " "),
                )
                for reason in OVERLOAD_REASONS
            }
            metrics.counter(
                "service_overload_rejections_total",
                "Admission fast-rejections, all reasons",
                callback=self._rejection_count,
            )
            metrics.counter(
                "service_failovers_total",
                "Requests served on the degraded path after shard loss",
                callback=lambda: self.request_outcomes()["failed_over"],
            )
            metrics.counter(
                "service_shard_restarts_total",
                "Shard workers rebuilt by the supervisor",
                callback=lambda: self.supervisor.counts()["restarts"],
            )
            metrics.counter(
                "service_snapshots_written_total",
                "Plan-cache snapshots persisted to disk",
                callback=lambda: self._snapshots_written,
            )
            for shard in self.shards:
                metrics.gauge(
                    "service_shard%d_pending" % shard.index,
                    "Requests in flight on shard %d" % shard.index,
                    callback=lambda s=shard: s.pending,
                )
                metrics.gauge(
                    "service_shard%d_cache_entries" % shard.index,
                    "Plans cached on shard %d" % shard.index,
                    callback=lambda s=shard: len(s.service.cache),
                )
        else:
            self._m_overload = None

    # ------------------------------------------------------------------
    # Shard construction and recovery
    # ------------------------------------------------------------------

    def _make_service(self):
        """One shard's QueryService, from the gateway's stored recipe."""
        resilience = (
            self._resilience_factory()
            if self._resilience_factory is not None
            else None
        )
        return QueryService(
            self.database,
            capacity=self._capacity,
            max_workers=1,
            metrics=None,
            resilience=resilience,
            db_lock=self._db_lock,
            **self._service_kwargs,
        )

    def _rebuild_shard(self, shard):
        """Supervisor callback: rebuild one shard's service and worker.

        The replacement service comes from the same recipe as the
        original — fresh cache partition, fresh resilience policy from
        the factory (breaker state is never carried over from a dead
        worker), same shared database lock — and, when durable
        snapshots are enabled, the partition is re-warmed from the
        last snapshot on disk so recovery skips re-optimizing the hot
        signatures the dead shard owned.
        """
        shard.restart(self._make_service())
        config = self.durability
        if config is not None and config.restore_on_restart:
            try:
                restore_gateway(
                    self, read_snapshot(config.path), only_shard=shard.index
                )
            except SnapshotError as error:
                # Recovery must prefer a cold shard to no shard.
                self._note_snapshot_failure("restart-restore", error)

    def _restore_from_disk(self):
        """Warm-restore at gateway startup; cold start on any refusal."""
        try:
            return restore_gateway(self, read_snapshot(self.durability.path))
        except SnapshotError as error:
            if error.reason != "unreadable":
                self._note_snapshot_failure("startup-restore", error)
            return None

    def _note_snapshot_failure(self, stage, error):
        self._snapshot_failures += 1
        logger.warning("plan-cache snapshot %s failed: %s", stage, error)

    # ------------------------------------------------------------------
    # Durable snapshots
    # ------------------------------------------------------------------

    def save_snapshot(self, path=None):
        """Persist the current plan-cache state; returns the path.

        With no explicit ``path`` the gateway's durability config
        supplies one (it is an error to call this with neither).
        """
        if path is None:
            if self.durability is None:
                raise SnapshotError(
                    "no snapshot path: gateway has no durability config",
                    reason="bad_config",
                )
            path = self.durability.path
        written = write_snapshot(path, build_snapshot(self))
        self._snapshots_written += 1
        return written

    def _maybe_snapshot(self):
        """Periodic snapshot trigger, counted in completed requests."""
        config = self.durability
        if config is None or config.snapshot_every is None:
            return
        with self._snapshot_lock:
            self._completed_since_snapshot += 1
            if self._completed_since_snapshot < config.snapshot_every:
                return
            self._completed_since_snapshot = 0
        try:
            self.save_snapshot()
        except (OSError, SnapshotError) as error:
            self._note_snapshot_failure("periodic", error)

    def snapshot_counts(self):
        """``{written, failures}`` snapshot-activity counters."""
        return {
            "written": self._snapshots_written,
            "failures": self._snapshot_failures,
        }

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def route(self, query):
        """The ``(signature, shard)`` owning ``query``.

        Memoized by query object identity: a serving workload reuses a
        handful of query objects across thousands of requests, so the
        canonical signature is computed once per object, not once per
        request.  The memo holds strong references (id stability) and
        is cleared past :data:`_ROUTE_MEMO_LIMIT` objects.
        """
        memoized = self._route_memo.get(id(query))
        if memoized is not None and memoized[0] is query:
            return memoized[1], self.shards[memoized[2]]
        signature = canonical_signature(query)
        index = shard_index_for(signature, len(self.shards))
        if len(self._route_memo) >= _ROUTE_MEMO_LIMIT:
            self._route_memo.clear()
        self._route_memo[id(query)] = (query, signature, index)
        return signature, self.shards[index]

    def shard_for(self, query):
        """The :class:`ServiceShard` that owns ``query``."""
        return self.route(query)[1]

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------

    def _reject(self, error):
        with self._overload_lock:
            self._overload_counts[error.reason] += 1
            rejections = self._overload_counts[error.reason]
        # A deterministic client backoff hint: pure function of the
        # gateway seed and how often this reason has rejected, so test
        # clients can assert (and replay) their backoff schedule.
        error.retry_after_hint = backoff_hint(
            self._backoff_seed, error.reason, rejections
        )
        if self._m_overload is not None:
            self._m_overload[error.reason].inc()
        raise error

    def _rejection_count(self):
        with self._overload_lock:
            return sum(self._overload_counts.values())

    def _quota_for(self, tenant):
        return self.tenant_quotas.get(tenant, self.tenant_quota)

    def _admit_tenant(self, tenant, shard_index):
        """Reserve one tenant in-flight slot or raise (counted by caller)."""
        quota = self._quota_for(tenant)
        if tenant is None or quota is None:
            return
        with self._tenant_lock:
            inflight = self._tenant_inflight.get(tenant, 0)
            if inflight >= quota:
                raise ServiceOverloadError(
                    "tenant %r at quota (%d in flight, limit %d)"
                    % (tenant, inflight, quota),
                    reason="tenant_quota",
                    shard=shard_index,
                    tenant=tenant,
                    pending=inflight,
                    limit=quota,
                )
            self._tenant_inflight[tenant] = inflight + 1

    def _release_tenant(self, tenant):
        if tenant is None or self._quota_for(tenant) is None:
            return
        with self._tenant_lock:
            remaining = self._tenant_inflight.get(tenant, 0) - 1
            if remaining > 0:
                self._tenant_inflight[tenant] = remaining
            else:
                self._tenant_inflight.pop(tenant, None)

    def _admit(self, shard, tenant, signature=None):
        """Shard-queue then tenant-quota admission; all-or-nothing."""
        try:
            shard.try_admit()
        except ServiceOverloadError as error:
            error.signature = signature
            self._reject(error)
        try:
            self._admit_tenant(tenant, shard.index)
        except ServiceOverloadError as error:
            shard.release()
            error.signature = signature
            self._reject(error)

    def tenant_inflight(self, tenant):
        """Current in-flight count for ``tenant`` (exact gauge)."""
        with self._tenant_lock:
            return self._tenant_inflight.get(tenant, 0)

    def overload_counts(self):
        """Snapshot dict of fast-rejections by reason."""
        with self._overload_lock:
            return dict(self._overload_counts)

    # ------------------------------------------------------------------
    # Request conservation accounting
    # ------------------------------------------------------------------

    def _record_submitted(self, amount=1):
        with self._outcome_lock:
            self._submitted += amount

    def _record_outcome(self, name):
        with self._outcome_lock:
            self._outcomes[name] += 1

    def _record_failover(self, reason):
        with self._outcome_lock:
            self._outcomes["failed_over"] += 1
            self._failover_reasons[reason] = (
                self._failover_reasons.get(reason, 0) + 1
            )

    def request_outcomes(self):
        """Terminal accounting of every request this gateway saw.

        Returns ``{submitted, completed, failed_over, failed,
        rejected, failover_reasons}``.  At quiescence the conservation
        equality holds exactly: ``submitted == completed + failed_over
        + failed + rejected`` — no request is silently lost (a
        completed or failed-over request produced a result; a failed
        one raised typed; a rejected one never entered) and none is
        double-counted (each increments exactly one terminal counter).
        """
        with self._outcome_lock:
            outcomes = dict(self._outcomes)
            outcomes["submitted"] = self._submitted
            outcomes["failover_reasons"] = dict(self._failover_reasons)
        outcomes["rejected"] = self._rejection_count()
        return outcomes

    # ------------------------------------------------------------------
    # Degraded path
    # ------------------------------------------------------------------

    def _standby_service(self):
        """The gateway-owned fallback service, created on first need."""
        with self._standby_lock:
            if self._standby is None:
                self._standby = self._make_service()
            return self._standby

    def _failover(self, signature, request, origin, reason):
        """Serve a request whose owning shard is down; typed, counted.

        Prefers the next servable sibling shard (its service makes
        bit-identical decisions — ``_refresh`` is shared code — so the
        result rows match what the dead shard would have produced);
        when no sibling is servable the gateway's standby service
        re-optimizes fresh.  The successful serve is counted as a
        ``failed_over`` outcome under the originating ``reason``; a
        failure on the degraded path propagates to the caller and is
        counted ``failed`` there — either way the request reaches
        exactly one terminal counter.
        """
        for offset in range(1, len(self.shards)):
            sibling = self.shards[(origin.index + offset) % len(self.shards)]
            if not self.supervisor.is_servable(sibling):
                continue
            try:
                result = sibling.serve(signature, request)
            except ShardDownError:
                continue
            self._record_failover(reason)
            return result
        result = self._standby_service().run(
            request.query,
            request.bindings,
            execute=request.execute,
            tag=request.tag,
            execution_mode=request.execution_mode,
            deadline_seconds=request.deadline_seconds,
            reopt_policy=request.reopt_policy,
        )
        self._record_failover(reason)
        return result

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def submit(
        self,
        query,
        bindings,
        execute=None,
        tag=None,
        execution_mode=None,
        deadline_seconds=None,
        reopt_policy=None,
        tenant=None,
    ):
        """Route, admit, and queue one invocation; returns a Future.

        Raises :class:`~repro.common.errors.ServiceOverloadError`
        *synchronously* — before any optimizer or executor work — when
        the owning shard's queue is at its bound or the tenant is at
        its quota.  The backpressure contract: callers that see the
        typed rejection slow down; callers holding a future know their
        request was admitted and will complete (or fail typed).  The
        completion contract survives shard loss: when the owning
        shard's worker dies under the request, the returned future
        resolves with the failed-over result (or the degraded path's
        typed error) instead of dangling — the queued work is drained
        through completion callbacks, which fire for cancelled futures
        too, so admission slots and quota reservations are released
        exactly once no matter how the shard died.
        """
        request = ServiceRequest(
            query,
            bindings,
            execute=execute,
            tag=tag,
            execution_mode=execution_mode,
            deadline_seconds=deadline_seconds,
            reopt_policy=reopt_policy,
            tenant=tenant,
        )
        signature, shard = self.route(query)
        self._record_submitted()
        self._admit(shard, tenant, signature)
        outer = Future()
        outer.set_running_or_notify_cancel()

        def settle_failover(reason):
            try:
                result = self._failover(signature, request, shard, reason)
            except Exception as error:  # noqa: BLE001 — routed to caller
                self._record_outcome("failed")
                outer.set_exception(error)
            else:
                outer.set_result(result)

        def finish(inner):
            shard.release()
            self._release_tenant(tenant)
            if inner.cancelled():
                settle_failover("killed")
                return
            error = inner.exception()
            if error is None:
                self._record_outcome("completed")
                outer.set_result(inner.result())
                self._maybe_snapshot()
            elif isinstance(error, ShardDownError):
                settle_failover(error.reason or "crashed")
            else:
                self._record_outcome("failed")
                outer.set_exception(error)

        if not self.supervisor.is_servable(shard):
            shard.release()
            self._release_tenant(tenant)
            settle_failover("crashed" if not shard.alive else "restarting")
            return outer
        try:
            inner = shard.submit(signature, request, on_done=lambda: None)
        except RuntimeError:
            # The worker pool shut down between the health check and
            # the enqueue — the kill race.  Serve degraded instead.
            shard.release()
            self._release_tenant(tenant)
            settle_failover("killed")
            return outer
        inner.add_done_callback(finish)
        return outer

    def run(
        self,
        query,
        bindings,
        execute=None,
        tag=None,
        execution_mode=None,
        deadline_seconds=None,
        reopt_policy=None,
        tenant=None,
    ):
        """Serve one invocation synchronously (admission still applies).

        A request whose owning shard is down — or dies under the serve
        — is routed to the degraded path and completes there; the
        caller sees a result either way, never a silently dropped
        request.
        """
        request = ServiceRequest(
            query,
            bindings,
            execute=execute,
            tag=tag,
            execution_mode=execution_mode,
            deadline_seconds=deadline_seconds,
            reopt_policy=reopt_policy,
            tenant=tenant,
        )
        signature, shard = self.route(query)
        self._record_submitted()
        self._admit(shard, tenant, signature)
        try:
            try:
                if not self.supervisor.is_servable(shard):
                    return self._failover(
                        signature,
                        request,
                        shard,
                        "crashed" if not shard.alive else "restarting",
                    )
                try:
                    result = shard.serve(signature, request)
                except ShardDownError as error:
                    return self._failover(
                        signature, request, shard, error.reason or "crashed"
                    )
                self._record_outcome("completed")
                self._maybe_snapshot()
                return result
            except Exception:
                self._record_outcome("failed")
                raise
        finally:
            shard.release()
            self._release_tenant(tenant)

    def run_batch(self, requests):
        """Serve many requests, results aligned with request order.

        The closed-loop replay path: requests are partitioned by
        owning shard and each shard worker runs its chunk in one tight
        loop, so the pool overhead is one future per *shard* rather
        than one per request.  Replay is bounded by construction (the
        caller holds the whole batch), so per-request admission is
        skipped; the pending gauge still reflects each chunk in
        flight.  Failures re-raise in request order, matching
        :meth:`QueryService.run_batch`.
        """
        requests = list(requests)
        self._record_submitted(len(requests))
        chunks = [[] for _ in self.shards]
        for index, request in enumerate(requests):
            signature, shard = self.route(request.query)
            chunks[shard.index].append((index, signature, request))

        dispatched = []
        for shard, chunk in zip(self.shards, chunks):
            if not chunk:
                continue
            if not self.supervisor.is_servable(shard):
                dispatched.append((None, shard, chunk))
                continue
            shard.reserve(len(chunk))

            def task(shard=shard, chunk=chunk):
                try:
                    return shard.serve_chunk(chunk)
                finally:
                    shard.release(len(chunk))

            try:
                future = shard._executor.submit(task)
            except RuntimeError:  # worker pool died under us (kill race)
                shard.release(len(chunk))
                dispatched.append((None, shard, chunk))
                continue
            # A cancelled future never ran the task's finally — the
            # callback returns its chunk's slots so the pending gauge
            # stays exact across a kill.
            future.add_done_callback(
                lambda f, s=shard, n=len(chunk): (
                    s.release(n) if f.cancelled() else None
                )
            )
            dispatched.append((future, shard, chunk))

        outcomes = [None] * len(requests)
        for future, shard, chunk in dispatched:
            if future is None:
                chunk_outcomes = [
                    (index, self.supervisor.down_error(shard, signature), True)
                    for index, signature, request in chunk
                ]
            else:
                try:
                    chunk_outcomes = future.result()
                except CancelledError:
                    chunk_outcomes = [
                        (
                            index,
                            self.supervisor.down_error(shard, signature),
                            True,
                        )
                        for index, signature, request in chunk
                    ]
            by_index = {
                index: (signature, request)
                for index, signature, request in chunk
            }
            for index, outcome, is_error in chunk_outcomes:
                if is_error and isinstance(outcome, ShardDownError):
                    signature, request = by_index[index]
                    try:
                        outcome = self._failover(
                            signature,
                            request,
                            shard,
                            outcome.reason or "crashed",
                        )
                        is_error = False
                    except Exception as error:  # noqa: BLE001 — re-raised
                        # below in request order, like any serve failure
                        self._record_outcome("failed")
                        outcome = error
                elif is_error:
                    self._record_outcome("failed")
                else:
                    self._record_outcome("completed")
                    self._maybe_snapshot()
                outcomes[index] = (outcome, is_error)
        results = []
        for outcome, is_error in outcomes:
            if is_error:
                raise outcome
            results.append(outcome)
        return results

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------

    def stats(self):
        """A :class:`ShardedServiceStatistics` snapshot (exact aggregate)."""
        return ShardedServiceStatistics(
            [shard.service.stats() for shard in self.shards],
            self.overload_counts(),
        )

    def shutdown(self, wait=True):
        """Stop every shard's worker and wrapped service.

        With durability enabled, a final snapshot is written first —
        quiescing before persisting — so a clean shutdown always
        leaves a warm-restorable image behind.
        """
        self.supervisor.stop()
        config = self.durability
        if config is not None and config.snapshot_on_shutdown:
            try:
                self.save_snapshot()
            except (OSError, SnapshotError) as error:
                self._note_snapshot_failure("shutdown", error)
        for shard in self.shards:
            shard.shutdown(wait=wait)
        with self._standby_lock:
            if self._standby is not None:
                self._standby.shutdown(wait=wait)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.shutdown()
        return False

    def __len__(self):
        return len(self.shards)

    def __repr__(self):
        return "ShardedQueryService(%d shards, %d cached plans)" % (
            len(self.shards),
            sum(len(shard.service.cache) for shard in self.shards),
        )
