"""Compiled start-up decision procedures for cached dynamic plans.

The paper's access module embeds each choose-plan's decision procedure
— the alternatives' cost functions — so that start-up only *evaluates*
them under the actual bindings.  The generic path
(:func:`~repro.executor.startup.resolve_dynamic_plan`) interprets the
plan DAG through the interval cost model on every invocation; for a
long-lived service that interpretation overhead dominates the start-up
cost the cache is supposed to make negligible.

:class:`CompiledDecision` performs the interpretation **once**, when a
plan enters the cache: it linearizes the DAG into a topologically
ordered program of scalar cost evaluators with all catalog statistics
(cardinalities, page counts, B-tree heights, join selectivities) baked
in as constants.  Each invocation then runs one linear pass of plain
float arithmetic — no interval objects, no recursion, no isinstance
dispatch, no catalog lookups — makes every choose-plan decision, and
rebuilds only the chosen static plan.

At start-up time every parameter is a point, so interval evaluation
degenerates to scalar evaluation; the compiled formulas replicate the
cost model's arithmetic operation for operation, which makes the
compiled decisions *exactly* the decisions the interpreted path takes
(asserted by the equivalence tests).  Compilation never mutates the
plan, and a compiled procedure keeps no per-invocation state, so one
instance serves any number of threads concurrently.
"""

import math
import time

from repro.algebra.physical import (
    BTreeScan,
    ChoosePlan,
    FileScan,
    Filter,
    FilterBTreeScan,
    HashJoin,
    IndexJoin,
    Materialized,
    MergeJoin,
    Project,
    Sort,
)
from repro.common.errors import PlanError
from repro.common.units import (
    CPU_COST_WEIGHT,
    IO_TIME_PER_PAGE,
    RECORDS_PER_PAGE,
    SEQ_IO_TIME_PER_PAGE,
    access_module_read_seconds,
    pages_for_records,
)
from repro.cost.formulas import (
    SPILL_IO_TIME_PER_PAGE,
    btree_height,
    btree_leaf_pages,
)
from repro.cost.parameters import MEMORY_PARAMETER
from repro.executor.startup import StartupReport, _rebuild


class DecisionCompilationError(PlanError):
    """A plan contains an operator the compiler does not support."""


def _selectivity_resolver(predicate, parameter_space):
    """A ``bindings -> float`` resolver mirroring the runtime valuation.

    A supplied binding always wins; otherwise the parameter's expected
    value applies (the space's when the parameter is registered there,
    the predicate's own compile-time expectation when it is not).
    """
    if not predicate.is_uncertain:
        known = float(predicate.known_selectivity)
        return lambda bindings: known
    name = predicate.selectivity_parameter
    if name in parameter_space:
        expected = parameter_space.get(name).expected
    else:
        expected = predicate.expected_selectivity

    def resolve(bindings):
        if bindings.has_parameter(name):
            return bindings.parameter(name)
        return expected

    return resolve


def _fetch_io(record_count, clustered):
    """Scalar twin of ``CostModel._fetch_io_seconds`` (not buffer-aware)."""
    if clustered:
        return record_count / RECORDS_PER_PAGE * SEQ_IO_TIME_PER_PAGE
    return record_count * IO_TIME_PER_PAGE


class CompiledDecision:
    """One dynamic plan compiled into a scalar start-up program.

    ``choose(bindings)`` runs all decision procedures and returns
    ``(static_plan, report)`` with the same semantics as
    :func:`~repro.executor.startup.resolve_dynamic_plan`.
    """

    def __init__(self, plan, catalog, parameter_space):
        self.plan = plan
        self.parameter_space = parameter_space
        self._memory_parameter = parameter_space.get(MEMORY_PARAMETER)
        #: Topological order (children first); pins nodes so the id()
        #: keys of the slot map can never be recycled.
        self._nodes = self._linearize(plan)
        self._slots = {id(node): index for index, node in enumerate(self._nodes)}
        self._program = [self._compile_node(node, catalog) for node in self._nodes]
        self._node_count = plan.node_count()
        self.decision_count = sum(
            1 for node in self._nodes if isinstance(node, ChoosePlan)
        )

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------

    @staticmethod
    def _linearize(plan):
        """Unique DAG nodes in dependency order (children first)."""
        order = []
        visited = set()
        stack = [(plan, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for child in node.inputs():
                stack.append((child, False))
        return order

    def _compile_node(self, node, catalog):
        """One ``fn(costs, cards, bindings, memory, decisions)`` step.

        Each step writes the node's scalar cost and output cardinality
        into its slot of the work arrays.  The arithmetic mirrors the
        corresponding :class:`~repro.cost.formulas.CostModel` formula
        evaluated at a point valuation, operation for operation.
        """
        slot = self._slots[id(node)]

        if isinstance(node, FileScan):
            cardinality = catalog.cardinality(node.relation_name)
            cost = (
                pages_for_records(cardinality) * SEQ_IO_TIME_PER_PAGE
                + cardinality * CPU_COST_WEIGHT
            )

            def file_scan(costs, cards, bindings, memory, decisions):
                costs[slot] = cost
                cards[slot] = cardinality

            return file_scan

        if isinstance(node, BTreeScan):
            cardinality = catalog.cardinality(node.relation_name)
            clustered = self._clustered(catalog, node.relation_name, node.attribute)
            cost = (
                btree_height(cardinality) * IO_TIME_PER_PAGE
                + btree_leaf_pages(cardinality) * SEQ_IO_TIME_PER_PAGE
                + _fetch_io(cardinality, clustered)
                + cardinality * CPU_COST_WEIGHT
            )

            def btree_scan(costs, cards, bindings, memory, decisions):
                costs[slot] = cost
                cards[slot] = cardinality

            return btree_scan

        if isinstance(node, FilterBTreeScan):
            cardinality = catalog.cardinality(node.relation_name)
            clustered = self._clustered(catalog, node.relation_name, node.attribute)
            descend = btree_height(cardinality) * IO_TIME_PER_PAGE
            leaves = btree_leaf_pages(cardinality)
            resolve = _selectivity_resolver(node.predicate, self.parameter_space)

            def filter_btree_scan(costs, cards, bindings, memory, decisions):
                s = resolve(bindings)
                matches = s * cardinality
                costs[slot] = (
                    descend
                    + s * leaves * SEQ_IO_TIME_PER_PAGE
                    + _fetch_io(matches, clustered)
                    + matches * CPU_COST_WEIGHT
                )
                cards[slot] = s * cardinality

            return filter_btree_scan

        if isinstance(node, Filter):
            child = self._slots[id(node.input)]
            resolve = _selectivity_resolver(node.predicate, self.parameter_space)

            def filter_(costs, cards, bindings, memory, decisions):
                card = cards[child]
                costs[slot] = costs[child] + card * CPU_COST_WEIGHT
                cards[slot] = card * resolve(bindings)

            return filter_

        if isinstance(node, HashJoin):
            build = self._slots[id(node.build)]
            probe = self._slots[id(node.probe)]
            join_sel = self._join_selectivity(catalog, node.predicates)

            def hash_join(costs, cards, bindings, memory, decisions):
                build_card = cards[build]
                probe_card = cards[probe]
                build_pages = pages_for_records(build_card)
                probe_pages = pages_for_records(probe_card)
                output = build_card * probe_card * join_sel
                local = (
                    build_card * 2.0 * CPU_COST_WEIGHT
                    + probe_card * 2.0 * CPU_COST_WEIGHT
                    + output * CPU_COST_WEIGHT
                )
                if not (build_pages <= memory or build_pages == 0):
                    local += (
                        2.0
                        * (1.0 - memory / build_pages)
                        * (build_pages + probe_pages)
                        * SPILL_IO_TIME_PER_PAGE
                    )
                costs[slot] = costs[build] + costs[probe] + local
                cards[slot] = build_card * probe_card * join_sel

            return hash_join

        if isinstance(node, MergeJoin):
            left = self._slots[id(node.left)]
            right = self._slots[id(node.right)]
            join_sel = self._join_selectivity(catalog, node.predicates)

            def merge_join(costs, cards, bindings, memory, decisions):
                left_card = cards[left]
                right_card = cards[right]
                output = left_card * right_card * join_sel
                costs[slot] = (
                    costs[left]
                    + costs[right]
                    + (left_card + right_card) * 1.5 * CPU_COST_WEIGHT
                    + output * CPU_COST_WEIGHT
                )
                cards[slot] = left_card * right_card * join_sel

            return merge_join

        if isinstance(node, IndexJoin):
            outer = self._slots[id(node.outer)]
            inner_cardinality = catalog.cardinality(node.inner_relation)
            join_sel = self._join_selectivity(catalog, node.predicates)
            height = btree_height(inner_cardinality)
            matches_per_probe = inner_cardinality * join_sel
            clustered = self._clustered(
                catalog, node.inner_relation, node.inner_attribute
            )
            if node.residual_predicate is not None:
                resolve = _selectivity_resolver(
                    node.residual_predicate, self.parameter_space
                )
            else:
                resolve = None

            def index_join(costs, cards, bindings, memory, decisions):
                outer_card = cards[outer]
                residual = 1.0 if resolve is None else resolve(bindings)
                fetched = outer_card * matches_per_probe
                local = (
                    outer_card * height * IO_TIME_PER_PAGE
                    + _fetch_io(fetched, clustered)
                    + outer_card * CPU_COST_WEIGHT
                    + fetched * CPU_COST_WEIGHT
                    + fetched * residual * CPU_COST_WEIGHT
                )
                costs[slot] = costs[outer] + local
                cards[slot] = outer_card * matches_per_probe * residual

            return index_join

        if isinstance(node, Sort):
            child = self._slots[id(node.input)]

            def sort(costs, cards, bindings, memory, decisions):
                card = cards[child]
                if card <= 1:
                    local = CPU_COST_WEIGHT
                else:
                    pages = pages_for_records(card)
                    # Mirrors CostModel._sort exactly, floor included.
                    local = max(card * math.log(card, 2), 1.0) * CPU_COST_WEIGHT
                    if pages > memory:
                        run_count = pages / max(memory, 2.0)
                        merge_passes = max(
                            1, math.ceil(math.log(run_count, max(memory - 1, 2)))
                        )
                        local += 2.0 * pages * merge_passes * SPILL_IO_TIME_PER_PAGE
                costs[slot] = costs[child] + local
                cards[slot] = card

            return sort

        if isinstance(node, Project):
            child = self._slots[id(node.input)]

            def project(costs, cards, bindings, memory, decisions):
                card = cards[child]
                costs[slot] = costs[child] + card * CPU_COST_WEIGHT
                cards[slot] = card

            return project

        if isinstance(node, Materialized):
            cardinality = float(node.observed_cardinality)

            def materialized(costs, cards, bindings, memory, decisions):
                costs[slot] = 0.0
                cards[slot] = cardinality

            return materialized

        if isinstance(node, ChoosePlan):
            alternatives = [
                (self._slots[id(alternative)], alternative)
                for alternative in node.alternatives
            ]

            def choose_plan(costs, cards, bindings, memory, decisions):
                best_slot = None
                best_alternative = None
                best_cost = None
                for alt_slot, alternative in alternatives:
                    cost = costs[alt_slot]
                    if best_cost is None or cost < best_cost:
                        best_cost = cost
                        best_slot = alt_slot
                        best_alternative = alternative
                costs[slot] = best_cost
                cards[slot] = cards[best_slot]
                decisions.append((node, best_alternative))

            return choose_plan

        raise DecisionCompilationError(
            "cannot compile a decision procedure over operator %r" % node
        )

    @staticmethod
    def _clustered(catalog, relation_name, attribute):
        index_info = catalog.index_on(relation_name, attribute)
        return index_info is not None and index_info.clustered

    @staticmethod
    def _join_selectivity(catalog, predicates):
        """Compile-time twin of ``CostModel.join_selectivity``."""
        selectivity = 1.0
        for predicate in predicates:
            left_rel, left_attr = predicate.left_attribute.split(".", 1)
            right_rel, right_attr = predicate.right_attribute.split(".", 1)
            selectivity /= max(
                catalog.domain_size(left_rel, left_attr),
                catalog.domain_size(right_rel, right_attr),
            )
        return selectivity

    # ------------------------------------------------------------------
    # Start-up
    # ------------------------------------------------------------------

    def choose(self, bindings):
        """Run every decision procedure under ``bindings``.

        Returns ``(static_plan, report)`` exactly like
        :func:`~repro.executor.startup.resolve_dynamic_plan`.  All
        working state is local to this call — safe to invoke from any
        number of threads on the same instance.
        """
        return self._choose(bindings, None)

    def choose_memoized(self, bindings, memo):
        """:meth:`choose` with the chosen-plan rebuild memoized.

        ``memo`` maps a decision-outcome key — the tuple of chosen
        alternatives, one per choose-plan in program order — to the
        static plan previously rebuilt for that outcome.  A query
        shape has only a handful of distinct outcomes, so a serving
        tier replaying thousands of bindings rebuilds each chosen plan
        once instead of every invocation.  Decisions themselves are
        always re-evaluated; plans are immutable, so returning the
        memoized object is exact.
        """
        return self._choose(bindings, memo)

    def _choose(self, bindings, memo):
        started = time.perf_counter()
        if bindings.has_parameter(MEMORY_PARAMETER):
            memory = bindings.parameter(MEMORY_PARAMETER)
        else:
            memory = self._memory_parameter.expected
        size = len(self._program)
        costs = [0.0] * size
        cards = [0.0] * size
        decisions = []
        for step in self._program:
            step(costs, cards, bindings, memory, decisions)
        chosen = None
        outcome = None
        if memo is not None:
            outcome = tuple(id(alternative) for _, alternative in decisions)
            chosen = memo.get(outcome)
        if chosen is None:
            chosen_map = {id(node): alternative for node, alternative in decisions}
            chosen = self._rebuild_chosen(self.plan, chosen_map, {})
            if memo is not None:
                memo[outcome] = chosen
        cpu_seconds = time.perf_counter() - started
        report = StartupReport(
            decisions=len(decisions),
            cost_evaluations=size,
            cpu_seconds=cpu_seconds,
            io_seconds=access_module_read_seconds(self._node_count),
            node_count=self._node_count,
            choices=decisions,
        )
        return chosen, report

    def _rebuild_chosen(self, node, chosen_map, memo):
        """The static plan under the decisions, rebuilding only the
        chosen subgraph (losing alternatives are skipped entirely)."""
        cached = memo.get(id(node))
        if cached is not None:
            return cached
        if isinstance(node, ChoosePlan):
            result = self._rebuild_chosen(chosen_map[id(node)], chosen_map, memo)
        else:
            result = _rebuild(
                node,
                [
                    self._rebuild_chosen(child, chosen_map, memo)
                    for child in node.inputs()
                ],
            )
        memo[id(node)] = result
        return result

    def __repr__(self):
        return "CompiledDecision(%d nodes, %d decisions)" % (
            len(self._nodes),
            self.decision_count,
        )
