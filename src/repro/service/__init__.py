"""Long-lived query service: plan caching and concurrent start-up.

The paper's embedded-SQL scenario optimizes a query **once** and then
executes it many times with different parameter bindings, paying only
the cheap choose-plan start-up decision per invocation.  This package
turns that amortization argument into a running subsystem:

* :mod:`.cache` — an LRU cache of optimized dynamic plans keyed by the
  canonical query signature, with per-entry hit statistics, observed
  binding ranges, and staleness-driven re-optimization;
* :mod:`.service` — :class:`QueryService`, a thread-pooled front end
  over the optimizer and executor: repeated queries skip optimization
  entirely and go straight to the start-up decision procedure under
  fresh bindings;
* :mod:`.replay` — a workload replayer behind the
  ``python -m repro serve-batch`` CLI, reporting hit rate, start-up
  latency percentiles, and speedup versus optimize-per-query.
"""

from repro.service.cache import CacheStatistics, PlanCache, PlanCacheEntry
from repro.service.decision import CompiledDecision, DecisionCompilationError
from repro.service.replay import ReplayReport, render_report, replay_spec
from repro.service.service import (
    QueryService,
    ServiceRequest,
    ServiceResult,
    ServiceStatistics,
)

__all__ = [
    "CacheStatistics",
    "CompiledDecision",
    "DecisionCompilationError",
    "PlanCache",
    "PlanCacheEntry",
    "QueryService",
    "ReplayReport",
    "ServiceRequest",
    "ServiceResult",
    "ServiceStatistics",
    "render_report",
    "replay_spec",
]
