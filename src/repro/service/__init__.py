"""Long-lived query service: plan caching and concurrent start-up.

The paper's embedded-SQL scenario optimizes a query **once** and then
executes it many times with different parameter bindings, paying only
the cheap choose-plan start-up decision per invocation.  This package
turns that amortization argument into a running subsystem:

* :mod:`.cache` — an LRU cache of optimized dynamic plans keyed by the
  canonical query signature, with per-entry hit statistics, observed
  binding ranges, and staleness-driven re-optimization;
* :mod:`.service` — :class:`QueryService`, a thread-pooled front end
  over the optimizer and executor: repeated queries skip optimization
  entirely and go straight to the start-up decision procedure under
  fresh bindings;
* :mod:`.sharding` — :class:`ShardedQueryService`, a gateway over N
  shards that partition the plan cache by signature hash, with bounded
  admission queues, per-tenant quotas, and exactly aggregated
  statistics (the heavy-traffic serving tier);
* :mod:`.replay` — a workload replayer behind the
  ``python -m repro serve-batch`` CLI, reporting hit rate, start-up
  latency percentiles, and speedup versus optimize-per-query.
"""

from repro.service.cache import CacheStatistics, PlanCache, PlanCacheEntry
from repro.service.decision import CompiledDecision, DecisionCompilationError
from repro.service.replay import ReplayReport, render_report, replay_spec
from repro.service.service import (
    QueryService,
    ServiceRequest,
    ServiceResult,
    ServiceStatistics,
)
from repro.service.sharding import (
    ServiceShard,
    ShardedQueryService,
    ShardedServiceStatistics,
    shard_index_for,
)

__all__ = [
    "CacheStatistics",
    "CompiledDecision",
    "DecisionCompilationError",
    "PlanCache",
    "PlanCacheEntry",
    "QueryService",
    "ReplayReport",
    "ServiceRequest",
    "ServiceResult",
    "ServiceShard",
    "ServiceStatistics",
    "ShardedQueryService",
    "ShardedServiceStatistics",
    "render_report",
    "replay_spec",
    "shard_index_for",
]
