"""Long-lived query service: plan caching and concurrent start-up.

The paper's embedded-SQL scenario optimizes a query **once** and then
executes it many times with different parameter bindings, paying only
the cheap choose-plan start-up decision per invocation.  This package
turns that amortization argument into a running subsystem:

* :mod:`.cache` — an LRU cache of optimized dynamic plans keyed by the
  canonical query signature, with per-entry hit statistics, observed
  binding ranges, and staleness-driven re-optimization;
* :mod:`.service` — :class:`QueryService`, a thread-pooled front end
  over the optimizer and executor: repeated queries skip optimization
  entirely and go straight to the start-up decision procedure under
  fresh bindings;
* :mod:`.sharding` — :class:`ShardedQueryService`, a gateway over N
  shards that partition the plan cache by signature hash, with bounded
  admission queues, per-tenant quotas, and exactly aggregated
  statistics (the heavy-traffic serving tier);
* :mod:`.supervision` — :class:`ShardSupervisor`, health-checking the
  gateway's shard workers (progress heartbeats, hang detection) and
  restarting dead ones while the gateway fails affected requests over
  to siblings — typed and counted, never silently dropped;
* :mod:`.durability` — versioned, checksummed plan-cache snapshots
  with atomic write-rename and warm restore, so a restarted tier
  serves its hot set without re-optimizing it;
* :mod:`.replay` — a workload replayer behind the
  ``python -m repro serve-batch`` CLI, reporting hit rate, start-up
  latency percentiles, and speedup versus optimize-per-query.
"""

from repro.service.cache import CacheStatistics, PlanCache, PlanCacheEntry
from repro.service.decision import CompiledDecision, DecisionCompilationError
from repro.service.durability import (
    DurabilityConfig,
    RestoreStats,
    build_snapshot,
    read_snapshot,
    restore_gateway,
    restore_service,
    write_snapshot,
)
from repro.service.replay import ReplayReport, render_report, replay_spec
from repro.service.service import (
    QueryService,
    ServiceRequest,
    ServiceResult,
    ServiceStatistics,
)
from repro.service.sharding import (
    ServiceShard,
    ShardedQueryService,
    ShardedServiceStatistics,
    shard_index_for,
)
from repro.service.supervision import SHARD_STATES, ShardSupervisor

__all__ = [
    "CacheStatistics",
    "CompiledDecision",
    "DecisionCompilationError",
    "DurabilityConfig",
    "PlanCache",
    "PlanCacheEntry",
    "QueryService",
    "ReplayReport",
    "RestoreStats",
    "SHARD_STATES",
    "ServiceRequest",
    "ServiceResult",
    "ServiceShard",
    "ServiceStatistics",
    "ShardSupervisor",
    "ShardedQueryService",
    "ShardedServiceStatistics",
    "build_snapshot",
    "read_snapshot",
    "render_report",
    "replay_spec",
    "restore_gateway",
    "restore_service",
    "shard_index_for",
    "write_snapshot",
]
