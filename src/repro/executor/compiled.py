"""Pipeline fusion: generated Python closures for execution hot paths.

The vectorized engine (:mod:`repro.executor.vectorized`) amortizes
iterator dispatch over batches, but each streaming operator still
costs one generator resumption, one I/O-charging call, and one closure
call per batch — and inside a batch, filters and projections each run
their own comprehension over the same records.  This module removes
that remaining interpretation: it walks a physical plan, identifies
maximal *pipelines* — chains of streaming operators (filter, project,
hash-join probe) between pipeline breakers — and emits one generated
Python function per pipeline with every predicate comparison,
projection dict, and probe loop inlined.  One batch then flows through
a single stack frame from source to pipeline output.

What fuses, what breaks a pipeline
----------------------------------

Streaming steps, fused into the enclosing pipeline:

* ``Filter`` — the comparison is inlined (``r._fields['R1.a'] < v``);
* ``Project`` — the projected field dict is unrolled as a literal;
* ``HashJoin`` — the *probe* side continues the pipeline; the probe
  loop (hash lookup, record merge, residual equality checks) is
  inlined.  The build side is a pipeline boundary: it is compiled
  separately and drained into the hash table when the pipeline starts.

Everything else breaks a pipeline and keeps its batch iterator: scans
(the pipeline's *source*), ``Sort`` and ``MergeJoin`` (blocking),
``IndexJoin`` (already bulk-probing through the B-tree), ``ChoosePlan``
(decides at open, then the chosen alternative compiles as its own
subtree), and ``Materialized`` replays.

Semantics are the differential suite's invariant: identical result
rows, identical simulated I/O totals, and identical choose-plan
decisions as row and batch mode.  Each fused step charges exactly what
its interpreted operator charges (input records per step, matched
output records and spill pages for probes), unbound host variables
still defer their error to the first record so empty inputs never
raise, and every inlined fast path falls back per step to the
interpreted closure when a record lacks the exact qualified field.

Deadlines, faults, and tracing survive fusion at pipeline-breaker
boundaries: a fused pipeline checks the deadline at open and the
engine checks it between batches; fault-injection sites live in the
storage layer, below fusion; with a tracer attached each pipeline
records *one* operator span (labelled by its top node) while breakers
keep their own spans.

Caching
-------

Generated code is cached in a :class:`CompiledPlanProgram`, keyed by
the pipeline's *structural chain key* (per-step attribute/operator
descriptors) rather than node identity — start-up resolution rebuilds
plan nodes per invocation, but rebuilt chains share descriptors, so a
cached service entry compiles each distinct pipeline shape once.  The
service stores the program on the plan-cache entry next to the
compiled start-up decision procedure, and ``PlanCacheEntry.install``
drops both together: any plan replacement (first compilation,
staleness re-optimization) invalidates the generated pipelines with
the decision program.
"""

import threading

from repro.algebra.expressions import ComparisonOp
from repro.algebra.physical import (
    ChoosePlan,
    Filter,
    HashJoin,
    IndexJoin,
    Materialized,
    MergeJoin,
    Project,
    Sort,
)
from repro.common.units import pages_for_records
from repro.executor.iterators import join_sides
from repro.executor.predicates import (
    compile_batch_predicate,
    compile_comparison_parts,
)
from repro.executor.vectorized import (
    BatchPlanIterator,
    ChoosePlanBatchIterator,
    IndexJoinBatchIterator,
    MergeJoinBatchIterator,
    SortBatchIterator,
    _rebatch,
    build_batch_iterator,
)
from repro.storage.records import Record

__all__ = [
    "CompiledPlanProgram",
    "FusedPipeline",
    "build_compiled_iterator",
    "compile_plan",
]

#: Sentinel standing in for an unresolvable (unbound) operand value.
#: The generated code tests for it per batch, so a pipeline over an
#: empty input never touches the unbound variable — the interpreted
#: path's first-record error deferral.
_UNBOUND = object()

#: ComparisonOp values to the Python operator inlined in generated code.
_OP_SOURCE = {
    ComparisonOp.EQ: "==",
    ComparisonOp.NE: "!=",
    ComparisonOp.LT: "<",
    ComparisonOp.LE: "<=",
    ComparisonOp.GT: ">",
    ComparisonOp.GE: ">=",
}


def pipeline_chain(plan):
    """Split a plan into its top fused chain and the chain's source.

    Returns ``(steps, source)``: ``steps`` is the top-down list of
    ``(kind, node)`` streaming steps (possibly empty — the node is
    itself a breaker or a scan), ``source`` the first non-streaming
    descendant, whose batches feed the generated pipeline.
    """
    steps = []
    node = plan
    while True:
        if isinstance(node, Filter):
            steps.append(("filter", node))
            node = node.input
        elif isinstance(node, Project):
            steps.append(("project", node))
            node = node.input
        elif isinstance(node, HashJoin):
            steps.append(("probe", node))
            node = node.probe
        else:
            return steps, node


def chain_key(steps):
    """The structural cache key of a fused chain.

    Per-step descriptors only — attribute names, comparison operators,
    projection lists, join-key sides — never node identities: start-up
    resolution rebuilds ancestor nodes on every invocation, and two
    rebuilds of the same chain must hit the same generated code.
    """
    descriptors = []
    for kind, node in steps:
        if kind == "filter":
            comparison = getattr(node.predicate, "comparison", node.predicate)
            descriptors.append(("filter", comparison.attribute, comparison.op))
        elif kind == "project":
            descriptors.append(("project", tuple(node.attributes)))
        else:
            build_attr, probe_attr = join_sides(node.predicate, node.build)
            extras = tuple(
                (p.left_attribute, p.right_attribute)
                for p in node.predicates[1:]
            )
            descriptors.append(("probe", build_attr, probe_attr, extras))
    return tuple(descriptors)


# ----------------------------------------------------------------------
# Code generation
# ----------------------------------------------------------------------


def _emit_filter(lines, index, attribute, op):
    """Inline one filter step: charge input, test, fall back on miss."""
    field = repr(attribute)
    symbol = _OP_SOURCE[op]
    lines += [
        "            # filter %s %s ? [step %d]" % (attribute, symbol, index),
        "            charge(len(batch))",
        "            if v%d is _UNBOUND:" % index,
        "                batch = fb%d(batch)" % index,
        "            else:",
        "                try:",
        "                    batch = [",
        "                        r for r in batch",
        "                        if r._fields[%s] %s v%d" % (field, symbol, index),
        "                    ]",
        "                except KeyError:",
        "                    batch = fb%d(batch)" % index,
        "            if not batch:",
        "                continue",
    ]


def _emit_project(lines, index, attributes):
    """Inline one projection step as an unrolled field-dict literal."""
    literal = ", ".join("%r: _f[%r]" % (name, name) for name in attributes)
    lines += [
        "            # project {%s} [step %d]" % (", ".join(attributes), index),
        "            charge(len(batch))",
        "            try:",
        "                _out = []",
        "                _append = _out.append",
        "                for r in batch:",
        "                    _f = r._fields",
        "                    _p = _Record.__new__(_Record)",
        "                    _p._fields = {%s}" % literal,
        "                    _p.rid = None",
        "                    _append(_p)",
        "                batch = _out",
        "            except KeyError:",
        "                batch = [r.project(attrs%d) for r in batch]" % index,
    ]


def _emit_transform_stage(lines, stage_id, stage_steps):
    """One generator stage inlining a run of filter/project steps.

    ``stage_steps`` is a bottom-up list of ``(index, descriptor)``
    pairs; within a batch the step closest to the source runs first.
    """
    header = ["    def _stage%d(stream):" % stage_id,
              "        charge = ops.charge"]
    for index, descriptor in stage_steps:
        if descriptor[0] == "filter":
            header += ["        v%d = ops.v%d" % (index, index),
                       "        fb%d = ops.fb%d" % (index, index)]
        else:
            header += ["        attrs%d = ops.attrs%d" % (index, index)]
    lines += header
    lines += ["        for batch in stream:"]
    for index, descriptor in stage_steps:
        if descriptor[0] == "filter":
            _emit_filter(lines, index, descriptor[1], descriptor[2])
        else:
            _emit_project(lines, index, descriptor[1])
    lines += ["            yield batch",
              "    stream = _stage%d(stream)" % stage_id]


def _emit_key_lines(lines, indent, attribute, target="_keys"):
    """Exact-field key extraction with the whole-batch fallback."""
    field = repr(attribute)
    lines += [
        indent + "try:",
        indent + "    %s = [r._fields[%s] for r in batch]" % (target, field),
        indent + "except KeyError:",
        indent + "    %s = [r[%s] for r in batch]" % (target, field),
    ]


def _emit_probe_stage(lines, index, descriptor):
    """One generator stage for a hash-join probe step.

    The stage body runs on the pipeline's first pull — the same lazy
    timing as the interpreted hash join — draining the separately
    compiled build side into the hash table, spilling (with the row
    path's page charges) when the build overflows the memory grant,
    then streaming probe batches through the inlined match loop.
    """
    _kind, build_attr, probe_attr, extras = descriptor
    lines += [
        "    def _probe%d(stream):" % index,
        "        # hash probe on %s = %s [step %d]"
        % (build_attr, probe_attr, index),
        "        charge = ops.charge",
        "        _table = {}",
        "        _count = 0",
        "        for batch in ops.build%d.batches():" % index,
        "            charge(len(batch))",
        "            _count += len(batch)",
    ]
    _emit_key_lines(lines, "            ", build_attr)
    lines += [
        "            for record, key in zip(batch, _keys):",
        "                _bucket = _table.get(key)",
        "                if _bucket is None:",
        "                    _table[key] = [record]",
        "                else:",
        "                    _bucket.append(record)",
        "        _build_pages = ops.pages_for_records(_count)",
        "        _precharged = _build_pages > ops.memory",
        "        if _precharged:",
        "            _rows = []",
        "            for batch in stream:",
        "                charge(len(batch))",
        "                _rows.extend(batch)",
        "            _spill = _build_pages + ops.pages_for_records(len(_rows))",
        "            ops.charge_page_writes(_spill)",
        "            ops.charge_page_reads(_spill)",
        "            stream = ops.rebatch(_rows)",
        "        _get = _table.get",
        "        for batch in stream:",
        "            if not _precharged:",
        "                charge(len(batch))",
    ]
    _emit_key_lines(lines, "            ", probe_attr)
    if extras:
        residual = " and ".join(
            "_merged[%r] == _merged[%r]" % pair for pair in extras
        )
        match_lines = [
            "                    _merged = _m.merged_with(record)",
            "                    if %s:" % residual,
            "                        _append(_merged)",
        ]
    else:
        match_lines = [
            "                    _append(_m.merged_with(record))",
        ]
    lines += [
        "            _matched = []",
        "            _append = _matched.append",
        "            for record, key in zip(batch, _keys):",
        "                for _m in _get(key, ()):",
    ]
    lines += match_lines
    lines += [
        "            if _matched:",
        "                charge(len(_matched))",
        "                yield _matched",
        "    stream = _probe%d(stream)" % index,
    ]


def generate_pipeline_source(key):
    """Python source of the fused pipeline for one structural key.

    The function composes generator *stages* — one per maximal run of
    filter/project steps plus one per probe step — wired bottom-up, so
    per-record work is fully inlined and per-batch overhead is one
    frame per stage.  Everything execution-specific (operand values,
    fallback closures, build-side iterators, the memory grant) arrives
    through the ``ops`` namespace bound fresh per execution.
    """
    lines = [
        "def _pipeline(source, ops):",
        "    # generated by repro.executor.compiled for chain:",
    ]
    for descriptor in key:
        lines.append("    #   %r" % (descriptor,))
    lines += ["    stream = source"]
    stage_id = 0
    pending = []  # bottom-up (index, descriptor) run of filter/project
    for position in range(len(key) - 1, -1, -1):
        descriptor = key[position]
        if descriptor[0] == "probe":
            if pending:
                _emit_transform_stage(lines, stage_id, pending)
                stage_id += 1
                pending = []
            _emit_probe_stage(lines, position, descriptor)
        else:
            pending.append((position, descriptor))
    if pending:
        _emit_transform_stage(lines, stage_id, pending)
    lines += ["    return stream"]
    return "\n".join(lines) + "\n"


def _compile_source(source):
    """Exec generated source into its pipeline factory function."""
    namespace = {"_Record": Record, "_UNBOUND": _UNBOUND}
    exec(compile(source, "<repro.executor.compiled>", "exec"), namespace)
    factory = namespace["_pipeline"]
    factory.source = source
    return factory


class CompiledPlanProgram:
    """Thread-safe cache of generated pipeline functions for one plan.

    Lives on a plan-cache entry next to the compiled start-up decision
    program and is invalidated together with it (``install`` replaces
    both).  Keys are structural (:func:`chain_key`), so the chains of
    every start-up-resolved variant of the plan — rebuilt nodes and
    all — share one compilation each.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._factories = {}
        #: Factory lookups served (fused pipeline opens).
        self.requests = 0
        #: Code-generation runs (lookup misses).
        self.compilations = 0
        #: Factory entries dropped by mid-query switches
        #: (:meth:`invalidate_downstream`).
        self.invalidations = 0

    def pipeline_factory(self, steps):
        """The generated function for a chain, compiling on first use."""
        key = chain_key(steps)
        with self._lock:
            self.requests += 1
            factory = self._factories.get(key)
            if factory is None:
                factory = _compile_source(generate_pipeline_source(key))
                self._factories[key] = factory
                self.compilations += 1
            return factory

    def precompile(self, plan):
        """Generate code for every pipeline reachable from ``plan``.

        Walks the full DAG — choose-plan alternatives included, so the
        start-up decision never stalls on first-execution codegen —
        and warms the factory cache.  Returns ``self`` for chaining.
        """
        seen = set()
        stack = [plan]
        while stack:
            node = stack.pop()
            if id(node) in seen or node is None:
                continue
            seen.add(id(node))
            steps, source = pipeline_chain(node)
            if steps:
                self.pipeline_factory(steps)
                for kind, step_node in steps:
                    if kind == "probe":
                        stack.append(step_node.build)
                stack.append(source)
            elif isinstance(node, Sort):
                stack.append(node.input)
            elif isinstance(node, MergeJoin):
                stack.extend((node.left, node.right))
            elif isinstance(node, IndexJoin):
                stack.append(node.outer)
            elif isinstance(node, ChoosePlan):
                stack.extend(node.alternatives)
            elif isinstance(node, Materialized):
                stack.append(node.original)
        return self

    def _pipelines(self, plan):
        """Every ``(top_node, steps)`` pipeline reachable from ``plan``."""
        seen = set()
        stack = [plan]
        found = []
        while stack:
            node = stack.pop()
            if id(node) in seen or node is None:
                continue
            seen.add(id(node))
            steps, source = pipeline_chain(node)
            if steps:
                found.append((node, steps))
                for kind, step_node in steps:
                    if kind == "probe":
                        stack.append(step_node.build)
                stack.append(source)
            elif isinstance(node, Sort):
                stack.append(node.input)
            elif isinstance(node, MergeJoin):
                stack.extend((node.left, node.right))
            elif isinstance(node, IndexJoin):
                stack.append(node.outer)
            elif isinstance(node, ChoosePlan):
                stack.extend(node.alternatives)
            elif isinstance(node, Materialized):
                stack.append(node.original)
        return found

    def invalidate_downstream(self, plan, breaker):
        """Drop fused pipelines downstream of a pipeline breaker.

        The mid-query re-optimizer's invalidation contract: after a
        plan switch at ``breaker``, every generated pipeline on the
        path from ``plan``'s root down to the breaker may no longer
        match the spliced plan's operator chains, so their factory
        entries are dropped and will recompile on demand.  Chain keys
        are structural, so a dropped key that some unchanged subtree
        happens to share simply recompiles once more — correctness
        never depends on the cache.  Returns the number of entries
        dropped.
        """
        parents = {}
        for node in plan.walk_unique():
            for child in node.inputs():
                parents.setdefault(id(child), []).append(node)
        ancestors = set()
        queue = list(parents.get(id(breaker), ()))
        while queue:
            node = queue.pop()
            if id(node) in ancestors:
                continue
            ancestors.add(id(node))
            queue.extend(parents.get(id(node), ()))
        dropped = 0
        with self._lock:
            for top, steps in self._pipelines(plan):
                if id(top) not in ancestors:
                    continue
                key = chain_key(steps)
                if key in self._factories:
                    del self._factories[key]
                    dropped += 1
            self.invalidations += dropped
        return dropped

    def __len__(self):
        with self._lock:
            return len(self._factories)

    def __repr__(self):
        return "CompiledPlanProgram(%d pipelines, %d requests)" % (
            len(self),
            self.requests,
        )


def compile_plan(plan):
    """Precompile every pipeline of a plan into a fresh program."""
    return CompiledPlanProgram().precompile(plan)


class _PipelineOps:
    """Per-execution bindings the generated code reads off ``ops``."""


class FusedPipeline(BatchPlanIterator):
    """A fused chain driven by its generated pipeline function.

    Presents the standard batch-iterator protocol (so the engine drive
    loop, the tracer, and enclosing breakers treat it like any
    operator) with ``plan`` set to the chain's top node — the label of
    the pipeline's single trace span.
    """

    def __init__(self, plan, context, program, steps, source_plan):
        super().__init__(plan, context)
        self._program = program
        self._steps = steps
        self._source_plan = source_plan

    def _build_child(self, plan):
        return build_compiled_iterator(plan, self.context, self._program)

    def _bind_ops(self):
        """Resolve the chain's execution-specific values into ``ops``.

        Filter operands resolve against the current bindings (the
        :data:`_UNBOUND` sentinel preserves first-record error
        deferral); probe steps get their build side as a separately
        compiled iterator; the memory grant and spill charging close
        over the context exactly as the interpreted hash join does.
        """
        context = self.context
        io_stats = context.io_stats
        batch_size = context.batch_size
        ops = _PipelineOps()
        ops.charge = io_stats.charge_records
        ops.charge_page_writes = io_stats.charge_page_writes
        ops.charge_page_reads = io_stats.charge_page_reads
        ops.pages_for_records = pages_for_records
        ops.memory = context.memory_pages
        ops.rebatch = lambda rows: _rebatch(rows, batch_size)
        for index, (kind, node) in enumerate(self._steps):
            if kind == "filter":
                parts = compile_comparison_parts(
                    node.predicate, context.bindings
                )
                setattr(
                    ops,
                    "v%d" % index,
                    _UNBOUND if parts is None else parts[2],
                )
                setattr(
                    ops,
                    "fb%d" % index,
                    compile_batch_predicate(node.predicate, context.bindings),
                )
            elif kind == "project":
                setattr(ops, "attrs%d" % index, node.attributes)
            else:
                setattr(ops, "build%d" % index, self._build_child(node.build))
        return ops

    def _produce_batches(self):
        factory = self._program.pipeline_factory(self._steps)
        source = self._build_child(self._source_plan)
        return factory(source.batches(), self._bind_ops())


class _CompiledChildMixin:
    """Route a breaker's child construction through the compiler."""

    def __init__(self, plan, context, program):
        super().__init__(plan, context)
        self._program = program

    def _build_child(self, plan):
        return build_compiled_iterator(plan, self.context, self._program)


class CompiledSortIterator(_CompiledChildMixin, SortBatchIterator):
    """Sort breaker whose input compiles into fused pipelines."""


class CompiledMergeJoinIterator(_CompiledChildMixin, MergeJoinBatchIterator):
    """Merge-join breaker with compiled inputs."""


class CompiledIndexJoinIterator(_CompiledChildMixin, IndexJoinBatchIterator):
    """Index-join breaker whose outer input compiles."""


class CompiledChoosePlanIterator(_CompiledChildMixin, ChoosePlanBatchIterator):
    """Choose-plan breaker: decides at open (recording its decisions
    through the context as ever), then compiles the chosen subtree."""


def build_compiled_iterator(plan, context, program=None):
    """Construct the compiled-execution iterator tree for a plan.

    Fusable chains become :class:`FusedPipeline`; breakers keep their
    vectorized iterators but build *their* children through the
    compiler; scans and materialized replays are plain batch
    iterators.  ``program`` carries the generated-code cache across
    the whole tree (and, via the service's plan-cache entry, across
    invocations); ``None`` compiles into a fresh throwaway program.
    """
    if program is None:
        program = CompiledPlanProgram()
    steps, source = pipeline_chain(plan)
    if steps:
        return FusedPipeline(plan, context, program, steps, source)
    if isinstance(plan, Sort):
        return CompiledSortIterator(plan, context, program)
    if isinstance(plan, MergeJoin):
        return CompiledMergeJoinIterator(plan, context, program)
    if isinstance(plan, IndexJoin):
        return CompiledIndexJoinIterator(plan, context, program)
    if isinstance(plan, ChoosePlan):
        return CompiledChoosePlanIterator(plan, context, program)
    return build_batch_iterator(plan, context)
