"""The execution engine: Volcano-style iterators, access modules, and
start-up-time machinery.

The choose-plan operator — the run-time primitive of the 1989 paper —
lives here: at plan activation its decision procedure re-evaluates the
alternatives' cost functions under the instantiated bindings (with
DAG-shared subplan costs computed once) and executes the cheapest
alternative.
"""

from repro.executor.access_module import AccessModule
from repro.executor.adaptive import (
    AdaptiveExecutor,
    AdaptiveReport,
    execute_adaptively,
)
from repro.executor.compiled import (
    CompiledPlanProgram,
    FusedPipeline,
    build_compiled_iterator,
    compile_plan,
)
from repro.executor.engine import (
    EXECUTION_MODES,
    ExecutionContext,
    ExecutionResult,
    execute_plan,
)
from repro.executor.midquery import (
    BREAKER_KINDS,
    BreakerEvent,
    IncrementalDecider,
    MidQueryReport,
    ReoptPolicy,
    execute_midquery,
)
from repro.executor.plan_store import PlanStore
from repro.executor.shrinking import ShrinkingAccessModule
from repro.executor.startup import StartupReport, activate_plan, resolve_dynamic_plan
from repro.executor.validation import node_is_feasible, validate_plan

__all__ = [
    "BREAKER_KINDS",
    "EXECUTION_MODES",
    "AccessModule",
    "AdaptiveExecutor",
    "AdaptiveReport",
    "BreakerEvent",
    "CompiledPlanProgram",
    "ExecutionContext",
    "ExecutionResult",
    "FusedPipeline",
    "IncrementalDecider",
    "MidQueryReport",
    "PlanStore",
    "ReoptPolicy",
    "build_compiled_iterator",
    "compile_plan",
    "execute_midquery",
    "ShrinkingAccessModule",
    "StartupReport",
    "activate_plan",
    "execute_adaptively",
    "execute_plan",
    "node_is_feasible",
    "resolve_dynamic_plan",
    "validate_plan",
]
