"""Plan shrinking: the self-replacing access module of Section 4.

"During each invocation, the access module keeps statistics indicating
which components of the dynamic plan were actually used.  After a
number of invocations, say 100, the access module ... replaces itself
with a dynamic-plan access module that contains only those components
that have been used before."

The paper leaves the analysis of this heuristic to later research; we
implement it as an optional wrapper so its size/robustness trade-off
can be measured (see ``benchmarks/bench_shrinking.py``).
"""

from repro.algebra.physical import (
    ChoosePlan,
    Filter,
    HashJoin,
    IndexJoin,
    MergeJoin,
    Project,
    Sort,
)
from repro.executor.access_module import AccessModule
from repro.executor.startup import resolve_dynamic_plan


class ShrinkingAccessModule:
    """An access module that drops never-chosen alternatives over time.

    ``shrink_after`` invocations trigger self-replacement; statistics
    are kept per choose-plan node (by plan signature, so they survive
    re-materialization of the module).
    """

    def __init__(self, plan, catalog, parameter_space, query_name="query",
                 shrink_after=100):
        self.catalog = catalog
        self.parameter_space = parameter_space
        self.query_name = query_name
        self.shrink_after = int(shrink_after)
        self.module = AccessModule.from_plan(plan, query_name)
        self.invocations_since_shrink = 0
        self.total_invocations = 0
        self.shrink_count = 0
        #: choose-plan signature -> set of chosen-alternative signatures
        self._usage = {}

    # ------------------------------------------------------------------
    # Invocation
    # ------------------------------------------------------------------

    def activate(self, bindings):
        """One invocation: resolve decisions, record usage, maybe shrink.

        Returns ``(chosen_static_plan, startup_report)``.
        """
        plan = self.module.materialize()
        chosen, report = self._resolve_and_record(plan, bindings)
        self.invocations_since_shrink += 1
        self.total_invocations += 1
        if self.invocations_since_shrink >= self.shrink_after:
            self.shrink()
        return chosen, report

    def _resolve_and_record(self, plan, bindings):
        chosen, report = resolve_dynamic_plan(
            plan, self.catalog, self.parameter_space, bindings
        )
        # The resolution pass logged exactly which alternative each
        # choose-plan node picked; remember them by signature so the
        # statistics survive re-materialization of the module.
        for choose_node, alternative in report.choices:
            usage = self._usage.setdefault(choose_node.signature(), set())
            usage.add(alternative.signature())
        return chosen, report

    # ------------------------------------------------------------------
    # Shrinking
    # ------------------------------------------------------------------

    def shrink(self):
        """Replace the module with one containing only used components.

        Choose-plan nodes left with a single used alternative collapse
        to that alternative; nodes with several used alternatives stay
        dynamic.  This is deliberately heuristic: an alternative that
        was never optimal so far may still be optimal for future
        bindings (the trade-off the paper points out).
        """
        plan = self.module.materialize()
        rebuilt = self._shrink_node(plan, {})
        self.module = AccessModule.from_plan(rebuilt, self.query_name)
        self.invocations_since_shrink = 0
        self.shrink_count += 1
        return self.module

    def _shrink_node(self, node, cache):
        cached = cache.get(id(node))
        if cached is not None:
            return cached[1]
        if isinstance(node, ChoosePlan):
            used_signatures = self._usage.get(node.signature())
            if used_signatures:
                survivors = [
                    alternative
                    for alternative in node.alternatives
                    if alternative.signature() in used_signatures
                ]
            else:
                survivors = list(node.alternatives)
            survivors = [self._shrink_node(s, cache) for s in survivors]
            if len(survivors) == 1:
                result = survivors[0]
            else:
                result = ChoosePlan(survivors)
        else:
            children = [self._shrink_node(child, cache) for child in node.inputs()]
            result = _copy_onto(node, children)
        cache[id(node)] = (node, result)
        return result

    @property
    def node_count(self):
        """Current module size in operator nodes."""
        return self.module.node_count

    def __repr__(self):
        return "ShrinkingAccessModule(%s, %d nodes, %d shrinks)" % (
            self.query_name,
            self.node_count,
            self.shrink_count,
        )


def _copy_onto(node, children):
    """Rebuild a non-choose node over (possibly) new children."""
    old = list(node.inputs())
    if all(new is previous for new, previous in zip(children, old)):
        return node
    if isinstance(node, Filter):
        return Filter(children[0], node.predicate)
    if isinstance(node, HashJoin):
        return HashJoin(children[0], children[1], node.predicates)
    if isinstance(node, MergeJoin):
        return MergeJoin(children[0], children[1], node.predicates)
    if isinstance(node, IndexJoin):
        return IndexJoin(
            children[0],
            node.inner_relation,
            node.inner_attribute,
            node.predicates,
            residual_predicate=node.residual_predicate,
        )
    if isinstance(node, Sort):
        return Sort(children[0], node.attribute)
    if isinstance(node, Project):
        return Project(children[0], node.attributes)
    return node
