"""Vectorized (batch-at-a-time) execution of the physical algebra.

The Volcano iterators in :mod:`repro.executor.iterators` move one
record per ``next()`` through a chain of Python generators, so on the
service hot path the interpreter's per-record dispatch dominates the
simulated I/O.  This module executes the same physical plans
batch-at-a-time: every operator consumes and produces *lists* of
records (:data:`DEFAULT_BATCH_SIZE` records by default, configurable
through :class:`~repro.executor.engine.ExecutionContext`), which
amortizes generator resumption, I/O-charging calls, and predicate
dispatch over a whole batch.

Semantics are byte-identical to row mode — same result rows in the
same order, same simulated page/record I/O totals, same choose-plan
decisions — because batching changes only *when* work happens, never
*what* work happens:

* scans emit page-aligned batches (whole heap pages per batch) and
  charge exactly the row path's per-page and per-record I/O;
* filters apply one precompiled predicate closure
  (:mod:`repro.executor.predicates`) over a batch in a single
  comprehension;
* hash joins build their table in one pass over the build side's
  batches and probe per-batch; the memory-overflow spill charge uses
  the same build/probe page counts as the row path;
* choose-plan resolves its decision procedure at open — before any
  batch flows — and then delegates wholesale to the chosen child's
  batch stream, so dynamic plans vectorize for free;
* blocking operators (sort, merge join) materialize exactly what the
  row path materializes.

The differential suite in ``tests/test_vectorized.py`` holds the
row/batch equivalence over all five paper queries, static and
dynamic, traced and untraced.
"""

from repro.algebra.physical import (
    BTreeScan,
    ChoosePlan,
    FileScan,
    Filter,
    FilterBTreeScan,
    HashJoin,
    IndexJoin,
    Materialized,
    MergeJoin,
    Project,
    Sort,
)
from repro.common.errors import ExecutionError
from repro.common.units import pages_for_records
from repro.executor.iterators import (
    _scan_buffer,
    index_join_outer_attribute,
    join_sides,
)
from repro.executor.predicates import (
    compile_batch_predicate,
    compile_comparison_parts,
    compile_predicate,
)

#: Records per batch when the execution context does not override it.
DEFAULT_BATCH_SIZE = 1024


def build_batch_iterator(plan, context):
    """Construct the batch-iterator tree for a physical plan DAG."""
    if isinstance(plan, FileScan):
        return FileScanBatchIterator(plan, context)
    if isinstance(plan, BTreeScan):
        return BTreeScanBatchIterator(plan, context)
    if isinstance(plan, FilterBTreeScan):
        return FilterBTreeScanBatchIterator(plan, context)
    if isinstance(plan, Filter):
        return FilterBatchIterator(plan, context)
    if isinstance(plan, HashJoin):
        return HashJoinBatchIterator(plan, context)
    if isinstance(plan, MergeJoin):
        return MergeJoinBatchIterator(plan, context)
    if isinstance(plan, IndexJoin):
        return IndexJoinBatchIterator(plan, context)
    if isinstance(plan, Project):
        return ProjectBatchIterator(plan, context)
    if isinstance(plan, Sort):
        return SortBatchIterator(plan, context)
    if isinstance(plan, ChoosePlan):
        return ChoosePlanBatchIterator(plan, context)
    if isinstance(plan, Materialized):
        return MaterializedBatchIterator(plan, context)
    raise ExecutionError("no batch iterator for operator %r" % plan)


class BatchPlanIterator:
    """Base class: the open/next-batch/close protocol.

    ``_produce_batches`` returns an iterator of non-empty record
    lists.  Mirrors :class:`~repro.executor.iterators.PlanIterator`:
    with a tracer on the context the batch stream is wrapped in a
    counting span (rows advance by batch length); without one the
    only overhead is a single ``is None`` test at open.
    """

    def __init__(self, plan, context):
        self.plan = plan
        self.context = context
        self._stream = None

    def _build_child(self, plan):
        """Construct a child iterator.

        The single indirection the compiled executor hooks: pipeline
        fusion (:mod:`repro.executor.compiled`) subclasses these
        iterators and overrides ``_build_child`` so subtrees build
        through the pipeline compiler instead.
        """
        return build_batch_iterator(plan, self.context)

    def open(self):
        """Prepare the batch stream; idempotent.

        Checks the context deadline first, mirroring the row engine:
        an expired query cancels at open, before any batch flows.
        """
        if self._stream is None:
            deadline = self.context.deadline
            if deadline is not None:
                deadline.check()
            tracer = self.context.tracer
            if tracer is None:
                self._stream = self._produce_batches()
            else:
                self._stream = tracer.instrument_batches(self)
        return self

    def batches(self):
        """The operator's batch stream (opens on first use)."""
        self.open()
        return self._stream

    def __iter__(self):
        return self.batches()

    def records(self):
        """Flatten the batch stream back into single records."""
        for batch in self.batches():
            yield from batch

    def close(self):
        """Release resources."""
        self._stream = None

    @property
    def batch_size(self):
        """Target records per batch, from the execution context."""
        return self.context.batch_size

    @property
    def io_stats(self):
        """Shared I/O accounting."""
        return self.context.io_stats

    def _produce_batches(self):
        raise NotImplementedError


class FileScanBatchIterator(BatchPlanIterator):
    """Sequential heap scan emitting page-aligned batches."""

    def _produce_batches(self):
        heap = self.context.database.heap(self.plan.relation_name)
        return heap.scan_batches(self.batch_size, self.context.buffer_pool)


class BTreeScanBatchIterator(BatchPlanIterator):
    """Full B-tree scan in key order, heap fetches bulked per batch.

    RIDs are gathered from the leaf chain in batch-size chunks and the
    heap records fetched with :meth:`~repro.storage.heapfile.HeapFile.
    fetch_many`, which charges the identical per-RID page/record totals
    in two bulk calls instead of two per record — the difference that
    made small index-driven plans *slower* in batch mode than row mode.
    """

    def _produce_batches(self):
        database = self.context.database
        plan = self.plan
        btree = database.btree(plan.relation_name, plan.attribute)
        heap = database.heap(plan.relation_name)
        pool = _scan_buffer(self.context, plan.relation_name, plan.attribute)
        batch_size = self.batch_size

        def generate():
            fetch_many = heap.fetch_many
            rids = []
            append = rids.append
            for _key, rid in btree.range_scan():
                append(rid)
                if len(rids) >= batch_size:
                    yield fetch_many(rids, pool)
                    rids = []
                    append = rids.append
            if rids:
                yield fetch_many(rids, pool)

        return generate()


class FilterBTreeScanBatchIterator(BatchPlanIterator):
    """Sargable index scan over the predicate's key range, batched.

    Qualifying RIDs are bulk-fetched per chunk (see
    :class:`BTreeScanBatchIterator`) and the full predicate is
    re-applied over the fetched chunk with one compiled batch closure
    (exact semantics for the exclusive operators).
    """

    def _produce_batches(self):
        database = self.context.database
        plan = self.plan
        btree = database.btree(plan.relation_name, plan.attribute)
        heap = database.heap(plan.relation_name)
        low, high = self._key_range()
        pool = _scan_buffer(self.context, plan.relation_name, plan.attribute)
        filter_batch = compile_batch_predicate(
            plan.predicate, self.context.bindings
        )
        batch_size = self.batch_size

        def generate():
            fetch_many = heap.fetch_many
            rids = []
            append = rids.append
            for _key, rid in btree.range_scan(low, high):
                append(rid)
                if len(rids) >= batch_size:
                    batch = filter_batch(fetch_many(rids, pool))
                    rids = []
                    append = rids.append
                    if batch:
                        yield batch
            if rids:
                batch = filter_batch(fetch_many(rids, pool))
                if batch:
                    yield batch

        return generate()

    def _key_range(self):
        comparison = self.plan.predicate.comparison
        value = comparison.operand.resolve(self.context.bindings)
        op = comparison.op.value
        if op == "=":
            return value, value
        if op in ("<", "<="):
            return None, value
        if op in (">", ">="):
            return value, None
        # Not sargable (<>): full range, predicate filters.
        return None, None


class FilterBatchIterator(BatchPlanIterator):
    """Predicate filter: one compiled closure over each input batch."""

    def _produce_batches(self):
        child = self._build_child(self.plan.input)
        filter_batch = compile_batch_predicate(
            self.plan.predicate, self.context.bindings
        )

        def generate():
            charge = self.io_stats.charge_records
            for batch in child.batches():
                charge(len(batch))
                passed = filter_batch(batch)
                if passed:
                    yield passed

        return generate()


def _batch_values(batch, attribute):
    """One attribute's value per record of a batch.

    Fast path: direct exact-key access into each record's field dict;
    if any record lacks the exact qualified key, the whole batch
    falls back to :class:`~repro.storage.records.Record` indexing
    (suffix matching), preserving interpreted semantics.
    """
    try:
        return [record._fields[attribute] for record in batch]
    except KeyError:
        return [record[attribute] for record in batch]


def _compile_extra_predicates(predicates):
    """Closure checking the secondary join predicates, or ``None``.

    The attribute pairs are extracted once so the per-record check is
    plain record indexing, matching the row path's
    ``_extra_predicates_hold`` semantics exactly.
    """
    pairs = [(p.left_attribute, p.right_attribute) for p in predicates[1:]]
    if not pairs:
        return None

    def holds(merged):
        for left, right in pairs:
            if merged[left] != merged[right]:
                return False
        return True

    return holds


class HashJoinBatchIterator(BatchPlanIterator):
    """Hash join: build in one pass, probe per batch.

    The build table is assembled from the build side's batches before
    any output flows; probing then streams batch-by-batch.  When the
    build side overflows memory the probe side is materialized first
    (exactly what the row path does) so the spill charge uses the
    same total page counts.
    """

    def _produce_batches(self):
        plan = self.plan
        build_child = self._build_child(plan.build)
        probe_child = self._build_child(plan.probe)
        build_attr, probe_attr = join_sides(plan.predicate, plan.build)
        extra = _compile_extra_predicates(plan.predicates)
        memory = self.context.memory_pages
        batch_size = self.batch_size

        def probe_batch(table, batch):
            matched = []
            append = matched.append
            get = table.get
            for record, key in zip(batch, _batch_values(batch, probe_attr)):
                for match in get(key, ()):
                    merged = match.merged_with(record)
                    if extra is None or extra(merged):
                        append(merged)
            return matched

        def generate():
            charge = self.io_stats.charge_records
            table = {}
            build_count = 0
            for batch in build_child.batches():
                charge(len(batch))
                build_count += len(batch)
                for record, key in zip(batch, _batch_values(batch, build_attr)):
                    bucket = table.get(key)
                    if bucket is None:
                        table[key] = [record]
                    else:
                        bucket.append(record)
            build_pages = pages_for_records(build_count)
            if build_pages > memory:
                probe_records = []
                for batch in probe_child.batches():
                    charge(len(batch))
                    probe_records.extend(batch)
                spill_pages = build_pages + pages_for_records(len(probe_records))
                self.io_stats.charge_page_writes(spill_pages)
                self.io_stats.charge_page_reads(spill_pages)
                probe_batches = _rebatch(probe_records, batch_size)
            else:
                def charged_batches():
                    for batch in probe_child.batches():
                        charge(len(batch))
                        yield batch

                probe_batches = charged_batches()
            for batch in probe_batches:
                matched = probe_batch(table, batch)
                if matched:
                    charge(len(matched))
                    yield matched

        return generate()


class MergeJoinBatchIterator(BatchPlanIterator):
    """Merge join of two sorted inputs, output re-batched."""

    def _produce_batches(self):
        plan = self.plan
        left_records = _drain(self._build_child(plan.left))
        right_records = _drain(self._build_child(plan.right))
        left_attr, right_attr = join_sides(plan.predicate, plan.left)
        extra = _compile_extra_predicates(plan.predicates)
        batch_size = self.batch_size

        def generate():
            charge = self.io_stats.charge_records
            charge(len(left_records) + len(right_records))
            left_keys = _batch_values(left_records, left_attr)
            right_keys = _batch_values(right_records, right_attr)
            out = []
            left_index = 0
            right_index = 0
            while left_index < len(left_records) and right_index < len(right_records):
                left_key = left_keys[left_index]
                right_key = right_keys[right_index]
                if left_key < right_key:
                    left_index += 1
                elif left_key > right_key:
                    right_index += 1
                else:
                    # Gather the duplicate blocks on both sides.
                    left_end = left_index
                    while (
                        left_end < len(left_records)
                        and left_keys[left_end] == left_key
                    ):
                        left_end += 1
                    right_end = right_index
                    while (
                        right_end < len(right_records)
                        and right_keys[right_end] == right_key
                    ):
                        right_end += 1
                    for i in range(left_index, left_end):
                        left_record = left_records[i]
                        for j in range(right_index, right_end):
                            merged = left_record.merged_with(right_records[j])
                            if extra is None or extra(merged):
                                out.append(merged)
                    left_index = left_end
                    right_index = right_end
                    if len(out) >= batch_size:
                        charge(len(out))
                        yield out
                        out = []
            if out:
                charge(len(out))
                yield out

        return generate()


class IndexJoinBatchIterator(BatchPlanIterator):
    """Index nested-loop join probing the inner B-tree per outer record."""

    def _produce_batches(self):
        plan = self.plan
        outer_child = self._build_child(plan.outer)
        database = self.context.database
        btree = database.btree(plan.inner_relation, plan.inner_attribute)
        heap = database.heap(plan.inner_relation)
        outer_attr = index_join_outer_attribute(plan)
        pool = _scan_buffer(self.context, plan.inner_relation, plan.inner_attribute)
        residual_parts = None
        residual = None
        if plan.residual_predicate is not None:
            residual_parts = compile_comparison_parts(
                plan.residual_predicate, self.context.bindings
            )
            if residual_parts is None:  # unbound operand: defer the error
                residual = compile_predicate(
                    plan.residual_predicate, self.context.bindings
                )
        extra = _compile_extra_predicates(plan.predicates)

        def generate():
            charge = self.io_stats.charge_records
            search_many = btree.search_many
            fetch_many = heap.fetch_many
            for batch in outer_child.batches():
                charge(len(batch))
                rid_lists = search_many(_batch_values(batch, outer_attr))
                outers = []
                rids = []
                for outer_record, matches in zip(batch, rid_lists):
                    if matches:
                        outers.extend([outer_record] * len(matches))
                        rids.extend(matches)
                if not rids:
                    continue
                inners = fetch_many(rids, pool)
                if residual_parts is not None:
                    attr, compare, value = residual_parts
                    try:
                        mask = [compare(i._fields[attr], value) for i in inners]
                    except KeyError:
                        mask = [compare(i[attr], value) for i in inners]
                    pairs = (
                        (o, i)
                        for o, i, keep in zip(outers, inners, mask)
                        if keep
                    )
                elif residual is not None:
                    pairs = (
                        (o, i) for o, i in zip(outers, inners) if residual(i)
                    )
                else:
                    pairs = zip(outers, inners)
                if extra is None:
                    out = [o.merged_with(i) for o, i in pairs]
                else:
                    out = [
                        m
                        for o, i in pairs
                        if extra(m := o.merged_with(i))
                    ]
                if out:
                    charge(len(out))
                    yield out

        return generate()


class SortBatchIterator(BatchPlanIterator):
    """Sort enforcer: materializes, orders, re-emits in batches."""

    def _produce_batches(self):
        attribute = self.plan.attribute
        records = _drain(self._build_child(self.plan.input))
        batch_size = self.batch_size

        def generate():
            self.io_stats.charge_records(len(records))
            pages = pages_for_records(len(records))
            if pages > self.context.memory_pages:
                self.io_stats.charge_page_writes(pages)
                self.io_stats.charge_page_reads(pages)
            try:
                ordered = sorted(records, key=lambda r: r._fields[attribute])
            except KeyError:
                ordered = sorted(records, key=lambda r: r[attribute])
            yield from _rebatch(ordered, batch_size)

        return generate()


class ProjectBatchIterator(BatchPlanIterator):
    """Attribute projection applied over whole batches."""

    def _produce_batches(self):
        child = self._build_child(self.plan.input)
        attributes = self.plan.attributes

        def generate():
            charge = self.io_stats.charge_records
            for batch in child.batches():
                charge(len(batch))
                yield [record.project(attributes) for record in batch]

        return generate()


class ChoosePlanBatchIterator(BatchPlanIterator):
    """Choose-plan: decide at open, delegate batches wholesale.

    The decision procedure runs *before any batch flows* — identical
    timing to the row path — and the chosen alternative's batch
    stream is returned as-is, so choose-plan adds zero per-batch
    overhead.
    """

    def _produce_batches(self):
        chosen = self.choose()
        return self._build_child(chosen).batches()

    def choose(self):
        """The resolved plan the decision procedure selects."""
        from repro.executor.startup import resolve_dynamic_plan

        chosen, report = resolve_dynamic_plan(
            self.plan,
            self.context.database.catalog,
            self.context.parameter_space,
            self.context.bindings,
        )
        for choose_node, alternative in report.choices:
            self.context.record_decision(choose_node, alternative)
        return chosen


class MaterializedBatchIterator(BatchPlanIterator):
    """Replays a run-time temporary result in batches."""

    def _produce_batches(self):
        return _rebatch(self.plan.records, self.batch_size)


def _drain(batch_iterator):
    """Materialize a batch stream into one flat record list."""
    records = []
    for batch in batch_iterator.batches():
        records.extend(batch)
    return records


def _rebatch(records, batch_size):
    """Slice a record list into batches of ``batch_size``."""
    return (
        records[start : start + batch_size]
        for start in range(0, len(records), batch_size)
    )
