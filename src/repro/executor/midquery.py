"""Mid-query re-optimization at pipeline breakers.

The paper decides between alternative plans only at start-up; this
module extends the choose-plan idea into execution, following the two
natural anchor points identified by later work: *pipeline breakers*
(arXiv:2010.00728) are where intermediate results materialize anyway,
so observed cardinalities are free, and *incremental re-costing*
(arXiv:1409.6288) keeps the re-decision overhead bounded by re-costing
only the memo groups whose inputs actually moved.

Three breaker kinds are recognised:

``hash_build``
    A hash join's build input has been fully consumed into the hash
    table; its cardinality is exact.
``sort``
    A sort operator has produced its sorted run.
``btree_scan``
    A B-tree scan (plain or filtering) has been drained.

At each breaker :func:`execute_midquery` drains the breaker subplan,
checkpoints the rows into a
:class:`~repro.algebra.physical.Materialized` node, and — when the
policy triggers — re-runs only the *affected* choose-plan decisions
with the observed cardinality pinned.  The re-decision never restarts
drained work: the checkpoint replaces the subplan in every alternative
that contains it, so switching plans costs only the undrained
remainder.  A ``restart`` switch strategy (re-executing the switched
plan from scratch) exists purely as the baseline the benchmark beats.

I/O identity is the module's core invariant: operators charge
simulated I/O per record *drained*, regardless of whether the record
came from a live iterator or a checkpoint replay (``Materialized``
replays charge nothing), so a drain-then-replay run produces byte-
identical :class:`~repro.storage.iostats.IOStatistics` totals to a
straight streaming run in all three execution modes.  The differential
tests in ``tests/test_midquery.py`` enforce exactly this.

The buffer pool is not supported on this path: replaying a checkpoint
changes the page-access *order*, which an LRU pool would translate
into different hit rates.  The query service never combines the two.
"""

import time

from repro.algebra.physical import (
    BTreeScan,
    ChoosePlan,
    Filter,
    FilterBTreeScan,
    HashJoin,
    IndexJoin,
    Materialized,
    Sort,
)
from repro.common.errors import ExecutionError
from repro.common.units import access_module_read_seconds
from repro.cost.formulas import CostModel
from repro.cost.parameters import (
    Bindings,
    MEMORY_PARAMETER,
    ParameterSpace,
    Valuation,
)
from repro.executor.engine import ExecutionResult, execute_plan
from repro.executor.startup import StartupReport, _rebuild
from repro.resilience.deadline import Deadline

#: Pipeline-breaker kinds a policy may re-decide at.
BREAKER_KINDS = ("hash_build", "sort", "btree_scan")

#: Valid re-optimization modes.
REOPT_MODES = ("off", "auto", "always")

#: Operator kinds whose cost formulas read the memory grant.
_MEMORY_SENSITIVE = (BTreeScan, FilterBTreeScan, HashJoin, IndexJoin, Sort)


class ReoptPolicy:
    """When and where mid-query re-optimization happens.

    ``mode`` is ``"off"`` (never re-decide; plain execution), ``"auto"``
    (re-decide only when an observed cardinality leaves its
    compile-time interval), or ``"always"`` (re-decide at every
    breaker — the forcing mode the differential tests and the
    benchmark use).  ``breakers`` restricts which breaker kinds act as
    decision points.  ``on_switch`` is ``"splice"`` (continue over the
    checkpoints; the paper-faithful strategy) or ``"restart"``
    (re-execute the switched plan from scratch; the benchmark's
    baseline).
    """

    def __init__(self, mode="auto", breakers=BREAKER_KINDS, on_switch="splice"):
        if mode not in REOPT_MODES:
            raise ExecutionError(
                "reopt mode must be one of %r, got %r" % (REOPT_MODES, mode)
            )
        breakers = tuple(breakers)
        for kind in breakers:
            if kind not in BREAKER_KINDS:
                raise ExecutionError(
                    "unknown breaker kind %r (valid: %r)"
                    % (kind, BREAKER_KINDS)
                )
        if on_switch not in ("splice", "restart"):
            raise ExecutionError(
                "on_switch must be 'splice' or 'restart', got %r" % (on_switch,)
            )
        self.mode = mode
        self.breakers = breakers
        self.on_switch = on_switch

    @property
    def active(self):
        """Whether this policy ever visits breakers."""
        return self.mode != "off" and bool(self.breakers)

    @classmethod
    def parse(cls, text):
        """Parse a CLI policy spec.

        Grammar: ``mode[+restart][:breaker,breaker,...]`` — e.g.
        ``"off"``, ``"auto"``, ``"always"``, ``"always:sort,hash_build"``,
        ``"always+restart"``.
        """
        text = (text or "").strip()
        if not text:
            return cls("off")
        if ":" in text:
            head, _, tail = text.partition(":")
            breakers = tuple(
                part.strip() for part in tail.split(",") if part.strip()
            )
        else:
            head, breakers = text, BREAKER_KINDS
        on_switch = "splice"
        if "+" in head:
            head, _, strategy = head.partition("+")
            on_switch = strategy.strip()
        return cls(head.strip(), breakers or BREAKER_KINDS, on_switch)

    def to_dict(self):
        """Plain-data form for reports and metrics."""
        return {
            "mode": self.mode,
            "breakers": list(self.breakers),
            "on_switch": self.on_switch,
        }

    def __repr__(self):
        return "ReoptPolicy(mode=%r, breakers=%r, on_switch=%r)" % (
            self.mode,
            self.breakers,
            self.on_switch,
        )


class BreakerEvent:
    """One pipeline breaker visited during execution."""

    def __init__(self, kind, operator, observed, estimate, violated):
        self.kind = kind
        #: The drained static subplan (build input / sort / scan).
        self.operator = operator
        self.observed = observed
        #: Compile-time cardinality :class:`Interval` of the subplan.
        self.estimate = estimate
        #: Whether the observation left the compile-time interval.
        self.violated = violated

    def to_dict(self):
        """Plain-data form for reports (deterministic fields only)."""
        return {
            "kind": self.kind,
            "operator": self.operator.operator_name(),
            "observed": self.observed,
            "estimate": [self.estimate.lower, self.estimate.upper],
            "violated": self.violated,
        }

    def __repr__(self):
        return "BreakerEvent(%s, observed=%d, violated=%s)" % (
            self.kind,
            self.observed,
            self.violated,
        )


class Redecision:
    """One choose-plan decision re-made at a breaker."""

    __slots__ = ("node", "chosen", "prior", "incumbent_cost", "candidate_cost")

    def __init__(self, node, chosen, prior, incumbent_cost, candidate_cost):
        self.node = node
        self.chosen = chosen
        self.prior = prior
        #: Re-costed value of the previously chosen alternative, or
        #: ``None`` when this is the first decision for the node.
        self.incumbent_cost = incumbent_cost
        self.candidate_cost = candidate_cost

    @property
    def switched(self):
        """Whether the re-decision picked a different alternative."""
        return self.prior is not None and self.chosen is not self.prior

    def __repr__(self):
        return "Redecision(switched=%s, incumbent=%r, candidate=%r)" % (
            self.switched,
            self.incumbent_cost,
            self.candidate_cost,
        )


class DecisionOutcome:
    """Result of one :meth:`IncrementalDecider.decide` pass."""

    def __init__(self, plan, decided, reused, cost_evaluations, seconds, choices):
        self.plan = plan
        #: :class:`Redecision` entries for choose-plans decided this pass.
        self.decided = decided
        #: Choose-plan decisions answered from cache (not re-costed).
        self.reused = reused
        self.cost_evaluations = cost_evaluations
        self.seconds = seconds
        #: All (choose_plan, chosen_original) pairs on the resolved path.
        self.choices = choices

    @property
    def switched(self):
        """Whether any decision changed relative to the incumbent."""
        return any(entry.switched for entry in self.decided)

    def __repr__(self):
        return "DecisionOutcome(decided=%d, reused=%d, evals=%d)" % (
            len(self.decided),
            self.reused,
            self.cost_evaluations,
        )


class MidQueryReport:
    """Accounting of one mid-query-re-optimized execution."""

    def __init__(self, policy):
        self.policy = policy
        #: :class:`BreakerEvent` list, in drain order.
        self.breakers = []
        self.checkpoints = 0
        self.checkpoint_records = 0
        #: Observations that left their compile-time interval.
        self.violations = 0
        #: Re-decision passes run (each may re-make several choices).
        self.redecisions = 0
        #: Passes that changed at least one choice.
        self.switches = 0
        self.decisions_reused = 0
        self.cost_evaluations = 0
        self.decision_seconds = 0.0
        #: Fused pipelines dropped from the compiled program by switches.
        self.pipelines_invalidated = 0
        #: Whether the ``restart`` strategy re-executed from scratch.
        self.restarted = False
        self.final_plan = None
        #: (choose_plan, chosen_original) pairs of the final decisions.
        self.choices = []
        #: Every :class:`Redecision` made, across all passes.
        self.redecision_events = []

    def note_outcome(self, outcome):
        """Fold one decision pass into the counters."""
        self.decisions_reused += outcome.reused
        self.cost_evaluations += outcome.cost_evaluations
        self.decision_seconds += outcome.seconds
        self.redecision_events.extend(outcome.decided)

    def counters(self):
        """The counter subset the query service mirrors into metrics."""
        return {
            "checkpoints": self.checkpoints,
            "violations": self.violations,
            "redecisions": self.redecisions,
            "switches": self.switches,
        }

    def to_dict(self):
        """Plain-data form; deterministic (no wall-clock values)."""
        return {
            "policy": self.policy.to_dict(),
            "breakers": [event.to_dict() for event in self.breakers],
            "checkpoints": self.checkpoints,
            "checkpoint_records": self.checkpoint_records,
            "violations": self.violations,
            "redecisions": self.redecisions,
            "switches": self.switches,
            "decisions_reused": self.decisions_reused,
            "cost_evaluations": self.cost_evaluations,
            "pipelines_invalidated": self.pipelines_invalidated,
            "restarted": self.restarted,
        }

    def render(self):
        """Human-readable summary."""
        lines = [
            "mid-query re-optimization (%s, on_switch=%s): "
            "%d checkpoint(s), %d violation(s), %d redecision(s), "
            "%d switch(es)"
            % (
                self.policy.mode,
                self.policy.on_switch,
                self.checkpoints,
                self.violations,
                self.redecisions,
                self.switches,
            )
        ]
        for event in self.breakers:
            lines.append(
                "  breaker %-10s %-18s observed=%-6d "
                "estimate=[%g, %g]%s"
                % (
                    event.kind,
                    event.operator.operator_name(),
                    event.observed,
                    event.estimate.lower,
                    event.estimate.upper,
                    "  VIOLATED" if event.violated else "",
                )
            )
        if self.pipelines_invalidated:
            lines.append(
                "  invalidated %d fused pipeline(s)" % self.pipelines_invalidated
            )
        if self.restarted:
            lines.append("  restarted from scratch after switch")
        return "\n".join(lines)

    def __repr__(self):
        return (
            "MidQueryReport(checkpoints=%d, violations=%d, switches=%d)"
            % (self.checkpoints, self.violations, self.switches)
        )


def _selection_predicates(node):
    """Selection predicates on a node whose selectivity may be uncertain."""
    if isinstance(node, (Filter, FilterBTreeScan)):
        return (node.predicate,)
    if isinstance(node, IndexJoin) and node.residual_predicate is not None:
        return (node.residual_predicate,)
    return ()


class IncrementalDecider:
    """Incrementally re-decides a dynamic plan's choose-plan operators.

    One decider owns one dynamic plan for the lifetime of a query.  Its
    cost model's memo table and its resolved-subplan cache persist
    across decision passes, so a re-decision after :meth:`pin` or
    :meth:`rebind` only re-costs the memo groups the new information
    can actually reach — everything else is answered from cache
    (``DecisionOutcome.reused`` / ``cost_evaluations`` make the saving
    observable, and the regression tests pin it down).
    """

    def __init__(self, plan, catalog, parameter_space, bindings):
        self.plan = plan
        self.catalog = catalog
        self.parameter_space = parameter_space
        self.bindings = bindings
        self._model = CostModel(
            catalog, Valuation.runtime(parameter_space, bindings)
        )
        #: id(dynamic node) -> (dynamic node, resolved static node)
        self._resolved = {}
        #: id(choose_plan) -> (choose_plan, chosen original alternative)
        self._choices = {}
        #: id(dynamic node) -> (dynamic node, Materialized checkpoint)
        self._pinned = {}
        #: id(resolved node) -> dynamic node it came from
        self._origin = {}
        #: id(dynamic node) -> parent dynamic nodes (for upward invalidation)
        self._parents = {}
        for node in plan.walk_unique():
            for child in node.inputs():
                self._parents.setdefault(id(child), []).append(node)

    # ------------------------------------------------------------------
    # Observations
    # ------------------------------------------------------------------

    def origin_of(self, resolved):
        """The dynamic-plan node a resolved node was built from."""
        return self._origin.get(id(resolved), resolved)

    def pin(self, origin, checkpoint):
        """Pin a dynamic node to a materialized checkpoint.

        Every later pass resolves ``origin`` — in *every* alternative
        that shares it — to the checkpoint, whose cost is zero and
        whose cardinality is the observed row count.  The resolved
        cache is invalidated upward from the pin, so only ancestors of
        the checkpoint are ever re-costed.
        """
        self._pinned[id(origin)] = (origin, checkpoint)
        self._invalidate_upward(origin)

    def _invalidate_upward(self, node):
        stack = [node]
        seen = set()
        while stack:
            current = stack.pop()
            if id(current) in seen:
                continue
            seen.add(id(current))
            self._resolved.pop(id(current), None)
            stack.extend(self._parents.get(id(current), ()))

    def rebind(self, bindings, changed_parameters):
        """Adopt new bindings, keeping every unaffected memo entry.

        ``changed_parameters`` names the parameters whose values moved
        (e.g. ``("memory_pages",)`` after a mid-run memory drop).  Memo
        entries and resolved subplans whose subtree neither contains a
        memory-sensitive operator (for a memory change) nor mentions a
        changed selectivity parameter are carried over verbatim — the
        incremental alternative to the old "re-run the whole start-up
        decision" degradation path.
        """
        changed = frozenset(changed_parameters)
        self.bindings = bindings
        old_cache = self._model._cache
        self._model = CostModel(
            self.catalog, Valuation.runtime(self.parameter_space, bindings)
        )
        affected = {}

        def is_affected(node):
            known = affected.get(id(node))
            if known is not None:
                return known
            result = False
            for inner in node.walk_unique():
                if MEMORY_PARAMETER in changed and isinstance(
                    inner, _MEMORY_SENSITIVE
                ):
                    result = True
                    break
                for predicate in _selection_predicates(inner):
                    if (
                        predicate.is_uncertain
                        and predicate.selectivity_parameter in changed
                    ):
                        result = True
                        break
                if result:
                    break
            affected[id(node)] = result
            return result

        for key, entry in old_cache.items():
            if not is_affected(entry[0]):
                self._model._cache[key] = entry
        for key in [
            key
            for key, entry in self._resolved.items()
            if is_affected(entry[0]) and key not in self._pinned
        ]:
            del self._resolved[key]

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------

    def decide(self, reuse_all=False):
        """One decision pass over the dynamic plan.

        With ``reuse_all=False`` every choose-plan whose cache entry
        was invalidated is re-decided by the argmin over its resolved
        alternatives' re-costed values — the exact comparison
        :func:`~repro.executor.startup.resolve_dynamic_plan` makes at
        start-up, including its strict-``<`` tie-break, so a pass under
        unchanged information re-picks the incumbent.  With
        ``reuse_all=True`` (see :meth:`splice`) prior choices are kept
        verbatim and only the plan structure is re-resolved, which
        splices pinned checkpoints in without changing any decision.
        """
        started = time.perf_counter()
        evaluations_before = self._model.evaluations
        decided = []
        choices = []
        reused = [0]

        def resolve(node):
            cached = self._resolved.get(id(node))
            if cached is not None:
                if isinstance(node, ChoosePlan):
                    reused[0] += 1
                    prior = self._choices.get(id(node))
                    if prior is not None:
                        choices.append(prior)
                return cached[1]
            pinned = self._pinned.get(id(node))
            if pinned is not None:
                result = pinned[1]
            elif isinstance(node, ChoosePlan):
                prior = self._choices.get(id(node))
                if reuse_all and prior is not None:
                    reused[0] += 1
                    choices.append(prior)
                    result = resolve(prior[1])
                else:
                    best = None
                    best_original = None
                    best_cost = None
                    costs = {}
                    for alternative in node.alternatives:
                        resolved_alternative = resolve(alternative)
                        cost = self._model.evaluate(
                            resolved_alternative
                        ).cost.lower
                        costs[id(alternative)] = cost
                        if best_cost is None or cost < best_cost:
                            best_cost = cost
                            best = resolved_alternative
                            best_original = alternative
                    prior_original = prior[1] if prior is not None else None
                    incumbent_cost = (
                        costs.get(id(prior_original))
                        if prior_original is not None
                        else None
                    )
                    decided.append(
                        Redecision(
                            node,
                            best_original,
                            prior_original,
                            incumbent_cost,
                            best_cost,
                        )
                    )
                    self._choices[id(node)] = (node, best_original)
                    choices.append((node, best_original))
                    result = best
            else:
                result = _rebuild(
                    node, [resolve(child) for child in node.inputs()]
                )
            self._resolved[id(node)] = (node, result)
            self._origin[id(result)] = node
            return result

        plan = resolve(self.plan)
        seconds = time.perf_counter() - started
        return DecisionOutcome(
            plan,
            decided,
            reused[0],
            self._model.evaluations - evaluations_before,
            seconds,
            choices,
        )

    def splice(self):
        """Re-resolve the plan over the pins without re-deciding."""
        return self.decide(reuse_all=True)

    def cost_of(self, plan):
        """Re-costed value of a (resolved) plan under current bindings."""
        return self._model.evaluate(plan).cost.lower

    def choices(self):
        """Current (choose_plan, chosen_original) pairs, decision order."""
        return list(self._choices.values())


def startup_report_from_outcome(outcome, node_count):
    """Adapt a :class:`DecisionOutcome` to the service's report type.

    Charges the access-module read for ``node_count`` nodes exactly as
    :func:`~repro.executor.startup.activate_plan` would, and carries
    ``reused_decisions`` so callers can observe the incremental saving.
    """
    report = StartupReport(
        decisions=len(outcome.decided),
        cost_evaluations=outcome.cost_evaluations,
        cpu_seconds=outcome.seconds,
        io_seconds=access_module_read_seconds(node_count),
        node_count=node_count,
        choices=outcome.choices,
    )
    report.reused_decisions = outcome.reused
    return report


def _postorder(plan):
    """Unique nodes, children before parents (innermost-first)."""
    seen = set()
    order = []

    def visit(node):
        if id(node) in seen:
            return
        seen.add(id(node))
        for child in node.inputs():
            visit(child)
        order.append(node)

    visit(plan)
    return order


def _next_breaker(plan, kinds, skipped):
    """The innermost undrained pipeline breaker, or ``None``.

    Returns ``(kind, subplan)`` where ``subplan`` is the static subplan
    that materializes at the breaker: a hash join's build input, a sort
    operator, or a B-tree scan.  The plan root is never a breaker
    (draining it would just execute the query), and ``Materialized``
    nodes — checkpoints from earlier breakers — are already drained.
    """
    for node in _postorder(plan):
        if (
            isinstance(node, (BTreeScan, FilterBTreeScan))
            and "btree_scan" in kinds
            and node is not plan
            and id(node) not in skipped
        ):
            return ("btree_scan", node)
        if (
            isinstance(node, Sort)
            and "sort" in kinds
            and node is not plan
            and id(node) not in skipped
        ):
            return ("sort", node)
        if isinstance(node, HashJoin) and "hash_build" in kinds:
            build = node.build
            if (
                not isinstance(build, Materialized)
                and build is not plan
                and id(build) not in skipped
            ):
                return ("hash_build", build)
    return None


def _strip_checkpoints(plan):
    """Replace every checkpoint by the subplan that produced it."""
    cache = {}

    def strip(node):
        cached = cache.get(id(node))
        if cached is not None:
            return cached[1]
        if isinstance(node, Materialized):
            result = strip(node.original)
        else:
            result = _rebuild(node, [strip(child) for child in node.inputs()])
        cache[id(node)] = (node, result)
        return result

    return strip(plan)


def execute_midquery(
    plan,
    database,
    bindings=None,
    parameter_space=None,
    policy=None,
    execution_mode="row",
    batch_size=None,
    tracer=None,
    deadline=None,
    compile_pipelines=False,
    compiled_program=None,
    choices=None,
):
    """Execute a dynamic plan with runtime choose-plan points.

    Returns ``(ExecutionResult, MidQueryReport)``.  The result's
    ``io_snapshot`` covers the *whole* run — breaker drains plus the
    final plan — so it is directly comparable to a plain
    :func:`~repro.executor.engine.execute_plan` of the same query, and
    the differential tests assert the two are identical.

    ``choices`` optionally seeds the decider with start-up decisions
    already made (a :class:`~repro.executor.startup.StartupReport`'s
    ``choices`` list); the initial pass then splices without re-costing
    instead of repeating the start-up argmin.  ``tracer`` attaches to
    the final plan execution only; breaker drains run untraced.
    """
    if plan is None:
        raise ExecutionError("cannot execute an empty plan")
    policy = policy if policy is not None else ReoptPolicy()
    report = MidQueryReport(policy)
    if not policy.active:
        result = execute_plan(
            plan,
            database,
            bindings=bindings,
            parameter_space=parameter_space,
            tracer=tracer,
            execution_mode=execution_mode,
            batch_size=batch_size,
            deadline=deadline,
            compile_pipelines=compile_pipelines,
            compiled_program=compiled_program,
        )
        report.final_plan = plan
        return result, report

    bindings = bindings if bindings is not None else Bindings()
    parameter_space = (
        parameter_space if parameter_space is not None else ParameterSpace()
    )
    deadline = Deadline.ensure(deadline)
    catalog = database.catalog
    decider = IncrementalDecider(plan, catalog, parameter_space, bindings)
    bounds_model = CostModel(catalog, Valuation.bounds(parameter_space))

    started = time.perf_counter()
    before = database.io_stats.snapshot()

    if choices:
        for choose, chosen in choices:
            if chosen is not None:
                decider._choices[id(choose)] = (choose, chosen)
        outcome = decider.splice()
    else:
        outcome = decider.decide()
    report.note_outcome(outcome)
    current = outcome.plan

    skipped = set()
    # Bounded defensively: every iteration pins one more dynamic node
    # (or skips one subplan), so the loop cannot run longer than the
    # plan has nodes.
    for _ in range(plan.node_count() + 1):
        breaker = _next_breaker(current, policy.breakers, skipped)
        if breaker is None:
            break
        kind, subplan = breaker
        drained = execute_plan(
            subplan,
            database,
            bindings=bindings,
            parameter_space=parameter_space,
            execution_mode=execution_mode,
            batch_size=batch_size,
            deadline=deadline,
            compile_pipelines=compile_pipelines,
            compiled_program=compiled_program,
        )
        skipped.add(id(subplan))
        checkpoint = Materialized(drained.records, subplan)
        decider.pin(decider.origin_of(subplan), checkpoint)
        observed = checkpoint.observed_cardinality
        estimate = bounds_model.evaluate(subplan).cardinality
        violated = not estimate.contains(observed)
        report.breakers.append(
            BreakerEvent(kind, subplan, observed, estimate, violated)
        )
        report.checkpoints += 1
        report.checkpoint_records += observed
        if violated:
            report.violations += 1

        if policy.mode == "always" or violated:
            report.redecisions += 1
            outcome = decider.decide()
            if outcome.switched:
                report.switches += 1
                if compiled_program is not None:
                    report.pipelines_invalidated += (
                        compiled_program.invalidate_downstream(
                            current, subplan
                        )
                    )
        else:
            outcome = decider.splice()
        report.note_outcome(outcome)
        current = outcome.plan

    if policy.on_switch == "restart" and report.switches:
        final = _strip_checkpoints(current)
        report.restarted = True
    else:
        final = current

    tail = execute_plan(
        final,
        database,
        bindings=bindings,
        parameter_space=parameter_space,
        tracer=tracer,
        execution_mode=execution_mode,
        batch_size=batch_size,
        deadline=deadline,
        compile_pipelines=compile_pipelines,
        compiled_program=compiled_program,
    )
    elapsed = time.perf_counter() - started
    after = database.io_stats.snapshot()
    delta = {key: after[key] - before[key] for key in after}
    report.final_plan = final
    report.choices = decider.choices()
    result = ExecutionResult(
        tail.records,
        delta,
        list(report.choices),
        elapsed,
        trace=tail.trace,
        profile=tail.profile,
    )
    return result, report
