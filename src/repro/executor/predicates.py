"""Predicate compilation: one closure per predicate, not per record.

The interpreted path (``SelectionPredicate.evaluate``) walks the
predicate structure for every record: attribute lookup on the
comparison, enum dispatch on the operator, operand resolution against
the bindings.  Bindings are fixed for the lifetime of one execution,
so all of that can be done once at iterator *open* time, leaving a
single closure call (or, in the vectorized executor, one closure
applied inside a list comprehension) on the per-record path.

Compilation preserves the interpreted semantics exactly — the same
comparison on the same resolved operand value — including the error
on unbound user variables, which compiled predicates defer to the
first record so that an operator whose input is empty never touches
its (possibly unbound) predicate, just like the interpreted path.
"""

import operator

from repro.algebra.expressions import ComparisonOp
from repro.common.errors import ExecutionError

_OP_FUNCTIONS = {
    ComparisonOp.EQ: operator.eq,
    ComparisonOp.NE: operator.ne,
    ComparisonOp.LT: operator.lt,
    ComparisonOp.LE: operator.le,
    ComparisonOp.GT: operator.gt,
    ComparisonOp.GE: operator.ge,
}


def compile_predicate(predicate, bindings):
    """Compile a selection predicate into ``closure(record) -> bool``.

    ``predicate`` is anything with a ``comparison`` attribute
    (:class:`~repro.algebra.expressions.SelectionPredicate`) or a bare
    :class:`~repro.algebra.expressions.Comparison`.  The operand is
    resolved against ``bindings`` eagerly when it is bound; an unbound
    user variable yields a closure that raises the interpreted path's
    :class:`~repro.common.errors.ExecutionError` on first use.
    """
    comparison = getattr(predicate, "comparison", predicate)
    attribute = comparison.attribute
    compare = _OP_FUNCTIONS[comparison.op]
    try:
        value = comparison.operand.resolve(bindings)
    except ExecutionError:
        operand = comparison.operand

        def unbound(record):
            operand.resolve(bindings)  # raises the unbound-variable error
            raise ExecutionError(
                "unreachable: unbound operand %r resolved" % (operand,)
            )

        return unbound

    def closure(record):
        # Exact-key access first; fall back to Record indexing (which
        # suffix-matches unqualified names) only when the key misses.
        try:
            return compare(record._fields[attribute], value)
        except KeyError:
            return compare(record[attribute], value)

    return closure


def compile_batch_predicate(predicate, bindings):
    """Compile a predicate into ``filter_batch(records) -> records``.

    The vectorized filter path: one call filters a whole batch in a
    single comprehension.  The fast path indexes each record's exact
    field dict directly (no method dispatch, no suffix matching); if
    any record lacks the exact qualified key the whole batch falls
    back to :class:`~repro.storage.records.Record` indexing, which
    performs the interpreted path's suffix matching.  Predicates are
    pure, so re-filtering the batch on fallback is side-effect free.
    """
    comparison = getattr(predicate, "comparison", predicate)
    attribute = comparison.attribute
    compare = _OP_FUNCTIONS[comparison.op]
    try:
        value = comparison.operand.resolve(bindings)
    except ExecutionError:
        operand = comparison.operand

        def unbound(records):
            operand.resolve(bindings)  # raises the unbound-variable error
            raise ExecutionError(
                "unreachable: unbound operand %r resolved" % (operand,)
            )

        return unbound

    def filter_batch(records):
        try:
            return [
                record
                for record in records
                if compare(record._fields[attribute], value)
            ]
        except KeyError:
            return [
                record for record in records if compare(record[attribute], value)
            ]

    return filter_batch


def compile_comparison_parts(predicate, bindings):
    """Resolve a predicate into ``(attribute, compare, value)`` parts.

    The fully-inlined form used by vectorized operators that filter
    with an explicit mask comprehension instead of a closure call per
    record.  Returns ``None`` when the operand is unbound so callers
    can fall back to :func:`compile_predicate`, whose closure raises
    the interpreted path's error on first use.
    """
    comparison = getattr(predicate, "comparison", predicate)
    try:
        value = comparison.operand.resolve(bindings)
    except ExecutionError:
        return None
    return comparison.attribute, _OP_FUNCTIONS[comparison.op], value


def compile_conjunction(predicates, bindings):
    """Compile several predicates into one conjunction closure.

    Returns ``None`` for an empty predicate list so callers can skip
    the filter entirely instead of paying a no-op call per record.
    """
    closures = [compile_predicate(p, bindings) for p in predicates]
    if not closures:
        return None
    if len(closures) == 1:
        return closures[0]

    def conjunction(record):
        for closure in closures:
            if not closure(record):
                return False
        return True

    return conjunction
