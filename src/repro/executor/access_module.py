"""Access modules: the stored form of optimized plans.

Production systems with compile-time optimization store plans in
"access modules" read at start-up (paper Sections 4 and 6).  An
:class:`AccessModule` serializes a plan DAG — shared subplans are
stored once and referenced by index, so module size is proportional to
the DAG's node count, the paper's plan-size metric.
"""

import json

from repro.algebra.expressions import (
    Comparison,
    ComparisonOp,
    JoinPredicate,
    Literal,
    SelectionPredicate,
    UserVariable,
)
from repro.algebra.physical import (
    BTreeScan,
    ChoosePlan,
    FileScan,
    Filter,
    FilterBTreeScan,
    HashJoin,
    IndexJoin,
    MergeJoin,
    Project,
    Sort,
)
from repro.common.errors import PlanError
from repro.common.units import access_module_read_seconds


# ----------------------------------------------------------------------
# Predicate (de)serialization
# ----------------------------------------------------------------------


def _operand_to_dict(operand):
    if isinstance(operand, UserVariable):
        return {"var": operand.name}
    return {"lit": operand.value}


def _operand_from_dict(data):
    if "var" in data:
        return UserVariable(data["var"])
    return Literal(data["lit"])


def _selection_to_dict(predicate):
    if predicate is None:
        return None
    return {
        "attr": predicate.comparison.attribute,
        "op": predicate.comparison.op.value,
        "operand": _operand_to_dict(predicate.comparison.operand),
        "param": predicate.selectivity_parameter,
        "known": predicate.known_selectivity,
        "bounds": [
            predicate.selectivity_bounds.lower,
            predicate.selectivity_bounds.upper,
        ],
        "expected": predicate.expected_selectivity,
    }


def _selection_from_dict(data):
    if data is None:
        return None
    comparison = Comparison(
        data["attr"], ComparisonOp(data["op"]), _operand_from_dict(data["operand"])
    )
    return SelectionPredicate(
        comparison,
        selectivity_parameter=data["param"],
        known_selectivity=data["known"],
        selectivity_bounds=tuple(data["bounds"]),
        expected_selectivity=data["expected"],
    )


def _joins_to_list(predicates):
    return [[p.left_attribute, p.right_attribute] for p in predicates]


def _joins_from_list(data):
    return [JoinPredicate(left, right) for left, right in data]


# ----------------------------------------------------------------------
# Plan (de)serialization
# ----------------------------------------------------------------------


def _plan_to_nodes(plan):
    """Topologically ordered node dicts; children precede parents."""
    order = []
    index_of = {}

    def visit(node):
        if id(node) in index_of:
            return index_of[id(node)]
        child_indexes = [visit(child) for child in node.inputs()]
        data = _node_to_dict(node, child_indexes)
        index_of[id(node)] = len(order)
        order.append(data)
        return index_of[id(node)]

    root = visit(plan)
    return order, root


def _node_to_dict(node, children):
    if isinstance(node, FileScan):
        return {"op": "file-scan", "rel": node.relation_name}
    if isinstance(node, BTreeScan):
        return {"op": "btree-scan", "rel": node.relation_name, "attr": node.attribute}
    if isinstance(node, FilterBTreeScan):
        return {
            "op": "filter-btree-scan",
            "rel": node.relation_name,
            "attr": node.attribute,
            "pred": _selection_to_dict(node.predicate),
        }
    if isinstance(node, Filter):
        return {
            "op": "filter",
            "pred": _selection_to_dict(node.predicate),
            "in": children,
        }
    if isinstance(node, HashJoin):
        return {
            "op": "hash-join",
            "preds": _joins_to_list(node.predicates),
            "in": children,
        }
    if isinstance(node, MergeJoin):
        return {
            "op": "merge-join",
            "preds": _joins_to_list(node.predicates),
            "in": children,
        }
    if isinstance(node, IndexJoin):
        return {
            "op": "index-join",
            "rel": node.inner_relation,
            "attr": node.inner_attribute,
            "preds": _joins_to_list(node.predicates),
            "residual": _selection_to_dict(node.residual_predicate),
            "in": children,
        }
    if isinstance(node, Sort):
        return {"op": "sort", "attr": node.attribute, "in": children}
    if isinstance(node, Project):
        return {"op": "project", "attrs": list(node.attributes), "in": children}
    if isinstance(node, ChoosePlan):
        return {"op": "choose-plan", "in": children}
    raise PlanError("cannot serialize operator %r" % node)


def _node_from_dict(data, nodes):
    op = data["op"]
    children = [nodes[index] for index in data.get("in", ())]
    if op == "file-scan":
        return FileScan(data["rel"])
    if op == "btree-scan":
        return BTreeScan(data["rel"], data["attr"])
    if op == "filter-btree-scan":
        return FilterBTreeScan(
            data["rel"], data["attr"], _selection_from_dict(data["pred"])
        )
    if op == "filter":
        return Filter(children[0], _selection_from_dict(data["pred"]))
    if op == "hash-join":
        return HashJoin(children[0], children[1], _joins_from_list(data["preds"]))
    if op == "merge-join":
        return MergeJoin(children[0], children[1], _joins_from_list(data["preds"]))
    if op == "index-join":
        return IndexJoin(
            children[0],
            data["rel"],
            data["attr"],
            _joins_from_list(data["preds"]),
            residual_predicate=_selection_from_dict(data["residual"]),
        )
    if op == "sort":
        return Sort(children[0], data["attr"])
    if op == "project":
        return Project(children[0], data["attrs"])
    if op == "choose-plan":
        return ChoosePlan(children)
    raise PlanError("cannot deserialize operator %r" % op)


class AccessModule:
    """A serialized plan, as stored on disk between invocations."""

    def __init__(self, payload_bytes):
        self._payload = payload_bytes
        data = json.loads(payload_bytes.decode("utf-8"))
        self._data = data

    @classmethod
    def from_plan(cls, plan, query_name="query"):
        """Serialize a plan DAG into an access module."""
        nodes, root = _plan_to_nodes(plan)
        payload = json.dumps(
            {"query": query_name, "root": root, "nodes": nodes},
            separators=(",", ":"),
        ).encode("utf-8")
        return cls(payload)

    def materialize(self):
        """Rebuild the plan DAG (shared nodes stay shared)."""
        nodes = []
        for data in self._data["nodes"]:
            nodes.append(_node_from_dict(data, nodes))
        return nodes[self._data["root"]]

    @property
    def query_name(self):
        """Name of the query the module was compiled from."""
        return self._data["query"]

    @property
    def node_count(self):
        """Operator nodes stored in the module."""
        return len(self._data["nodes"])

    @property
    def byte_size(self):
        """Serialized size in bytes."""
        return len(self._payload)

    def to_bytes(self):
        """The raw serialized payload."""
        return self._payload

    @classmethod
    def from_bytes(cls, payload_bytes):
        """Load a module from its raw payload."""
        return cls(payload_bytes)

    def read_seconds(self):
        """Modelled I/O time to bring the module into memory.

        Uses the paper's derivation: node count x 128 bytes at
        2 MB/sec (about 16,000 nodes per second).
        """
        return access_module_read_seconds(self.node_count)

    def __repr__(self):
        return "AccessModule(%s, %d nodes, %d bytes)" % (
            self.query_name,
            self.node_count,
            self.byte_size,
        )
