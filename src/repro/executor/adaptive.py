"""Run-time choose-plan decisions with observed cardinalities.

Section 7 of the paper sketches the generalization left to future
work: decisions "can also be delayed further into run-time ...  our
initial approach has been to handle inaccurate expected values by
evaluating subplans as part of choose-plan decision procedures.  When
a subplan has been evaluated into a temporary result, its logical and
physical properties (e.g., result cardinality ...) are known and
therefore may contribute to decisions with increased confidence."

This module implements that approach as a bottom-up adaptive executor:

1. Choose-plan operators are visited innermost-first.
2. Each decision uses a cost model in which already-materialized
   temporaries cost nothing further and report their *observed*
   cardinality instead of an estimate.
3. The winning alternative of every inner choose-plan is executed into
   a temporary result (a :class:`~repro.algebra.physical.Materialized`
   node); the root choose-plan's winner streams directly.

Because decisions above a temporary use actual rather than estimated
cardinalities, the executor recovers from *wrong selectivity
estimates* — a failure mode that defeats ordinary start-up-time
resolution, whose decision procedures can only trust the bindings they
are given.  The price is possible wasted work: a materialized
temporary may end up unused when a later decision picks an alternative
that does not consume it (reported as ``wasted_records``).
"""

import time

from repro.algebra.physical import ChoosePlan, Materialized
from repro.common.intervals import Interval
from repro.cost.formulas import CostModel
from repro.cost.model import CostResult
from repro.cost.parameters import Valuation
from repro.executor.engine import ExecutionContext, ExecutionResult
from repro.executor.iterators import build_iterator
from repro.executor.startup import _rebuild


class AdaptiveReport:
    """Accounting of one adaptive execution."""

    def __init__(self):
        self.decisions = 0
        self.materialized_subplans = 0
        self.materialized_records = 0
        self.wasted_records = 0
        self.decision_seconds = 0.0
        self.final_plan = None

    def __repr__(self):
        return (
            "AdaptiveReport(decisions=%d, materialized=%d/%d records, "
            "wasted=%d)"
            % (
                self.decisions,
                self.materialized_subplans,
                self.materialized_records,
                self.wasted_records,
            )
        )


class _ObservedCostModel(CostModel):
    """Cost model that substitutes observations for estimates.

    Nodes mapped in ``substitutions`` (choose-plan nodes that were
    already decided and materialized) are costed as their temporary:
    zero remaining cost, observed cardinality.
    """

    def __init__(self, catalog, valuation, substitutions):
        CostModel.__init__(self, catalog, valuation)
        self._substitutions = substitutions

    def _dispatch(self, plan):
        substituted = self._substitutions.get(id(plan))
        if substituted is not None:
            return CostResult(
                Interval.zero(),
                Interval.point(substituted.observed_cardinality),
                frozenset(),
            )
        return CostModel._dispatch(self, plan)


class AdaptiveExecutor:
    """Executes dynamic plans with run-time (not just start-up) choices."""

    def __init__(self, database, parameter_space):
        self.database = database
        self.parameter_space = parameter_space

    def execute(self, plan, bindings):
        """Run a (possibly dynamic) plan adaptively.

        Returns ``(ExecutionResult, AdaptiveReport)``.
        """
        context = ExecutionContext(self.database, bindings, self.parameter_space)
        report = AdaptiveReport()
        #: id(choose_plan) -> Materialized temporary for its winner
        substitutions = {}

        before = context.io_stats.snapshot()
        started = time.perf_counter()

        # Materialize only the *minimal* choose-plans — those without
        # nested choose-plans, i.e. the relation-access decisions whose
        # results any join strategy would need anyway.  Their observed
        # cardinalities then drive one resolution pass over everything
        # above (join orders, build sides, sort-vs-index orders) without
        # materializing intermediate join results.
        for choose in self._minimal_choose_plans(plan):
            if choose is plan:
                continue
            self._decide_and_materialize(choose, context, substitutions, report)

        final_plan = self._resolve_remaining(
            plan, substitutions, context, report
        )
        report.final_plan = final_plan
        records = list(build_iterator(final_plan, context))
        self._account_waste(final_plan, substitutions, report)

        elapsed = time.perf_counter() - started
        after = context.io_stats.snapshot()
        delta = {key: after[key] - before[key] for key in after}
        result = ExecutionResult(
            records, delta, list(context.decisions), elapsed
        )
        return result, report

    # ------------------------------------------------------------------
    # Decision machinery
    # ------------------------------------------------------------------

    def _minimal_choose_plans(self, plan):
        """Choose-plan nodes without nested choose-plans (scan level)."""
        return [
            node
            for node in plan.walk_unique()
            if isinstance(node, ChoosePlan)
            and not any(
                isinstance(inner, ChoosePlan)
                for inner in node.walk_unique()
                if inner is not node
            )
        ]

    def _decide(self, choose, substitutions, context, report):
        """Pick the cheapest alternative under current observations."""
        decision_started = time.perf_counter()
        valuation = Valuation.runtime(self.parameter_space, context.bindings)
        cost_model = _ObservedCostModel(
            self.database.catalog, valuation, substitutions
        )
        best_plan = None
        best_cost = None
        for alternative in choose.alternatives:
            cost = cost_model.evaluate(alternative).cost.lower
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_plan = alternative
        report.decisions += 1
        report.decision_seconds += time.perf_counter() - decision_started
        context.record_decision(choose, best_plan)
        return self._substitute(best_plan, substitutions, {})

    def _resolve_remaining(self, plan, substitutions, context, report):
        """Resolve every undecided choose-plan with observations.

        One bottom-up pass under the observed cost model: decided
        temporaries replay, undecided choose-plans pick the cheapest
        *resolved* alternative (no further materialization — join
        results stream as usual).
        """
        decision_started = time.perf_counter()
        valuation = Valuation.runtime(self.parameter_space, context.bindings)
        cost_model = _ObservedCostModel(
            self.database.catalog, valuation, substitutions
        )
        cache = {}

        def resolve(node):
            cached = cache.get(id(node))
            if cached is not None:
                return cached[1]
            substituted = substitutions.get(id(node))
            if substituted is not None:
                result = substituted
            elif isinstance(node, ChoosePlan):
                report.decisions += 1
                best = None
                best_cost = None
                best_original = None
                for alternative in node.alternatives:
                    candidate = resolve(alternative)
                    cost = cost_model.evaluate(candidate).cost.lower
                    if best_cost is None or cost < best_cost:
                        best_cost = cost
                        best = candidate
                        best_original = alternative
                context.record_decision(node, best_original)
                result = best
            else:
                result = _rebuild(
                    node, [resolve(child) for child in node.inputs()]
                )
            cache[id(node)] = (node, result)
            return result

        final_plan = resolve(plan)
        report.decision_seconds += time.perf_counter() - decision_started
        return final_plan

    def _decide_and_materialize(self, choose, context, substitutions, report):
        """Decide an inner choose-plan and evaluate its winner into a
        temporary result whose observed properties feed later decisions."""
        executable = self._decide(choose, substitutions, context, report)
        records = list(build_iterator(executable, context))
        # ``original`` is the decided executable (itself built over any
        # deeper temporaries), so a temporary can always be traced back
        # to the static plan that produced it.
        substitutions[id(choose)] = Materialized(records, executable)
        report.materialized_subplans += 1
        report.materialized_records += len(records)

    def _substitute(self, plan, substitutions, cache):
        """Rebuild a plan with decided choose-plans replaced by their
        temporaries (identity-preserving for untouched subtrees)."""
        cached = cache.get(id(plan))
        if cached is not None:
            return cached[1]
        substituted = substitutions.get(id(plan))
        if substituted is not None:
            result = substituted
        else:
            children = [
                self._substitute(child, substitutions, cache)
                for child in plan.inputs()
            ]
            result = _rebuild(plan, children)
        cache[id(plan)] = (plan, result)
        return result

    def _account_waste(self, final_plan, substitutions, report):
        """Count materialized records the final plan never consumed."""
        used = {
            id(node)
            for node in final_plan.walk_unique()
            if isinstance(node, Materialized)
        }
        for temporary in substitutions.values():
            if id(temporary) not in used:
                report.wasted_records += temporary.observed_cardinality


def execute_adaptively(plan, database, bindings, parameter_space):
    """Convenience wrapper around :class:`AdaptiveExecutor`."""
    executor = AdaptiveExecutor(database, parameter_space)
    return executor.execute(plan, bindings)
