"""Start-up-time machinery: plan activation and choose-plan decisions.

The paper's start-up sequence (Sections 4 and 6) for a dynamic plan:

1. read the access module (I/O proportional to its node count) and
   validate it against the catalogs — a flat 0.1 s either way;
2. evaluate every choose-plan decision procedure: re-evaluate the
   alternatives' original cost functions under the instantiated
   run-time bindings, with DAG-shared subplans costed only once;
3. execute the chosen, now fully static, plan.

:func:`resolve_dynamic_plan` implements step 2 and returns the chosen
static plan; :func:`activate_plan` wraps steps 1-2 and reports the
measured CPU time and modelled I/O time, the quantities of Figure 7.

Re-entrancy: resolution never mutates the plan DAG it is given.  All
working state (the resolved-subplan cache and the cost model's
memoization table) is local to one :func:`resolve_dynamic_plan` call,
so any number of threads may resolve the *same* shared dynamic plan
concurrently with independent bindings — the property the query
service's plan cache relies on (see :mod:`repro.service`).
"""

import time

from repro.algebra.physical import (
    ChoosePlan,
    Filter,
    HashJoin,
    IndexJoin,
    MergeJoin,
    Project,
    Sort,
)
from repro.common.units import (
    CATALOG_VALIDATION_SECONDS,
    access_module_read_seconds,
)
from repro.cost.formulas import CostModel
from repro.cost.parameters import Valuation


class StartupReport:
    """Accounting of one plan activation."""

    def __init__(
        self,
        decisions,
        cost_evaluations,
        cpu_seconds,
        io_seconds,
        node_count,
        pruned_alternatives=0,
        choices=(),
    ):
        self.decisions = decisions
        self.cost_evaluations = cost_evaluations
        self.cpu_seconds = cpu_seconds
        self.io_seconds = io_seconds
        self.node_count = node_count
        self.pruned_alternatives = pruned_alternatives
        #: (choose_plan_node, chosen_original_alternative) pairs
        self.choices = list(choices)

    @property
    def total_seconds(self):
        """Catalog validation + module I/O + decision CPU (time ``f``)."""
        return CATALOG_VALIDATION_SECONDS + self.io_seconds + self.cpu_seconds

    def choice_signature(self):
        """Structural fingerprint of the decisions taken.

        Two activations of the same dynamic plan under the same
        bindings must produce equal choice signatures regardless of
        which thread — or which decision-procedure implementation —
        ran them; the invariant the concurrency and compiled-decision
        equivalence tests assert.  Order-insensitive, because the
        interpreted and compiled procedures visit choose-plan nodes in
        different (both deterministic) orders.
        """
        return tuple(
            sorted(
                repr((node.signature(), chosen.signature()))
                for node, chosen in self.choices
                if chosen is not None
            )
        )

    def __repr__(self):
        return (
            "StartupReport(decisions=%d, evals=%d, cpu=%.4fs, io=%.4fs)"
            % (
                self.decisions,
                self.cost_evaluations,
                self.cpu_seconds,
                self.io_seconds,
            )
        )


def resolve_dynamic_plan(
    plan, catalog, parameter_space, bindings, branch_and_bound=False
):
    """Resolve every choose-plan in a dynamic plan under bindings.

    Returns ``(static_plan, report)``.  The shared cost model caches
    each subplan's cost, so shared subexpressions are evaluated once.
    With ``branch_and_bound=True`` (the paper's proposed-but-not-
    implemented start-up optimization, our extension) alternatives
    whose accumulated input cost already exceeds the best alternative
    found so far are abandoned early.
    """
    valuation = Valuation.runtime(parameter_space, bindings)
    cost_model = CostModel(catalog, valuation)
    resolved_cache = {}
    decision_count = 0
    pruned = 0
    choices = []
    started = time.perf_counter()

    def resolve(node):
        nonlocal decision_count, pruned
        cached = resolved_cache.get(id(node))
        if cached is not None:
            return cached[1]
        if isinstance(node, ChoosePlan):
            # Decide on the *resolved* alternatives: nested choose-plan
            # decision overhead is paid for the whole DAG during this
            # very pass, so it must not bias the comparison (branches
            # contain different numbers of choose-plan operators).
            decision_count += 1
            best_plan = None
            best_original = None
            best_cost = None
            for alternative in node.alternatives:
                if branch_and_bound and best_cost is not None:
                    partial = _partial_lower_bound(
                        alternative, resolved_cache, cost_model, best_cost
                    )
                    if partial > best_cost:
                        pruned += 1
                        continue
                resolved_alternative = resolve(alternative)
                cost = cost_model.evaluate(resolved_alternative).cost.lower
                if best_cost is None or cost < best_cost:
                    best_cost = cost
                    best_plan = resolved_alternative
                    best_original = alternative
            choices.append((node, best_original))
            result = best_plan
        else:
            result = _rebuild(node, [resolve(child) for child in node.inputs()])
        resolved_cache[id(node)] = (node, result)
        return result

    chosen = resolve(plan)
    cpu_seconds = time.perf_counter() - started
    report = StartupReport(
        decisions=decision_count,
        cost_evaluations=cost_model.evaluations,
        cpu_seconds=cpu_seconds,
        io_seconds=access_module_read_seconds(plan.node_count()),
        node_count=plan.node_count(),
        pruned_alternatives=pruned,
        choices=choices,
    )
    return chosen, report


def _partial_lower_bound(plan, resolved_cache, cost_model, bound):
    """Cheap lower bound on a plan's cost: its already-resolved inputs.

    Only inputs whose resolved form and cost are both cached are
    summed, so the check itself does no new cost-function work.
    """
    total = 0.0
    for child in plan.inputs():
        resolved = resolved_cache.get(id(child))
        if resolved is None:
            continue
        cached = cost_model._cache.get(id(resolved[1]))
        if cached is not None:
            total += cached[1].cost.lower
            if total > bound:
                break
    return total


def _rebuild(node, new_children):
    """Copy a node onto resolved children (identity when unchanged)."""
    old_children = list(node.inputs())
    if all(new is old for new, old in zip(new_children, old_children)):
        return node
    if isinstance(node, Filter):
        return Filter(new_children[0], node.predicate)
    if isinstance(node, HashJoin):
        return HashJoin(new_children[0], new_children[1], node.predicates)
    if isinstance(node, MergeJoin):
        return MergeJoin(new_children[0], new_children[1], node.predicates)
    if isinstance(node, IndexJoin):
        return IndexJoin(
            new_children[0],
            node.inner_relation,
            node.inner_attribute,
            node.predicates,
            residual_predicate=node.residual_predicate,
        )
    if isinstance(node, Sort):
        return Sort(new_children[0], node.attribute)
    if isinstance(node, Project):
        return Project(new_children[0], node.attributes)
    # Leaves have no children and always hit the identity path above.
    return node


def activate_plan(
    plan,
    catalog,
    parameter_space,
    bindings,
    branch_and_bound=False,
    validate=True,
):
    """Activate a plan as the execution engine would at start-up time.

    Performs catalog validation first ([CAK81]): a static plan whose
    structures vanished raises
    :class:`~repro.common.errors.InfeasiblePlanError`, while a dynamic
    plan merely loses the infeasible alternatives.  Then, for a static
    plan this charges only the module read; for a dynamic plan it also
    runs the decision procedures.  Returns ``(static_plan, report)``.
    """
    if validate:
        from repro.executor.validation import validate_plan

        plan = validate_plan(plan, catalog)
    if plan.choose_plan_count() == 0:
        report = StartupReport(
            decisions=0,
            cost_evaluations=0,
            cpu_seconds=0.0,
            io_seconds=access_module_read_seconds(plan.node_count()),
            node_count=plan.node_count(),
        )
        return plan, report
    return resolve_dynamic_plan(
        plan, catalog, parameter_space, bindings, branch_and_bound
    )
