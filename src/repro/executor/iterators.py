"""Volcano iterator implementations of the physical algebra.

Every operator is an iterator with ``open`` / ``next`` (Python
iteration) / ``close``, the protocol of the Volcano execution engine.
Operators charge their simulated I/O and CPU work to the database's
:class:`~repro.storage.iostats.IOStatistics`, so executed plans can be
compared against the optimizer's cost predictions.
"""

from repro.algebra.physical import (
    BTreeScan,
    ChoosePlan,
    FileScan,
    Filter,
    FilterBTreeScan,
    HashJoin,
    IndexJoin,
    Materialized,
    MergeJoin,
    Project,
    Sort,
)
from repro.common.errors import ExecutionError
from repro.common.units import pages_for_records
from repro.executor.predicates import compile_predicate


def build_iterator(plan, context):
    """Construct the iterator tree for a physical plan DAG."""
    if isinstance(plan, FileScan):
        return FileScanIterator(plan, context)
    if isinstance(plan, BTreeScan):
        return BTreeScanIterator(plan, context)
    if isinstance(plan, FilterBTreeScan):
        return FilterBTreeScanIterator(plan, context)
    if isinstance(plan, Filter):
        return FilterIterator(plan, context)
    if isinstance(plan, HashJoin):
        return HashJoinIterator(plan, context)
    if isinstance(plan, MergeJoin):
        return MergeJoinIterator(plan, context)
    if isinstance(plan, IndexJoin):
        return IndexJoinIterator(plan, context)
    if isinstance(plan, Project):
        return ProjectIterator(plan, context)
    if isinstance(plan, Sort):
        return SortIterator(plan, context)
    if isinstance(plan, ChoosePlan):
        return ChoosePlanIterator(plan, context)
    if isinstance(plan, Materialized):
        return MaterializedIterator(plan, context)
    raise ExecutionError("no iterator for operator %r" % plan)


class PlanIterator:
    """Base class implementing the open/next/close protocol."""

    def __init__(self, plan, context):
        self.plan = plan
        self.context = context
        self._stream = None

    def open(self):
        """Prepare the iterator; idempotent.

        With a tracer attached to the context the record stream is
        wrapped in a counting span; without one (the default) this is
        a single ``is None`` test and the per-record path is untouched.
        Checks the context deadline, so an expired query cancels before
        any operator does work (blocking operators like sort and hash
        join do all their work at first next, after open).
        """
        if self._stream is None:
            deadline = self.context.deadline
            if deadline is not None:
                deadline.check()
            tracer = self.context.tracer
            if tracer is None:
                self._stream = self._produce()
            else:
                self._stream = tracer.instrument(self)
        return self

    def __iter__(self):
        self.open()
        return self._stream

    def next(self):
        """Produce the next record or raise ``StopIteration``."""
        self.open()
        return next(self._stream)

    def close(self):
        """Release resources."""
        self._stream = None

    def _produce(self):
        raise NotImplementedError

    @property
    def io_stats(self):
        """Shared I/O accounting."""
        return self.context.io_stats


class FileScanIterator(PlanIterator):
    """Sequential heap scan."""

    def _produce(self):
        heap = self.context.database.heap(self.plan.relation_name)
        return heap.scan(self.context.buffer_pool)


def _scan_buffer(context, relation_name, attribute):
    """Page buffer for index-driven fetches.

    Clustered indexes visit adjacent heap pages, so even without a
    shared buffer pool a one-page scan buffer absorbs the repeat
    accesses (every real system keeps the current page pinned).
    Unclustered fetches keep their one-random-I/O-per-record
    behaviour.
    """
    if context.buffer_pool is not None:
        return context.buffer_pool
    index_info = context.database.catalog.index_on(relation_name, attribute)
    if index_info is not None and index_info.clustered:
        from repro.storage.buffer import BufferPool

        return BufferPool(
            1, fault_injector=getattr(context.database, "fault_injector", None)
        )
    return None


class BTreeScanIterator(PlanIterator):
    """Full B-tree scan in key order with per-record heap fetches."""

    def _produce(self):
        database = self.context.database
        btree = database.btree(self.plan.relation_name, self.plan.attribute)
        heap = database.heap(self.plan.relation_name)
        pool = _scan_buffer(
            self.context, self.plan.relation_name, self.plan.attribute
        )

        def generate():
            for _key, rid in btree.range_scan():
                yield heap.fetch(rid, pool)

        return generate()


class FilterBTreeScanIterator(PlanIterator):
    """Sargable index scan: range-restricted B-tree traversal.

    The key range is derived from the predicate's comparison with the
    user variable resolved from the bindings; records are re-checked
    against the full predicate after the fetch (exact semantics for
    the exclusive operators).
    """

    def _produce(self):
        database = self.context.database
        plan = self.plan
        btree = database.btree(plan.relation_name, plan.attribute)
        heap = database.heap(plan.relation_name)
        low, high = self._key_range()
        pool = _scan_buffer(
            self.context, plan.relation_name, plan.attribute
        )

        qualifies = compile_predicate(plan.predicate, self.context.bindings)

        def generate():
            for _key, rid in btree.range_scan(low, high):
                record = heap.fetch(rid, pool)
                if qualifies(record):
                    yield record

        return generate()

    def _key_range(self):
        comparison = self.plan.predicate.comparison
        value = comparison.operand.resolve(self.context.bindings)
        op = comparison.op.value
        if op == "=":
            return value, value
        if op in ("<", "<="):
            return None, value
        if op in (">", ">="):
            return value, None
        # Not sargable (<>): full range, predicate filters.
        return None, None


class FilterIterator(PlanIterator):
    """Predicate filter over any input.

    The predicate is compiled once at open into a single closure
    (operand resolved, operator dispatched), so the per-record path is
    one call instead of a walk over the predicate structures.
    """

    def _produce(self):
        child = build_iterator(self.plan.input, self.context)
        qualifies = compile_predicate(self.plan.predicate, self.context.bindings)

        def generate():
            charge = self.io_stats.charge_records
            for record in child:
                charge(1)
                if qualifies(record):
                    yield record

        return generate()


class HashJoinIterator(PlanIterator):
    """Hash join building on the left input.

    When the build table exceeds available memory the iterator charges
    the partition-spill I/O the cost model predicts (both inputs
    written and re-read once), then proceeds — the result is the same,
    only the accounting differs, which is all the simulation needs.
    """

    def _produce(self):
        plan = self.plan
        build_iter = build_iterator(plan.build, self.context)
        probe_iter = build_iterator(plan.probe, self.context)
        build_attr, probe_attr = self._sides()

        def generate():
            table = {}
            build_count = 0
            for record in build_iter:
                self.io_stats.charge_records(1)
                build_count += 1
                table.setdefault(record[build_attr], []).append(record)
            build_pages = pages_for_records(build_count)
            memory = self.context.memory_pages
            probe_records = []
            for record in probe_iter:
                self.io_stats.charge_records(1)
                probe_records.append(record)
            if build_pages > memory:
                spill_pages = build_pages + pages_for_records(len(probe_records))
                self.io_stats.charge_page_writes(spill_pages)
                self.io_stats.charge_page_reads(spill_pages)
            for record in probe_records:
                for match in table.get(record[probe_attr], ()):
                    merged = match.merged_with(record)
                    if _extra_predicates_hold(merged, plan.predicates):
                        self.io_stats.charge_records(1)
                        yield merged

        return generate()

    def _sides(self):
        """Which side of the primary predicate feeds build vs probe."""
        return join_sides(self.plan.predicate, self.plan.build)


class MergeJoinIterator(PlanIterator):
    """Merge join of two sorted inputs with duplicate handling."""

    def _produce(self):
        plan = self.plan
        left_records = list(build_iterator(plan.left, self.context))
        right_records = list(build_iterator(plan.right, self.context))
        left_attr, right_attr = self._sides()

        def generate():
            self.io_stats.charge_records(len(left_records) + len(right_records))
            left_index = 0
            right_index = 0
            while left_index < len(left_records) and right_index < len(right_records):
                left_key = left_records[left_index][left_attr]
                right_key = right_records[right_index][right_attr]
                if left_key < right_key:
                    left_index += 1
                elif left_key > right_key:
                    right_index += 1
                else:
                    # Gather the duplicate blocks on both sides.
                    left_end = left_index
                    while (
                        left_end < len(left_records)
                        and left_records[left_end][left_attr] == left_key
                    ):
                        left_end += 1
                    right_end = right_index
                    while (
                        right_end < len(right_records)
                        and right_records[right_end][right_attr] == right_key
                    ):
                        right_end += 1
                    for i in range(left_index, left_end):
                        for j in range(right_index, right_end):
                            merged = left_records[i].merged_with(right_records[j])
                            if _extra_predicates_hold(merged, plan.predicates):
                                self.io_stats.charge_records(1)
                                yield merged
                    left_index = left_end
                    right_index = right_end

        return generate()

    def _sides(self):
        return join_sides(self.plan.predicate, self.plan.left)


class IndexJoinIterator(PlanIterator):
    """Index nested-loop join probing the inner relation's B-tree."""

    def _produce(self):
        plan = self.plan
        outer_iter = build_iterator(plan.outer, self.context)
        database = self.context.database
        btree = database.btree(plan.inner_relation, plan.inner_attribute)
        heap = database.heap(plan.inner_relation)
        outer_attr = self._outer_attribute()
        bindings = self.context.bindings
        pool = _scan_buffer(
            self.context, plan.inner_relation, plan.inner_attribute
        )

        def generate():
            for outer_record in outer_iter:
                self.io_stats.charge_records(1)
                for rid in btree.search(outer_record[outer_attr]):
                    inner_record = heap.fetch(rid, pool)
                    if plan.residual_predicate is not None:
                        if not plan.residual_predicate.evaluate(
                            inner_record, bindings
                        ):
                            continue
                    merged = outer_record.merged_with(inner_record)
                    if _extra_predicates_hold(merged, plan.predicates):
                        self.io_stats.charge_records(1)
                        yield merged

        return generate()

    def _outer_attribute(self):
        return index_join_outer_attribute(self.plan)


class SortIterator(PlanIterator):
    """Sort enforcer: materializes and orders its input.

    Inputs larger than memory charge external-merge I/O (one partition
    pass) so the simulation matches the cost model's shape.
    """

    def _produce(self):
        attribute = self.plan.attribute
        records = list(build_iterator(self.plan.input, self.context))

        def generate():
            self.io_stats.charge_records(len(records))
            pages = pages_for_records(len(records))
            if pages > self.context.memory_pages:
                self.io_stats.charge_page_writes(pages)
                self.io_stats.charge_page_reads(pages)
            for record in sorted(records, key=lambda r: r[attribute]):
                yield record

        return generate()


class ProjectIterator(PlanIterator):
    """Attribute projection over any input."""

    def _produce(self):
        child = build_iterator(self.plan.input, self.context)
        attributes = self.plan.attributes

        def generate():
            for record in child:
                self.io_stats.charge_records(1)
                yield record.project(attributes)

        return generate()


class ChoosePlanIterator(PlanIterator):
    """The choose-plan operator's run-time behaviour.

    At open, the decision procedure re-evaluates the alternatives'
    cost functions under the context's run-time bindings (shared
    subplans costed once, nested choose-plans resolved bottom-up) and
    opens only the cheapest alternative.
    """

    def _produce(self):
        chosen = self.choose()
        return iter(build_iterator(chosen, self.context))

    def choose(self):
        """The resolved plan the decision procedure selects."""
        from repro.executor.startup import resolve_dynamic_plan

        chosen, report = resolve_dynamic_plan(
            self.plan,
            self.context.database.catalog,
            self.context.parameter_space,
            self.context.bindings,
        )
        for choose_node, alternative in report.choices:
            self.context.record_decision(choose_node, alternative)
        return chosen


class MaterializedIterator(PlanIterator):
    """Replays a run-time temporary result (paper Section 7)."""

    def _produce(self):
        return iter(self.plan.records)


def _extra_predicates_hold(merged, predicates):
    """Check the secondary join predicates against a merged record."""
    for predicate in predicates[1:]:
        if merged[predicate.left_attribute] != merged[predicate.right_attribute]:
            return False
    return True


def join_sides(predicate, left_plan):
    """``(left-side, right-side)`` attributes of a join predicate,
    oriented so the first belongs to ``left_plan``'s relations."""
    left_relations = _plan_relations(left_plan)
    left_rel = predicate.left_attribute.split(".", 1)[0]
    if left_rel in left_relations:
        return predicate.left_attribute, predicate.right_attribute
    return predicate.right_attribute, predicate.left_attribute


def index_join_outer_attribute(plan):
    """The outer-side attribute of an index join's primary predicate."""
    predicate = plan.predicate
    inner_qualified = "%s.%s" % (plan.inner_relation, plan.inner_attribute)
    if predicate.left_attribute == inner_qualified:
        return predicate.right_attribute
    return predicate.left_attribute


def _plan_relations(plan):
    """Base relation names referenced below a plan node."""
    relations = set()
    for node in plan.walk_unique():
        relation = getattr(node, "relation_name", None)
        if relation is not None:
            relations.add(relation)
        inner = getattr(node, "inner_relation", None)
        if inner is not None:
            relations.add(inner)
        if isinstance(node, Materialized):
            relations |= _plan_relations(node.original)
    return relations
