"""A persistent store of compiled access modules.

Production systems with compile-time optimization keep access modules
on disk between invocations ([CAK81]); this store models that library:
compile once with :meth:`PlanStore.compile`, then across process
restarts :meth:`PlanStore.activate` loads the stored module, validates
it against the current catalogs, and runs the choose-plan decision
procedures.
"""

import os

from repro.common.errors import ExecutionError
from repro.executor.access_module import AccessModule
from repro.executor.startup import activate_plan


class PlanStore:
    """Directory-backed library of serialized plans, keyed by name."""

    SUFFIX = ".plan.json"

    def __init__(self, directory):
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)

    def _path(self, query_name):
        safe = "".join(
            ch if ch.isalnum() or ch in "-_" else "_" for ch in query_name
        )
        return os.path.join(self.directory, safe + self.SUFFIX)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def store(self, plan, query_name):
        """Serialize and persist a plan; returns the module."""
        module = AccessModule.from_plan(plan, query_name)
        with open(self._path(query_name), "wb") as handle:
            handle.write(module.to_bytes())
        return module

    def compile(self, catalog, query, optimize=None):
        """Optimize a query and persist the resulting dynamic plan."""
        if optimize is None:
            from repro.optimizer.optimizer import optimize_dynamic

            optimize = optimize_dynamic
        result = optimize(catalog, query)
        self.store(result.plan, query.name)
        return result

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def load(self, query_name):
        """Load a stored access module by query name."""
        path = self._path(query_name)
        if not os.path.exists(path):
            raise ExecutionError(
                "no stored plan for query %r (looked in %s)"
                % (query_name, self.directory)
            )
        with open(path, "rb") as handle:
            return AccessModule.from_bytes(handle.read())

    def activate(self, query_name, catalog, parameter_space, bindings,
                 **activate_kwargs):
        """Load, validate, and resolve a stored plan for one invocation.

        Returns ``(static_plan, startup_report)`` exactly like
        :func:`~repro.executor.startup.activate_plan`.
        """
        module = self.load(query_name)
        plan = module.materialize()
        return activate_plan(
            plan, catalog, parameter_space, bindings, **activate_kwargs
        )

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def names(self):
        """Names of all stored plans."""
        names = []
        for entry in sorted(os.listdir(self.directory)):
            if entry.endswith(self.SUFFIX):
                names.append(entry[: -len(self.SUFFIX)])
        return names

    def contains(self, query_name):
        """Whether a plan is stored under the name."""
        return os.path.exists(self._path(query_name))

    def remove(self, query_name):
        """Delete a stored plan (missing names are ignored)."""
        path = self._path(query_name)
        if os.path.exists(path):
            os.remove(path)

    def __repr__(self):
        return "PlanStore(%r, %d plans)" % (self.directory, len(self.names()))
